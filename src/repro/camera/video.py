"""Synthetic stimulus videos that drive the event-camera simulator.

The paper's substrate is a physical event camera looking at moving
scenes.  We substitute deterministic, analytically-defined luminance
stimuli: a :class:`Stimulus` maps a time in microseconds to a 2-D
luminance frame (arbitrary linear units, strictly positive).  The DVS
pixel model (:mod:`repro.camera.pixel`) then converts brightness changes
into events, exactly as a sensor would.

All stimuli are pure functions of time (no hidden state), so any frame
can be sampled at any instant — which is what lets the simulator use
adaptive sub-microsecond timestamp interpolation.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np

from ..events.stream import Resolution

__all__ = [
    "Stimulus",
    "MovingBar",
    "MovingBox",
    "MovingDisk",
    "ExpandingDisk",
    "DriftingGrating",
    "RotatingBar",
    "TexturePan",
    "CompositeStimulus",
]

#: Luminance of the dark background (must stay positive for the log front-end).
BACKGROUND = 0.2
#: Luminance of bright foreground features.
FOREGROUND = 1.0
#: Anti-aliasing softness (pixels) for hard-edged shapes.
EDGE_SOFTNESS = 0.75


def _soft_step(d: np.ndarray, softness: float = EDGE_SOFTNESS) -> np.ndarray:
    """Smooth 0→1 transition of signed distance ``d`` over ``softness`` pixels.

    Soft edges make threshold crossings happen at slightly different times
    in adjacent pixels, which is what produces the realistic staggered
    event timing of a physical sensor.
    """
    return np.clip(0.5 + d / (2.0 * softness), 0.0, 1.0)


class Stimulus(abc.ABC):
    """A time-parameterised luminance video.

    Attributes:
        resolution: frame size in pixels.
    """

    def __init__(self, resolution: Resolution) -> None:
        self.resolution = resolution
        ys, xs = np.mgrid[0 : resolution.height, 0 : resolution.width]
        self._xs = xs.astype(np.float64)
        self._ys = ys.astype(np.float64)

    @abc.abstractmethod
    def frame(self, t_us: float) -> np.ndarray:
        """Luminance frame at time ``t_us`` (microseconds), shape ``(H, W)``, > 0."""

    def log_frame(self, t_us: float) -> np.ndarray:
        """Natural-log luminance at ``t_us`` — the quantity DVS pixels sense."""
        return np.log(self.frame(t_us))

    def _blend(self, mask: np.ndarray) -> np.ndarray:
        """Blend foreground over background by a [0, 1] coverage mask."""
        return BACKGROUND + (FOREGROUND - BACKGROUND) * mask


@dataclass
class _LinearMotion:
    """Straight-line motion state shared by the moving-shape stimuli."""

    x0: float
    y0: float
    vx_px_per_s: float
    vy_px_per_s: float

    def position(self, t_us: float) -> tuple[float, float]:
        t_s = t_us * 1e-6
        return self.x0 + self.vx_px_per_s * t_s, self.y0 + self.vy_px_per_s * t_s


class MovingBar(Stimulus):
    """A vertical bright bar translating horizontally at constant speed.

    The canonical DVS test stimulus: it produces a clean ON edge at the
    leading side and an OFF edge at the trailing side.

    Args:
        resolution: frame size.
        speed_px_per_s: horizontal speed (may be negative).
        bar_width: bar thickness in pixels.
        x0: bar-centre x position at t = 0.
    """

    def __init__(
        self,
        resolution: Resolution,
        speed_px_per_s: float = 1000.0,
        bar_width: float = 4.0,
        x0: float = 0.0,
    ) -> None:
        super().__init__(resolution)
        if bar_width <= 0:
            raise ValueError("bar_width must be positive")
        self.speed = speed_px_per_s
        self.bar_width = bar_width
        self.x0 = x0

    def frame(self, t_us: float) -> np.ndarray:
        cx = self.x0 + self.speed * t_us * 1e-6
        d = self.bar_width / 2.0 - np.abs(self._xs - cx)
        return self._blend(_soft_step(d))


class MovingBox(Stimulus):
    """A bright axis-aligned square translating along a straight line."""

    def __init__(
        self,
        resolution: Resolution,
        side: float = 8.0,
        x0: float = 0.0,
        y0: float = 0.0,
        vx_px_per_s: float = 800.0,
        vy_px_per_s: float = 0.0,
    ) -> None:
        super().__init__(resolution)
        if side <= 0:
            raise ValueError("side must be positive")
        self.side = side
        self.motion = _LinearMotion(x0, y0, vx_px_per_s, vy_px_per_s)

    def frame(self, t_us: float) -> np.ndarray:
        cx, cy = self.motion.position(t_us)
        half = self.side / 2.0
        d = np.minimum(half - np.abs(self._xs - cx), half - np.abs(self._ys - cy))
        return self._blend(_soft_step(d))


class MovingDisk(Stimulus):
    """A bright disk translating along a straight line."""

    def __init__(
        self,
        resolution: Resolution,
        radius: float = 5.0,
        x0: float = 0.0,
        y0: float = 0.0,
        vx_px_per_s: float = 800.0,
        vy_px_per_s: float = 0.0,
    ) -> None:
        super().__init__(resolution)
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = radius
        self.motion = _LinearMotion(x0, y0, vx_px_per_s, vy_px_per_s)

    def frame(self, t_us: float) -> np.ndarray:
        cx, cy = self.motion.position(t_us)
        r = np.hypot(self._xs - cx, self._ys - cy)
        return self._blend(_soft_step(self.radius - r))


class ExpandingDisk(Stimulus):
    """A disk whose radius grows (looming) or shrinks (receding) linearly.

    Looming stimuli are the classic collision-avoidance test case for
    neuromorphic vision: approach produces a characteristic expanding
    ring of ON events whose rate accelerates with time-to-contact.

    Args:
        resolution: frame size.
        cx, cy: disk centre (defaults to the frame centre).
        r0: radius at t = 0.
        growth_px_per_s: radial growth rate (negative = receding).
        r_min: radius floor for receding stimuli.
    """

    def __init__(
        self,
        resolution: Resolution,
        cx: float | None = None,
        cy: float | None = None,
        r0: float = 2.0,
        growth_px_per_s: float = 100.0,
        r_min: float = 0.5,
    ) -> None:
        super().__init__(resolution)
        if r0 <= 0 or r_min <= 0:
            raise ValueError("radii must be positive")
        self.cx = (resolution.width - 1) / 2.0 if cx is None else cx
        self.cy = (resolution.height - 1) / 2.0 if cy is None else cy
        self.r0 = r0
        self.growth = growth_px_per_s
        self.r_min = r_min

    def radius_at(self, t_us: float) -> float:
        """Disk radius at time ``t_us``."""
        return max(self.r_min, self.r0 + self.growth * t_us * 1e-6)

    def frame(self, t_us: float) -> np.ndarray:
        r = np.hypot(self._xs - self.cx, self._ys - self.cy)
        return self._blend(_soft_step(self.radius_at(t_us) - r))


class DriftingGrating(Stimulus):
    """A sinusoidal luminance grating drifting at constant temporal frequency.

    Produces spatially dense, temporally smooth activity — the high-rate
    regime used for readout-saturation experiments.

    Args:
        resolution: frame size.
        spatial_period_px: wavelength of the grating in pixels.
        temporal_freq_hz: cycles per second the pattern drifts.
        orientation_deg: grating orientation (0 = vertical stripes).
        contrast: Michelson contrast in (0, 1].
    """

    def __init__(
        self,
        resolution: Resolution,
        spatial_period_px: float = 8.0,
        temporal_freq_hz: float = 50.0,
        orientation_deg: float = 0.0,
        contrast: float = 0.8,
    ) -> None:
        super().__init__(resolution)
        if spatial_period_px <= 0:
            raise ValueError("spatial_period_px must be positive")
        if not 0.0 < contrast <= 1.0:
            raise ValueError("contrast must be in (0, 1]")
        self.spatial_period = spatial_period_px
        self.temporal_freq = temporal_freq_hz
        self.contrast = contrast
        theta = math.radians(orientation_deg)
        self._proj = self._xs * math.cos(theta) + self._ys * math.sin(theta)

    def frame(self, t_us: float) -> np.ndarray:
        phase = 2.0 * math.pi * (
            self._proj / self.spatial_period - self.temporal_freq * t_us * 1e-6
        )
        mean = (FOREGROUND + BACKGROUND) / 2.0
        amp = self.contrast * (FOREGROUND - BACKGROUND) / 2.0
        return mean + amp * np.sin(phase)


class RotatingBar(Stimulus):
    """A bright bar rotating about the frame centre at constant angular speed.

    Used for gesture-like datasets: direction of rotation is a natural
    binary class that requires temporal information to resolve.
    """

    def __init__(
        self,
        resolution: Resolution,
        angular_speed_rad_per_s: float = 2.0 * math.pi,
        bar_half_length: float | None = None,
        bar_half_width: float = 1.5,
        phase0_rad: float = 0.0,
    ) -> None:
        super().__init__(resolution)
        self.omega = angular_speed_rad_per_s
        self.half_len = (
            bar_half_length
            if bar_half_length is not None
            else 0.4 * min(resolution.width, resolution.height)
        )
        self.half_width = bar_half_width
        self.phase0 = phase0_rad
        self._cx = (resolution.width - 1) / 2.0
        self._cy = (resolution.height - 1) / 2.0

    def frame(self, t_us: float) -> np.ndarray:
        angle = self.phase0 + self.omega * t_us * 1e-6
        c, s = math.cos(angle), math.sin(angle)
        # Coordinates in the bar's rotating frame.
        dx = self._xs - self._cx
        dy = self._ys - self._cy
        along = dx * c + dy * s
        across = -dx * s + dy * c
        d = np.minimum(self.half_len - np.abs(along), self.half_width - np.abs(across))
        return self._blend(_soft_step(d))


class TexturePan(Stimulus):
    """A fixed random texture panned across the field of view (egomotion model).

    Every pixel sees luminance change during panning, so the event rate
    scales with the full pixel count — the regime Section II's
    high-resolution discussion (Gehrig & Scaramuzza 2022) is about.

    Args:
        resolution: frame size.
        vx_px_per_s, vy_px_per_s: pan velocity.
        texture_scale_px: correlation length of the texture in pixels.
        seed: texture RNG seed.
    """

    def __init__(
        self,
        resolution: Resolution,
        vx_px_per_s: float = 500.0,
        vy_px_per_s: float = 0.0,
        texture_scale_px: float = 4.0,
        seed: int = 0,
    ) -> None:
        super().__init__(resolution)
        if texture_scale_px <= 0:
            raise ValueError("texture_scale_px must be positive")
        self.vx = vx_px_per_s
        self.vy = vy_px_per_s
        rng = np.random.default_rng(seed)
        # Smooth periodic texture from a few random Fourier components, so
        # panning wraps seamlessly and frames stay pure functions of t.
        self._components = []
        for _ in range(8):
            fx = rng.integers(1, max(2, int(resolution.width / texture_scale_px)))
            fy = rng.integers(1, max(2, int(resolution.height / texture_scale_px)))
            phase = rng.uniform(0, 2 * math.pi)
            amp = rng.uniform(0.5, 1.0)
            self._components.append((int(fx), int(fy), float(phase), float(amp)))
        self._norm = sum(a for *_rest, a in self._components)

    def frame(self, t_us: float) -> np.ndarray:
        t_s = t_us * 1e-6
        u = (self._xs + self.vx * t_s) / self.resolution.width
        v = (self._ys + self.vy * t_s) / self.resolution.height
        acc = np.zeros_like(u)
        for fx, fy, phase, amp in self._components:
            acc += amp * np.sin(2 * math.pi * (fx * u + fy * v) + phase)
        mask = 0.5 + 0.5 * acc / self._norm
        return self._blend(mask)


@dataclass
class CompositeStimulus(Stimulus):
    """Pixel-wise maximum of several stimuli sharing one resolution."""

    parts: list[Stimulus] = field(default_factory=list)

    def __init__(self, parts: list[Stimulus]) -> None:
        if not parts:
            raise ValueError("need at least one stimulus")
        res = parts[0].resolution
        for p in parts[1:]:
            if p.resolution != res:
                raise ValueError("all stimuli must share one resolution")
        super().__init__(res)
        self.parts = list(parts)

    def frame(self, t_us: float) -> np.ndarray:
        out = self.parts[0].frame(t_us)
        for p in self.parts[1:]:
            np.maximum(out, p.frame(t_us), out=out)
        return out
