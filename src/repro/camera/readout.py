"""Sensor readout and event-rate control.

Events generated in the pixel array leave the chip through an arbitered
readout whose throughput is finite — modern HD sensors reach ~1 GEPS
(Finateu et al. 2020, ref [10]).  When instantaneous event rates exceed
that capacity, events queue in on-chip FIFOs, picking up latency, and are
dropped once the FIFO overflows.  Sensors therefore include a
programmable *event-rate controller* that sheds load before saturation.

This module models both mechanisms, so experiments can show the
high-resolution side effects Section II discusses (Gehrig & Scaramuzza
2022) and quantify what the mitigation strategies buy back.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..events.stream import EventStream

__all__ = ["ReadoutParams", "ReadoutResult", "simulate_readout", "rate_limiter"]


@dataclass(frozen=True)
class ReadoutParams:
    """Readout pipeline parameters.

    Attributes:
        throughput_eps: sustained readout capacity in events per second.
        fifo_depth: on-chip FIFO capacity in events; events arriving when
            the FIFO is full are dropped.
    """

    throughput_eps: float = 100e6
    fifo_depth: int = 4096

    def __post_init__(self) -> None:
        if not np.isfinite(self.throughput_eps) or self.throughput_eps <= 0:
            raise ValueError("throughput_eps must be positive and finite")
        if self.fifo_depth <= 0:
            raise ValueError("fifo_depth must be positive")

    def derate(self, factor: float) -> "ReadoutParams":
        """A copy with the readout capacity divided by ``factor``.

        This is the severity knob the robustness sweep turns to model a
        degraded or contended bus: ``factor`` 1 leaves the link intact,
        larger values push it towards saturation (queueing latency, then
        FIFO-overflow drops).

        Args:
            factor: derating divisor, >= 1.
        """
        if not np.isfinite(factor) or factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return ReadoutParams(
            throughput_eps=self.throughput_eps / factor,
            fifo_depth=self.fifo_depth,
        )


@dataclass(frozen=True)
class ReadoutResult:
    """Outcome of pushing a stream through the readout model.

    Attributes:
        stream: surviving events with their *output* (post-queue)
            timestamps.
        num_dropped: events lost to FIFO overflow.
        mean_latency_us: mean queueing latency of surviving events.
        max_latency_us: worst-case queueing latency.
    """

    stream: EventStream
    num_dropped: int
    mean_latency_us: float
    max_latency_us: int

    @property
    def drop_fraction(self) -> float:
        """Fraction of input events that were dropped."""
        total = len(self.stream) + self.num_dropped
        return self.num_dropped / total if total else 0.0


def simulate_readout(stream: EventStream, params: ReadoutParams) -> ReadoutResult:
    """Serve events through a single-server FIFO with deterministic rate.

    Each event takes ``1 / throughput_eps`` seconds to read out.  An event
    arriving while ``fifo_depth`` events are still pending is dropped.

    Args:
        stream: sensor events with generation timestamps.
        params: readout capacity and buffering.

    Returns:
        The surviving stream (timestamps moved to readout-completion
        times) plus drop and latency statistics.
    """
    n = len(stream)
    if n == 0:
        return ReadoutResult(stream, 0, 0.0, 0)

    service_us = 1e6 / params.throughput_eps
    t_in = stream.t.astype(np.float64)
    t_out = np.empty(n, dtype=np.float64)
    keep = np.zeros(n, dtype=bool)

    server_free_at = -np.inf  # when the readout finishes its current event
    # Completion times of queued-or-in-service events, kept as a rolling
    # window: an arrival is admitted iff fewer than fifo_depth events are
    # still pending at its arrival instant.
    pending: deque[float] = deque()

    for i in range(n):
        now = t_in[i]
        # Retire events whose readout completed.
        while pending and pending[0] <= now:
            pending.popleft()
        if len(pending) >= params.fifo_depth:
            continue  # FIFO full: drop
        start = max(now, server_free_at)
        done = start + service_us
        server_free_at = done
        pending.append(done)
        t_out[i] = done
        keep[i] = True

    kept_idx = np.nonzero(keep)[0]
    num_dropped = n - kept_idx.size
    if kept_idx.size == 0:
        return ReadoutResult(EventStream.empty(stream.resolution), num_dropped, 0.0, 0)

    latency = t_out[kept_idx] - t_in[kept_idx]
    out_t = np.ceil(t_out[kept_idx]).astype(np.int64)
    out = EventStream.from_arrays(
        out_t,
        stream.x[kept_idx],
        stream.y[kept_idx],
        stream.p[kept_idx],
        stream.resolution,
        sort=True,
    )
    return ReadoutResult(
        stream=out,
        num_dropped=num_dropped,
        mean_latency_us=float(latency.mean()),
        max_latency_us=int(np.ceil(latency.max())),
    )


def rate_limiter(
    stream: EventStream,
    max_rate_eps: float,
    window_us: int = 1000,
    rng: np.random.Generator | None = None,
) -> EventStream:
    """Programmable event-rate controller: shed load to stay under a target.

    The controller measures the event count in consecutive windows and,
    whenever a window exceeds ``max_rate_eps``, uniformly subsamples that
    window down to the budget.  This is the front-line defence against
    egomotion-induced rate spikes.

    Args:
        stream: input events.
        max_rate_eps: target maximum rate in events per second.
        window_us: control-loop window.
        rng: generator for the subsampling choice (defaults to seed 0 so
            the limiter is deterministic).
    """
    if max_rate_eps <= 0:
        raise ValueError("max_rate_eps must be positive")
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    n = len(stream)
    if n == 0:
        return stream
    if rng is None:
        rng = np.random.default_rng(0)
    budget = max(1, int(max_rate_eps * window_us * 1e-6))
    t0 = int(stream.t[0])
    bins = (stream.t - t0) // window_us
    keep = np.ones(n, dtype=bool)
    for b in np.unique(bins):
        idx = np.nonzero(bins == b)[0]
        if idx.size > budget:
            victims = rng.choice(idx, size=idx.size - budget, replace=False)
            keep[victims] = False
    return stream[keep]
