"""Content-addressed representation cache for event encodings.

The three paradigm pipelines repeatedly re-encode the *same* recordings
— frames for the CNN, spike tensors for the SNN, event graphs for the
GNN — across fit/measure/sweep calls.  Following the recomputation-
avoidance lever of AEGNN (Schaefer et al.) and the reusable-
representation view of EST (Gehrig et al.), this module memoizes those
encodings behind a content address:

    key = SHA-256(kind ‖ raw event bytes ‖ resolution ‖ canonical config)

The config component is serialised through :func:`canonical_json`,
which sorts keys recursively — two configurations that compare equal
produce the same key regardless of dict/field construction order (the
order-sensitivity bug this module's tests pin down).

Entries live in an in-process LRU (:class:`RepresentationCache`) and,
optionally, in an on-disk store shared across processes and runs.  The
disk tier is opt-in: byte-identity guarantees of the parallel executor
(:mod:`repro.parallel.sharding`) only cover the in-memory tier, whose
hit/miss counters are deterministic per shard.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Mapping

__all__ = [
    "canonical_json",
    "config_digest",
    "content_key",
    "CacheConfig",
    "RepresentationCache",
]


def _canonicalise(obj: Any) -> Any:
    """Reduce an object to a canonical JSON-serialisable form."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonicalise(dataclasses.asdict(obj))
    if isinstance(obj, Mapping):
        return {str(k): _canonicalise(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonicalise(v) for v in obj]
    if isinstance(obj, (bool, str)) or obj is None:
        return obj
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        return float(obj)
    if hasattr(obj, "item"):  # numpy scalars
        return _canonicalise(obj.item())
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for a cache key")


def canonical_json(obj: Any) -> str:
    """Field-order-insensitive JSON serialisation of a configuration.

    Dataclasses are flattened to dicts, every mapping is sorted by key
    (recursively) and tuples become lists, so two equal configurations
    constructed in different orders serialise identically.

    Args:
        obj: a dataclass, mapping, sequence or scalar.

    Returns:
        A compact, deterministic JSON string.
    """
    return json.dumps(
        _canonicalise(obj), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def config_digest(config: Any) -> str:
    """SHA-256 hex digest of a configuration's canonical JSON."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


def content_key(kind: str, stream: Any, config: Any) -> str:
    """Content address of one (encoder, recording, config) triple.

    Args:
        kind: encoder family tag (e.g. ``"snn_spike_tensor"``,
            ``"cnn_frame"``, ``"gnn_graph"``) — namespaces the key so
            different encoders never collide on the same recording.
        stream: an event stream exposing ``.raw`` (a structured numpy
            array) and, optionally, ``.resolution``.
        config: the encoder configuration (hashed canonically).

    Returns:
        A SHA-256 hex digest addressing the encoded representation.
    """
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(stream.raw.tobytes())
    digest.update(b"\x00")
    resolution = getattr(stream, "resolution", None)
    if resolution is not None:
        digest.update(f"{resolution.width}x{resolution.height}".encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_json(config).encode("utf-8"))
    return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Picklable description of a representation cache.

    Attributes:
        enabled: build a cache at all (False disables memoization).
        max_entries: in-memory LRU capacity (None = unbounded).
        cache_dir: optional on-disk tier, shared across processes;
            leaves the byte-identity guarantees of the parallel
            executor (the in-memory tier is per-shard and
            deterministic, the disk tier is whatever previous runs
            left behind — counters may differ, values never do).
        shared: share one cache across every shard of a sweep instead
            of giving each shard a fresh tier.  On the serial/thread
            backends this is a single thread-safe in-memory cache; on
            the process backend it plumbs a per-run disk tier under
            every per-shard cache.  A shared cache is never bound to
            per-shard instrumentation (its hit pattern depends on
            shard scheduling), so merged snapshots stay byte-identical
            across worker counts; sweep *results* are unaffected
            either way because encodings are deterministic.
    """

    enabled: bool = True
    max_entries: int | None = 256
    cache_dir: str | None = None
    shared: bool = False

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")


_MISSING = object()


class RepresentationCache:
    """In-memory LRU (+ optional disk tier) of encoded representations.

    Values are stored as returned by the encoder — callers must treat
    them as immutable (the pipelines only read them).

    Args:
        max_entries: LRU capacity (None = unbounded).
        cache_dir: optional directory for the persistent tier; entries
            are pickled atomically (tmp file + rename).
        instrumentation: optional
            :class:`~repro.observability.Instrumentation`; when bound,
            the cache emits ``repr_cache_hits_total{kind}``,
            ``repr_cache_misses_total{kind}``,
            ``repr_cache_evictions_total`` and
            ``repr_cache_disk_errors_total{kind}``.
        thread_safe: serialise bookkeeping behind a lock and make
            :meth:`get_or_compute` single-flight per key — concurrent
            callers asking for the same representation compute it
            exactly once while other keys proceed in parallel.  This
            is the mode the sweep executor uses for a cache shared
            across thread-backend shards.
    """

    def __init__(
        self,
        max_entries: int | None = 256,
        cache_dir: str | Path | None = None,
        instrumentation: Any = None,
        thread_safe: bool = False,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._obs = instrumentation
        self._lock = threading.Lock() if thread_safe else None
        self._flights: dict[str, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_errors = 0

    @classmethod
    def from_config(
        cls,
        config: CacheConfig | None,
        instrumentation: Any = None,
        thread_safe: bool = False,
    ) -> "RepresentationCache | None":
        """Build a cache from a :class:`CacheConfig` (None when disabled)."""
        if config is None:
            config = CacheConfig()
        if not config.enabled:
            return None
        return cls(
            max_entries=config.max_entries,
            cache_dir=config.cache_dir,
            instrumentation=instrumentation,
            thread_safe=thread_safe,
        )

    def bind(self, instrumentation: Any) -> "RepresentationCache":
        """Attach (or detach, with None) an observability sink; returns self."""
        self._obs = instrumentation
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def _count(self, name: str, kind: str | None) -> None:
        if self._obs is None:
            return
        labels = {"kind": kind} if kind is not None else None
        self._obs.registry.counter(
            name, labels=labels, help="representation cache accounting"
        ).inc()

    def _disk_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def _store(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("repr_cache_evictions_total", None)

    def get_or_compute(
        self, kind: str, stream: Any, config: Any, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached representation of ``stream``, encoding on miss.

        Args:
            kind: encoder family tag (namespaces the key and labels the
                hit/miss counters).
            stream: the recording (must expose ``.raw``).
            config: the encoder configuration (canonically hashed, so
                field order never splits the cache).
            compute: zero-argument encoder invoked on a miss.

        Returns:
            The representation (shared object — do not mutate).
        """
        key = content_key(kind, stream, config)
        if self._lock is None:
            return self._get_or_compute(kind, key, compute)

        # Single-flight shared-cache path: the first caller of a key
        # computes while holding that key's flight lock; latecomers wait
        # on it and land a hit.  Aggregate misses therefore equal the
        # number of unique keys, independent of shard scheduling.
        with self._lock:
            hit = self._memory_hit(kind, key)
            if hit is not _MISSING:
                return hit
            flight = self._flights.setdefault(key, threading.Lock())
        with flight:
            with self._lock:
                hit = self._memory_hit(kind, key)
                if hit is not _MISSING:
                    return hit
            value = self._disk_load(kind, key)
            from_disk = value is not _MISSING
            if not from_disk:
                value = compute()
            with self._lock:
                if from_disk:
                    self.hits += 1
                    self.disk_hits += 1
                    self._count("repr_cache_hits_total", kind)
                else:
                    self.misses += 1
                    self._count("repr_cache_misses_total", kind)
                self._store(key, value)
                self._flights.pop(key, None)
            if not from_disk and self.cache_dir is not None:
                self._write_disk(key, value)
            return value

    def _get_or_compute(self, kind: str, key: str, compute: Callable[[], Any]) -> Any:
        """Unlocked lookup path (per-shard caches are single-threaded)."""
        hit = self._memory_hit(kind, key)
        if hit is not _MISSING:
            return hit
        value = self._disk_load(kind, key)
        if value is not _MISSING:
            self.hits += 1
            self.disk_hits += 1
            self._count("repr_cache_hits_total", kind)
            self._store(key, value)
            return value
        self.misses += 1
        self._count("repr_cache_misses_total", kind)
        value = compute()
        self._store(key, value)
        if self.cache_dir is not None:
            self._write_disk(key, value)
        return value

    def _memory_hit(self, kind: str, key: str) -> Any:
        """Memory-tier lookup with hit bookkeeping, or ``_MISSING``."""
        if key not in self._entries:
            return _MISSING
        self.hits += 1
        self._count("repr_cache_hits_total", kind)
        self._entries.move_to_end(key)
        return self._entries[key]

    def _disk_load(self, kind: str, key: str) -> Any:
        """Disk-tier lookup: the value, or ``_MISSING`` on absence/error.

        Unreadable entries — truncated by a crashed writer, unpicklable
        payload, I/O failure — are counted as
        ``repr_cache_disk_errors_total{kind}`` and deleted so the same
        entry cannot fail again on every subsequent lookup.
        """
        if self.cache_dir is None:
            return _MISSING
        path = self._disk_path(key)
        if not path.exists():
            return _MISSING
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            ValueError,  # e.g. truncated/garbled protocol bytes
            AttributeError,
            ImportError,
            IndexError,
        ):
            if self._lock is not None:
                with self._lock:
                    self.disk_errors += 1
            else:
                self.disk_errors += 1
            self._count("repr_cache_disk_errors_total", kind)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass  # deletion is best-effort (e.g. read-only tier)
            return _MISSING

    def _write_disk(self, key: str, value: Any) -> None:
        """Persist one entry atomically (tmp + rename; races are benign)."""
        path = self._disk_path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)  # disk tier is best-effort

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction totals (disk hits counted inside hits)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_errors": self.disk_errors,
        }
