"""Unified sweep entry point: one spec, three kinds, sharded and cached.

:func:`run_sweep` is the single calling convention behind the
repository's three measurement grids — the Table-I comparison
(``kind="comparison"``), the fault-robustness sweep
(``kind="robustness"``) and the streaming overload sweep
(``kind="streaming"``).  A :class:`SweepSpec` names the grid (paradigm
factories × conditions), the seeds, the instrumentation and the
``parallel=`` knob; the executor plans deterministic shards
(:func:`~repro.parallel.sharding.plan_shards`), runs them serially or
on a forked process pool, memoizes event encodings through the
content-addressed :class:`~repro.parallel.cache.RepresentationCache`,
and folds per-shard results and observability snapshots into one
reconciled :class:`SweepResult`.

Determinism contract: with the default per-shard instrumentation, the
results **and** the merged snapshot are byte-identical for any
``n_workers`` — the shard plan ignores the worker count, every shard
seeds and times itself (:class:`~repro.parallel.merge.DeterministicClock`)
from its grid position alone, and the merge runs in shard-plan order.
The legacy entry points (``run_comparison``, ``run_robustness_sweep``,
``run_streaming_sweep``) are thin shims over this module.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.comparison import PARADIGMS, assemble_comparison, measure_paradigm
from ..core.presets import default_configs, make_pipeline
from ..observability import Instrumentation
from .cache import CacheConfig, RepresentationCache
from .merge import DeterministicClock, merge_snapshots, reconcile_shards
from .sharding import ParallelConfig, Shard, plan_shards, run_shards

__all__ = ["SweepSpec", "SweepResult", "run_sweep"]

_KINDS = ("comparison", "robustness", "streaming")


@dataclass
class SweepSpec:
    """One description for every paradigm-grid measurement.

    Attributes:
        kind: ``"comparison"``, ``"robustness"`` or ``"streaming"``.
        train / test: the dataset split (comparison and robustness).
        stream: the workload stream (streaming).
        window_us: streaming window length.
        conditions: the swept grid columns — replication seeds for
            comparison (empty = one run per paradigm as configured),
            fault severities for robustness, load factors for
            streaming.
        pipelines: paradigm name → factory.  Config dataclasses
            (:mod:`repro.core.presets`) work on every backend;
            pipeline instances / predictor callables only on the
            serial backend (the process backend needs picklable,
            re-constructible descriptions).  None selects the
            paradigm defaults of the kind.
        temporal_labels: comparison-only; labels distinguishable only
            through event timing.
        seed: master seed of the sweep.
        options: kind-specific extras — robustness:
            ``fault_profile``, ``checkpoint_dir``, ``max_retries``,
            ``stage_timeout_s``; streaming: ``fallbacks``,
            ``service_models``, ``shed_policy``, ``breaker_policy``,
            ``queue_capacity``.
        parallel: sharded-execution knobs.
        cache: representation-cache knobs (fresh per-shard in-memory
            tier; opt-in shared disk tier).
        instrumentation: optional user-owned
            :class:`~repro.observability.Instrumentation` shared by
            every shard — serial backend only.  When None (the
            default) each shard records into its own
            deterministically-clocked instrumentation and the merged
            snapshot lands in :attr:`SweepResult.snapshot`.
    """

    kind: str
    train: Any = None
    test: Any = None
    stream: Any = None
    window_us: int = 10_000
    conditions: Sequence[Any] = ()
    pipelines: Mapping[str, Any] | None = None
    temporal_labels: tuple[int, ...] = ()
    seed: int = 0
    options: dict[str, Any] = field(default_factory=dict)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    instrumentation: Instrumentation | None = None


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` call produced.

    Attributes:
        kind: the spec's kind.
        result: the kind's native result object —
            :class:`~repro.core.comparison.ComparisonResult` (or a
            list of them, one per condition),
            :class:`~repro.reliability.sweep.RobustnessSweepResult` or
            :class:`~repro.streaming.sweep.StreamingSweepResult` —
            byte-identical across backends and worker counts.
        snapshot: the reconciled observability snapshot (passes
            ``validate_snapshot`` and the shard-count invariants).
        num_shards: shard-plan size.
        num_cells: total grid cells.
        cache_stats: representation-cache totals across shards.
    """

    kind: str
    result: Any
    snapshot: dict[str, Any]
    num_shards: int
    num_cells: int
    cache_stats: dict[str, int]


# ----------------------------------------------------------------------
# Shard workers (module-level: picklable by reference for the pool)
# ----------------------------------------------------------------------
def _shard_obs(
    task: dict[str, Any],
) -> tuple[Instrumentation, bool, DeterministicClock | None]:
    """The shard's observability sink and whether this shard owns it.

    Owned sinks run on a :class:`DeterministicClock` (also returned, so
    shard work can time itself off the same virtual clock), making the
    spans and duration histograms a shard emits depend only on its
    work — the backbone of serial/parallel byte-identity.  A shared
    user-owned sink keeps the wall clock (None is returned).  Every
    shard books itself into the shard-count invariants either way.
    """
    shared = task.get("shared_obs")
    clock = None if shared is not None else DeterministicClock()
    obs = shared if shared is not None else Instrumentation(clock=clock)
    shard: Shard = task["shard"]
    obs.registry.counter(
        "parallel_shards_total", help="work shards executed"
    ).inc()
    obs.registry.counter(
        "parallel_cells_total", help="grid cells executed"
    ).inc(len(shard.cells))
    return obs, shared is None, clock


def _materialise(factory: Any, condition: Any = None):
    """Turn a pipeline factory (config or instance) into an instance."""
    if hasattr(factory, "fit"):  # already a pipeline instance
        if condition is not None:
            raise ValueError(
                "replicating over conditions requires config dataclasses "
                "(repro.core.presets), not pipeline instances"
            )
        return factory
    config = factory
    if condition is not None:
        config = dataclasses.replace(config, seed=int(condition))
    return make_pipeline(config)


def _execute_shard(task: dict[str, Any]) -> dict[str, Any]:
    """Run one shard (any kind); the process-pool entry point."""
    kind = task["kind"]
    if kind == "comparison":
        return _comparison_shard(task)
    if kind == "robustness":
        return _robustness_shard(task)
    if kind == "streaming":
        return _streaming_shard(task)
    raise ValueError(f"unknown shard kind {kind!r}")


def _comparison_shard(task: dict[str, Any]) -> dict[str, Any]:
    """One comparison cell: construct, fit and measure one pipeline."""
    obs, own, _ = _shard_obs(task)
    cache = RepresentationCache.from_config(task["cache"], instrumentation=obs)
    cells = []
    for cell in task["shard"].cells:
        pipeline = _materialise(task["pipelines"][cell.paradigm], cell.condition)
        pipeline.instrument(obs)
        if cache is not None:
            pipeline.attach_cache(cache)
        metrics = measure_paradigm(
            pipeline, task["train"], task["test"], task["temporal_labels"]
        )
        cells.append((cell.paradigm, cell.condition, metrics))
    return {
        "snapshot": obs.snapshot() if own else None,
        "cells": cells,
        "cache_stats": cache.stats() if cache is not None else {},
    }


def _robustness_shard(task: dict[str, Any]) -> dict[str, Any]:
    """One robustness row: fit one paradigm, evaluate every severity."""
    from ..reliability.sweep import run_paradigm_curve

    obs, own, clock = _shard_obs(task)
    cache = RepresentationCache.from_config(task["cache"], instrumentation=obs)
    shard: Shard = task["shard"]
    name = shard.cells[0].paradigm
    pipeline = _materialise(task["pipelines"][name])
    if cache is not None:
        pipeline.attach_cache(cache)

    state_path = task["state_path"]  # serial backend only: incremental writes
    done = task["done"]
    fresh: dict[str, dict[str, Any]] = {}

    def on_point(key: str, point) -> None:
        fresh[key] = point.to_dict()
        if state_path is not None:
            done[key] = fresh[key]
            state_path.parent.mkdir(parents=True, exist_ok=True)
            state_path.write_text(json.dumps(done))

    points = run_paradigm_curve(
        name,
        pipeline,
        task["train"],
        task["test"],
        severities=[c.condition for c in shard.cells],
        seed=task["seed"],
        fault_profile=task["fault_profile"],
        checkpoint_dir=task["checkpoint_dir"],
        max_retries=task["max_retries"],
        stage_timeout_s=task["stage_timeout_s"],
        instrumentation=obs,
        done=done,
        on_point=on_point,
        clock=clock,
    )
    return {
        "snapshot": obs.snapshot() if own else None,
        "paradigm": name,
        "points": points,
        "fresh": fresh,
        "cache_stats": cache.stats() if cache is not None else {},
    }


def _streaming_shard(task: dict[str, Any]) -> dict[str, Any]:
    """One streaming row: run one paradigm across every load factor."""
    from ..streaming.sweep import run_paradigm_stream

    obs, own, _ = _shard_obs(task)
    shard: Shard = task["shard"]
    name = shard.cells[0].paradigm
    with obs.tracer.span(f"stream.{name}"):
        points = run_paradigm_stream(
            name,
            task["predictor"],
            task["stream"],
            task["window_us"],
            load_factors=[c.condition for c in shard.cells],
            fallbacks=task["fallbacks"],
            service=task["service"],
            shed_policy=task["shed_policy"],
            breaker_policy=task["breaker_policy"],
            queue_capacity=task["queue_capacity"],
            seed=task["seed"],
        )
    return {
        "snapshot": obs.snapshot() if own else None,
        "paradigm": name,
        "points": points,
        "cache_stats": {},
    }


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _normalise_factories(
    spec: SweepSpec, backend: str, label: str, defaults: Mapping[str, Any]
) -> dict[str, Any]:
    """Validate and resolve the per-paradigm factories of a spec."""
    factories = dict(spec.pipelines) if spec.pipelines is not None else dict(defaults)
    if set(factories) != set(PARADIGMS):
        raise ValueError(f"{label} must cover exactly {PARADIGMS}")
    if backend == "process" and spec.kind != "streaming":
        for name, factory in factories.items():
            if hasattr(factory, "fit"):
                raise ValueError(
                    f"the process backend needs picklable config dataclasses "
                    f"(repro.core.presets), but {label}[{name!r}] is a "
                    f"pipeline instance — pass its config or use the "
                    f"serial backend"
                )
    return factories


def _collect(
    spec: SweepSpec,
    shards: tuple[Shard, ...],
    tasks: list[dict[str, Any]],
    parallel: ParallelConfig,
) -> tuple[list[dict[str, Any]], dict[str, Any], dict[str, int]]:
    """Run the shard plan and reconcile the merged snapshot."""
    outs = run_shards(tasks, _execute_shard, parallel)
    if spec.instrumentation is not None:
        snapshot = spec.instrumentation.snapshot()
    else:
        snapshot = merge_snapshots([out["snapshot"] for out in outs])
    num_cells = sum(len(s.cells) for s in shards)
    problems = reconcile_shards(snapshot, len(shards), num_cells)
    if problems:
        raise RuntimeError(
            "merged snapshot failed reconciliation: " + "; ".join(problems)
        )
    cache_stats: dict[str, int] = {}
    for out in outs:
        for key, value in out.get("cache_stats", {}).items():
            cache_stats[key] = cache_stats.get(key, 0) + value
    return outs, snapshot, cache_stats


def _run_comparison(spec: SweepSpec, parallel: ParallelConfig) -> SweepResult:
    backend = parallel.resolve()
    factories = _normalise_factories(
        spec, backend, "pipelines", default_configs(spec.seed)
    )
    conditions = tuple(spec.conditions)
    shards = plan_shards(PARADIGMS, conditions, group_by="cell")
    tasks = [
        {
            "kind": "comparison",
            "shard": shard,
            "shared_obs": spec.instrumentation,
            "pipelines": factories,
            "train": spec.train,
            "test": spec.test,
            "temporal_labels": tuple(spec.temporal_labels),
            "cache": spec.cache,
        }
        for shard in shards
    ]
    outs, snapshot, cache_stats = _collect(spec, shards, tasks, parallel)

    measured = [cell for out in outs for cell in out["cells"]]
    if conditions:
        by_condition: dict[Any, dict[str, Any]] = {c: {} for c in conditions}
        for name, condition, metrics in measured:
            by_condition[condition][name] = metrics
        result: Any = [assemble_comparison(by_condition[c]) for c in conditions]
    else:
        result = assemble_comparison(
            {name: metrics for name, _, metrics in measured}
        )
    return SweepResult(
        kind="comparison",
        result=result,
        snapshot=snapshot,
        num_shards=len(shards),
        num_cells=sum(len(s.cells) for s in shards),
        cache_stats=cache_stats,
    )


def _run_robustness(spec: SweepSpec, parallel: ParallelConfig) -> SweepResult:
    from ..reliability.sweep import RobustnessSweepResult, default_fault_profile

    backend = parallel.resolve()
    severities = tuple(float(s) for s in spec.conditions)
    if not severities:
        raise ValueError("severities must not be empty")
    if list(severities) != sorted(severities):
        raise ValueError("severities must be ascending")
    factories = _normalise_factories(
        spec, backend, "pipelines", default_configs(spec.seed)
    )

    options = spec.options
    checkpoint_dir = options.get("checkpoint_dir")
    checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
    state_path = checkpoint_dir / "sweep_state.json" if checkpoint_dir else None
    done: dict[str, dict[str, Any]] = {}
    if state_path is not None and state_path.exists():
        try:
            done = json.loads(state_path.read_text())
        except (ValueError, OSError):
            done = {}  # corrupt state file: redo the points

    shards = plan_shards(PARADIGMS, severities, group_by="paradigm")
    tasks = [
        {
            "kind": "robustness",
            "shard": shard,
            "shared_obs": spec.instrumentation,
            "pipelines": factories,
            "train": spec.train,
            "test": spec.test,
            "seed": spec.seed,
            "fault_profile": options.get("fault_profile", default_fault_profile),
            "checkpoint_dir": checkpoint_dir,
            "max_retries": options.get("max_retries", 1),
            "stage_timeout_s": options.get("stage_timeout_s"),
            "cache": spec.cache,
            # Incremental state writes only in-process; pool workers
            # return their fresh points and the coordinator persists.
            "state_path": state_path if backend == "serial" else None,
            "done": done,
        }
        for shard in shards
    ]
    outs, snapshot, cache_stats = _collect(spec, shards, tasks, parallel)

    result = RobustnessSweepResult(severities=severities, seed=spec.seed)
    for out in outs:
        result.curves[out["paradigm"]] = out["points"]
    if state_path is not None and any(out["fresh"] for out in outs):
        for out in outs:
            done.update(out["fresh"])
        state_path.parent.mkdir(parents=True, exist_ok=True)
        state_path.write_text(json.dumps(done))
    return SweepResult(
        kind="robustness",
        result=result,
        snapshot=snapshot,
        num_shards=len(shards),
        num_cells=sum(len(s.cells) for s in shards),
        cache_stats=cache_stats,
    )


def _run_streaming(spec: SweepSpec, parallel: ParallelConfig) -> SweepResult:
    from ..streaming.sweep import (
        CAPACITY_HEADROOM,
        StreamingSweepResult,
        _default_predictors,
        calibrate_service,
    )

    backend = parallel.resolve()
    load_factors = tuple(float(f) for f in spec.conditions)
    if not load_factors:
        raise ValueError("load_factors must not be empty")
    if list(load_factors) != sorted(load_factors):
        raise ValueError("load_factors must be ascending")
    predictors = _normalise_factories(
        spec, backend, "predictors", _default_predictors()
    )

    options = spec.options
    fallbacks = options.get("fallbacks")
    service_models = options.get("service_models")
    shards = plan_shards(PARADIGMS, load_factors, group_by="paradigm")
    tasks = []
    for shard in shards:
        name = shard.cells[0].paradigm
        tasks.append(
            {
                "kind": "streaming",
                "shard": shard,
                "shared_obs": spec.instrumentation,
                "predictor": predictors[name],
                "stream": spec.stream,
                "window_us": int(spec.window_us),
                "fallbacks": (
                    tuple(fallbacks.get(name, ())) if fallbacks else ()
                ),
                "service": (
                    service_models[name]
                    if service_models is not None
                    else calibrate_service(
                        spec.stream, int(spec.window_us), CAPACITY_HEADROOM[name]
                    )
                ),
                "shed_policy": options.get("shed_policy"),
                "breaker_policy": options.get("breaker_policy"),
                "queue_capacity": options.get("queue_capacity", 16),
                "seed": spec.seed,
            }
        )
    outs, snapshot, cache_stats = _collect(spec, shards, tasks, parallel)

    result = StreamingSweepResult(
        load_factors=load_factors, window_us=int(spec.window_us), seed=spec.seed
    )
    for out in outs:
        result.curves[out["paradigm"]] = out["points"]
    return SweepResult(
        kind="streaming",
        result=result,
        snapshot=snapshot,
        num_shards=len(shards),
        num_cells=sum(len(s.cells) for s in shards),
        cache_stats=cache_stats,
    )


def run_sweep(spec: SweepSpec, parallel: ParallelConfig | None = None) -> SweepResult:
    """Execute one sweep spec on the sharded executor.

    Args:
        spec: the grid description (see :class:`SweepSpec`).
        parallel: overrides ``spec.parallel`` when given.

    Returns:
        The reconciled :class:`SweepResult`.  For any fixed spec the
        ``result`` and (with per-shard instrumentation) the
        ``snapshot`` are byte-identical across backends and worker
        counts.

    Raises:
        ValueError: on an unknown kind, an invalid grid, a shared
            ``instrumentation`` combined with the process backend, or
            pipeline instances on the process backend.
        RuntimeError: when the merged snapshot fails reconciliation or
            a pipeline fails to fit.
    """
    if spec.kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {spec.kind!r}")
    parallel = parallel if parallel is not None else spec.parallel
    if spec.instrumentation is not None and parallel.resolve() == "process":
        raise ValueError(
            "a shared instrumentation requires the serial backend "
            "(n_workers=1); per-shard instrumentation is merged "
            "automatically when instrumentation is None"
        )
    if spec.kind == "comparison":
        return _run_comparison(spec, parallel)
    if spec.kind == "robustness":
        return _run_robustness(spec, parallel)
    return _run_streaming(spec, parallel)
