"""Unified sweep entry point: one spec, three kinds, sharded and cached.

:func:`run_sweep` is the single calling convention behind the
repository's three measurement grids — the Table-I comparison
(``kind="comparison"``), the fault-robustness sweep
(``kind="robustness"``) and the streaming overload sweep
(``kind="streaming"``).  A :class:`SweepSpec` names the grid (paradigm
factories × conditions), the seeds, the instrumentation and the
``parallel=`` knob; the executor plans deterministic shards
(:func:`~repro.parallel.sharding.plan_shards`), runs them serially, on
a thread pool or on a persistent forked process pool, memoizes event
encodings through the content-addressed
:class:`~repro.parallel.cache.RepresentationCache` (optionally one
cache shared by every shard — ``CacheConfig(shared=True)``), and folds
per-shard results and observability snapshots into one reconciled
:class:`SweepResult`.

Determinism contract: with the default per-shard instrumentation, the
results **and** the merged snapshot are byte-identical for any
``n_workers`` — the shard plan ignores the worker count, every shard
seeds and times itself (:class:`~repro.parallel.merge.DeterministicClock`)
from its grid position alone, and the merge runs in shard-plan order.
The legacy entry points (``run_comparison``, ``run_robustness_sweep``,
``run_streaming_sweep``) are thin shims over this module.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..core.comparison import PARADIGMS, assemble_comparison, measure_paradigm
from ..core.presets import default_configs, make_pipeline
from ..observability import Instrumentation
from .cache import CacheConfig, RepresentationCache
from .merge import DeterministicClock, merge_snapshots, reconcile_shards
from .sharding import ParallelConfig, Shard, plan_shards, run_shards

__all__ = ["SweepSpec", "SweepResult", "run_sweep"]

logger = logging.getLogger(__name__)

_KINDS = ("comparison", "robustness", "streaming")


def _write_state(state_path: Path, done: Mapping[str, Any]) -> None:
    """Atomically persist sweep resume state (tmp file + rename).

    A crash mid-write leaves the previous checkpoint intact instead of
    a truncated JSON file that a resume would then have to discard.
    """
    state_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = state_path.with_name(f"{state_path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(done))
        os.replace(tmp, state_path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise


def _load_state(state_path: Path | None) -> dict[str, dict[str, Any]]:
    """Resume state from disk; unreadable files mean "no checkpoint".

    A corrupt or truncated state file (killed writer, bad disk) is
    logged and treated as an empty checkpoint — those points are
    simply redone — never surfaced as a ``JSONDecodeError``.
    """
    if state_path is None or not state_path.exists():
        return {}
    try:
        done = json.loads(state_path.read_text())
    except (ValueError, OSError) as exc:
        logger.warning(
            "ignoring unreadable sweep state %s (%s); redoing those points",
            state_path,
            exc,
        )
        return {}
    if not isinstance(done, dict):
        logger.warning(
            "ignoring malformed sweep state %s (expected an object, got %s); "
            "redoing those points",
            state_path,
            type(done).__name__,
        )
        return {}
    return done


@dataclass
class SweepSpec:
    """One description for every paradigm-grid measurement.

    Attributes:
        kind: ``"comparison"``, ``"robustness"`` or ``"streaming"``.
        train / test: the dataset split (comparison and robustness).
        stream: the workload stream (streaming).
        window_us: streaming window length.
        conditions: the swept grid columns — replication seeds for
            comparison (empty = one run per paradigm as configured),
            fault severities for robustness, load factors for
            streaming.
        pipelines: paradigm name → factory.  Config dataclasses
            (:mod:`repro.core.presets`) work on every backend;
            pipeline instances / predictor callables work on the
            in-process backends (serial, thread) but not on the
            process backend, which needs picklable, re-constructible
            descriptions.  None selects the paradigm defaults of the
            kind.
        temporal_labels: comparison-only; labels distinguishable only
            through event timing.
        seed: master seed of the sweep.
        options: kind-specific extras — robustness:
            ``fault_profile``, ``checkpoint_dir``, ``max_retries``,
            ``stage_timeout_s``; streaming: ``fallbacks``,
            ``service_models``, ``shed_policy``, ``breaker_policy``,
            ``queue_capacity``.
        parallel: sharded-execution knobs.
        cache: representation-cache knobs (fresh per-shard in-memory
            tier by default; ``shared=True`` shares one cache across
            all shards — see :class:`~repro.parallel.cache.CacheConfig`).
        instrumentation: optional user-owned
            :class:`~repro.observability.Instrumentation` shared by
            every shard — serial backend only.  When None (the
            default) each shard records into its own
            deterministically-clocked instrumentation and the merged
            snapshot lands in :attr:`SweepResult.snapshot`.
    """

    kind: str
    train: Any = None
    test: Any = None
    stream: Any = None
    window_us: int = 10_000
    conditions: Sequence[Any] = ()
    pipelines: Mapping[str, Any] | None = None
    temporal_labels: tuple[int, ...] = ()
    seed: int = 0
    options: dict[str, Any] = field(default_factory=dict)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    instrumentation: Instrumentation | None = None


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` call produced.

    Attributes:
        kind: the spec's kind.
        result: the kind's native result object —
            :class:`~repro.core.comparison.ComparisonResult` (or a
            list of them, one per condition),
            :class:`~repro.reliability.sweep.RobustnessSweepResult` or
            :class:`~repro.streaming.sweep.StreamingSweepResult` —
            byte-identical across backends and worker counts.
        snapshot: the reconciled observability snapshot (passes
            ``validate_snapshot`` and the shard-count invariants).
        num_shards: shard-plan size.
        num_cells: total grid cells.
        cache_stats: representation-cache totals across shards.
    """

    kind: str
    result: Any
    snapshot: dict[str, Any]
    num_shards: int
    num_cells: int
    cache_stats: dict[str, int]


# ----------------------------------------------------------------------
# Shard workers (module-level: picklable by reference for the pool)
# ----------------------------------------------------------------------
def _shard_obs(
    task: dict[str, Any],
) -> tuple[Instrumentation, bool, DeterministicClock | None]:
    """The shard's observability sink and whether this shard owns it.

    Owned sinks run on a :class:`DeterministicClock` (also returned, so
    shard work can time itself off the same virtual clock), making the
    spans and duration histograms a shard emits depend only on its
    work — the backbone of serial/parallel byte-identity.  A shared
    user-owned sink keeps the wall clock (None is returned).  Every
    shard books itself into the shard-count invariants either way.
    """
    shared = task.get("shared_obs")
    clock = None if shared is not None else DeterministicClock()
    obs = shared if shared is not None else Instrumentation(clock=clock)
    shard: Shard = task["shard"]
    obs.registry.counter(
        "parallel_shards_total", help="work shards executed"
    ).inc()
    obs.registry.counter(
        "parallel_cells_total", help="grid cells executed"
    ).inc(len(shard.cells))
    return obs, shared is None, clock


def _materialise(factory: Any, condition: Any = None):
    """Turn a pipeline factory (config or instance) into an instance."""
    if hasattr(factory, "fit"):  # already a pipeline instance
        if condition is not None:
            raise ValueError(
                "replicating over conditions requires config dataclasses "
                "(repro.core.presets), not pipeline instances"
            )
        return factory
    config = factory
    if condition is not None:
        config = dataclasses.replace(config, seed=int(condition))
    return make_pipeline(config)


def _execute_shard(
    task: dict[str, Any], shared: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Run one shard (any kind); the worker-pool entry point.

    ``task`` is the small per-shard payload; ``shared`` the heavy
    context common to every shard of the sweep (datasets, factories),
    passed by reference on the in-process backends and shipped once as
    a blob on the process backend.
    """
    if shared is not None:
        task = {**shared, **task}
    kind = task["kind"]
    if kind == "comparison":
        return _comparison_shard(task)
    if kind == "robustness":
        return _robustness_shard(task)
    if kind == "streaming":
        return _streaming_shard(task)
    raise ValueError(f"unknown shard kind {kind!r}")


def _shard_cache(
    task: dict[str, Any], obs: Instrumentation
) -> RepresentationCache | None:
    """The shard's representation cache.

    Prefers a sweep-wide shared instance when the coordinator provides
    one.  A shared cache (or a per-shard cache over a shared disk
    tier, i.e. ``CacheConfig.shared`` on the process backend) is never
    bound to the shard's instrumentation: its hit pattern depends on
    shard scheduling, and keeping those counters out of the snapshot
    is what preserves byte-identical merged snapshots across worker
    counts.
    """
    cache = task.get("shared_cache")
    if cache is not None:
        return cache
    config: CacheConfig = task["cache"]
    return RepresentationCache.from_config(
        config, instrumentation=None if config.shared else obs
    )


def _shard_cache_stats(task: dict[str, Any], cache) -> dict[str, int]:
    """Per-shard cache totals (empty for a shared cache: counted once
    by the coordinator, not once per shard)."""
    if cache is None or task.get("shared_cache") is not None:
        return {}
    return cache.stats()


def _comparison_shard(task: dict[str, Any]) -> dict[str, Any]:
    """One comparison cell: construct, fit and measure one pipeline."""
    obs, own, _ = _shard_obs(task)
    cache = _shard_cache(task, obs)
    cells = []
    for cell in task["shard"].cells:
        pipeline = _materialise(task["pipelines"][cell.paradigm], cell.condition)
        pipeline.instrument(obs)
        if cache is not None:
            pipeline.attach_cache(cache)
        metrics = measure_paradigm(
            pipeline, task["train"], task["test"], task["temporal_labels"]
        )
        cells.append((cell.paradigm, cell.condition, metrics))
    return {
        "snapshot": obs.snapshot() if own else None,
        "cells": cells,
        "cache_stats": _shard_cache_stats(task, cache),
    }


def _robustness_shard(task: dict[str, Any]) -> dict[str, Any]:
    """One robustness row: fit one paradigm, evaluate every severity."""
    from ..reliability.sweep import run_paradigm_curve

    obs, own, clock = _shard_obs(task)
    cache = _shard_cache(task, obs)
    shard: Shard = task["shard"]
    name = shard.cells[0].paradigm
    pipeline = _materialise(task["pipelines"][name])
    if cache is not None:
        pipeline.attach_cache(cache)

    state_path = task["state_path"]  # serial backend only: incremental writes
    done = task["done"]
    fresh: dict[str, dict[str, Any]] = {}

    def on_point(key: str, point) -> None:
        fresh[key] = point.to_dict()
        if state_path is not None:
            done[key] = fresh[key]
            _write_state(state_path, done)

    points = run_paradigm_curve(
        name,
        pipeline,
        task["train"],
        task["test"],
        severities=[c.condition for c in shard.cells],
        seed=task["seed"],
        fault_profile=task["fault_profile"],
        checkpoint_dir=task["checkpoint_dir"],
        max_retries=task["max_retries"],
        stage_timeout_s=task["stage_timeout_s"],
        instrumentation=obs,
        done=done,
        on_point=on_point,
        clock=clock,
    )
    return {
        "snapshot": obs.snapshot() if own else None,
        "paradigm": name,
        "points": points,
        "fresh": fresh,
        "cache_stats": _shard_cache_stats(task, cache),
    }


def _streaming_shard(task: dict[str, Any]) -> dict[str, Any]:
    """One streaming row: run one paradigm across every load factor."""
    from ..streaming.sweep import run_paradigm_stream

    obs, own, _ = _shard_obs(task)
    shard: Shard = task["shard"]
    name = shard.cells[0].paradigm
    with obs.tracer.span(f"stream.{name}"):
        points = run_paradigm_stream(
            name,
            task["predictor"],
            task["stream"],
            task["window_us"],
            load_factors=[c.condition for c in shard.cells],
            fallbacks=task["fallbacks"],
            service=task["service"],
            shed_policy=task["shed_policy"],
            breaker_policy=task["breaker_policy"],
            queue_capacity=task["queue_capacity"],
            seed=task["seed"],
        )
    return {
        "snapshot": obs.snapshot() if own else None,
        "paradigm": name,
        "points": points,
        "cache_stats": {},
    }


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _normalise_factories(
    spec: SweepSpec, backend: str, label: str, defaults: Mapping[str, Any]
) -> dict[str, Any]:
    """Validate and resolve the per-paradigm factories of a spec."""
    factories = dict(spec.pipelines) if spec.pipelines is not None else dict(defaults)
    if set(factories) != set(PARADIGMS):
        raise ValueError(f"{label} must cover exactly {PARADIGMS}")
    if backend == "process" and spec.kind != "streaming":
        for name, factory in factories.items():
            if hasattr(factory, "fit"):
                raise ValueError(
                    f"the process backend needs picklable config dataclasses "
                    f"(repro.core.presets), but {label}[{name!r}] is a "
                    f"pipeline instance — pass its config or use the "
                    f"serial backend"
                )
    return factories


def _cache_plumbing(
    spec: SweepSpec, backend: str
) -> tuple[dict[str, Any], RepresentationCache | None, Callable[[], None]]:
    """Shared-cache wiring: (base shared context, shared cache, cleanup).

    With ``spec.cache.shared``, the in-process backends (serial,
    thread) get **one** thread-safe cache instance handed to every
    shard by reference, so replicated cells reuse each other's
    encodings instead of re-encoding per shard.  The process backend
    cannot share memory; there the shards get a common disk tier
    instead — ``cache_dir`` if set, else a per-run temp directory that
    the returned cleanup removes.
    """
    cache_config = spec.cache
    shared_cache: RepresentationCache | None = None

    def cleanup() -> None:
        pass

    if cache_config.enabled and cache_config.shared:
        if backend in ("serial", "thread"):
            shared_cache = RepresentationCache.from_config(
                cache_config, thread_safe=True
            )
        elif cache_config.cache_dir is None:
            tmp_dir = tempfile.mkdtemp(prefix="repro-sweep-cache-")
            cache_config = dataclasses.replace(cache_config, cache_dir=tmp_dir)

            def cleanup() -> None:
                shutil.rmtree(tmp_dir, ignore_errors=True)

    shared: dict[str, Any] = {"cache": cache_config}
    if shared_cache is not None:
        shared["shared_cache"] = shared_cache
    return shared, shared_cache, cleanup


def _collect(
    spec: SweepSpec,
    shards: tuple[Shard, ...],
    tasks: list[dict[str, Any]],
    parallel: ParallelConfig,
    shared: dict[str, Any],
    shared_cache: RepresentationCache | None = None,
) -> tuple[list[dict[str, Any]], dict[str, Any], dict[str, int]]:
    """Run the shard plan and reconcile the merged snapshot."""
    outs = run_shards(tasks, _execute_shard, parallel, shared=shared)
    if spec.instrumentation is not None:
        snapshot = spec.instrumentation.snapshot()
    else:
        snapshot = merge_snapshots([out["snapshot"] for out in outs])
    num_cells = sum(len(s.cells) for s in shards)
    problems = reconcile_shards(snapshot, len(shards), num_cells)
    if problems:
        raise RuntimeError(
            "merged snapshot failed reconciliation: " + "; ".join(problems)
        )
    cache_stats: dict[str, int] = {}
    for out in outs:
        for key, value in out.get("cache_stats", {}).items():
            cache_stats[key] = cache_stats.get(key, 0) + value
    if shared_cache is not None:
        for key, value in shared_cache.stats().items():
            cache_stats[key] = cache_stats.get(key, 0) + value
    return outs, snapshot, cache_stats


def _run_comparison(spec: SweepSpec, parallel: ParallelConfig) -> SweepResult:
    backend = parallel.resolve()
    factories = _normalise_factories(
        spec, backend, "pipelines", default_configs(spec.seed)
    )
    conditions = tuple(spec.conditions)
    shards = plan_shards(PARADIGMS, conditions, group_by="cell")
    shared, shared_cache, cleanup = _cache_plumbing(spec, backend)
    shared.update(
        {
            "kind": "comparison",
            "shared_obs": spec.instrumentation,
            "pipelines": factories,
            "train": spec.train,
            "test": spec.test,
            "temporal_labels": tuple(spec.temporal_labels),
        }
    )
    tasks = [{"shard": shard} for shard in shards]
    try:
        outs, snapshot, cache_stats = _collect(
            spec, shards, tasks, parallel, shared, shared_cache
        )
    finally:
        cleanup()

    measured = [cell for out in outs for cell in out["cells"]]
    if conditions:
        by_condition: dict[Any, dict[str, Any]] = {c: {} for c in conditions}
        for name, condition, metrics in measured:
            by_condition[condition][name] = metrics
        result: Any = [assemble_comparison(by_condition[c]) for c in conditions]
    else:
        result = assemble_comparison(
            {name: metrics for name, _, metrics in measured}
        )
    return SweepResult(
        kind="comparison",
        result=result,
        snapshot=snapshot,
        num_shards=len(shards),
        num_cells=sum(len(s.cells) for s in shards),
        cache_stats=cache_stats,
    )


def _run_robustness(spec: SweepSpec, parallel: ParallelConfig) -> SweepResult:
    from ..reliability.sweep import RobustnessSweepResult, default_fault_profile

    backend = parallel.resolve()
    severities = tuple(float(s) for s in spec.conditions)
    if not severities:
        raise ValueError("severities must not be empty")
    if list(severities) != sorted(severities):
        raise ValueError("severities must be ascending")
    factories = _normalise_factories(
        spec, backend, "pipelines", default_configs(spec.seed)
    )

    options = spec.options
    checkpoint_dir = options.get("checkpoint_dir")
    checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
    state_path = checkpoint_dir / "sweep_state.json" if checkpoint_dir else None
    done = _load_state(state_path)

    shards = plan_shards(PARADIGMS, severities, group_by="paradigm")
    shared, shared_cache, cleanup = _cache_plumbing(spec, backend)
    shared.update(
        {
            "kind": "robustness",
            "shared_obs": spec.instrumentation,
            "pipelines": factories,
            "train": spec.train,
            "test": spec.test,
            "seed": spec.seed,
            "fault_profile": options.get("fault_profile", default_fault_profile),
            "checkpoint_dir": checkpoint_dir,
            "max_retries": options.get("max_retries", 1),
            "stage_timeout_s": options.get("stage_timeout_s"),
            # Incremental state writes only single-threaded in-process;
            # thread/pool workers return their fresh points and the
            # coordinator persists atomically below.
            "state_path": state_path if backend == "serial" else None,
            "done": done,
        }
    )
    tasks = [{"shard": shard} for shard in shards]
    try:
        outs, snapshot, cache_stats = _collect(
            spec, shards, tasks, parallel, shared, shared_cache
        )
    finally:
        cleanup()

    result = RobustnessSweepResult(severities=severities, seed=spec.seed)
    for out in outs:
        result.curves[out["paradigm"]] = out["points"]
    if state_path is not None and any(out["fresh"] for out in outs):
        for out in outs:
            done.update(out["fresh"])
        _write_state(state_path, done)
    return SweepResult(
        kind="robustness",
        result=result,
        snapshot=snapshot,
        num_shards=len(shards),
        num_cells=sum(len(s.cells) for s in shards),
        cache_stats=cache_stats,
    )


def _run_streaming(spec: SweepSpec, parallel: ParallelConfig) -> SweepResult:
    from ..streaming.sweep import (
        CAPACITY_HEADROOM,
        StreamingSweepResult,
        _default_predictors,
        calibrate_service,
    )

    backend = parallel.resolve()
    load_factors = tuple(float(f) for f in spec.conditions)
    if not load_factors:
        raise ValueError("load_factors must not be empty")
    if list(load_factors) != sorted(load_factors):
        raise ValueError("load_factors must be ascending")
    predictors = _normalise_factories(
        spec, backend, "predictors", _default_predictors()
    )

    options = spec.options
    fallbacks = options.get("fallbacks")
    service_models = options.get("service_models")
    shards = plan_shards(PARADIGMS, load_factors, group_by="paradigm")
    shared, shared_cache, cleanup = _cache_plumbing(spec, backend)
    shared.update(
        {
            "kind": "streaming",
            "shared_obs": spec.instrumentation,
            "stream": spec.stream,
            "window_us": int(spec.window_us),
            "shed_policy": options.get("shed_policy"),
            "breaker_policy": options.get("breaker_policy"),
            "queue_capacity": options.get("queue_capacity", 16),
            "seed": spec.seed,
        }
    )
    tasks = []
    for shard in shards:
        name = shard.cells[0].paradigm
        tasks.append(
            {
                "shard": shard,
                "predictor": predictors[name],
                "fallbacks": (
                    tuple(fallbacks.get(name, ())) if fallbacks else ()
                ),
                "service": (
                    service_models[name]
                    if service_models is not None
                    else calibrate_service(
                        spec.stream, int(spec.window_us), CAPACITY_HEADROOM[name]
                    )
                ),
            }
        )
    try:
        outs, snapshot, cache_stats = _collect(
            spec, shards, tasks, parallel, shared, shared_cache
        )
    finally:
        cleanup()

    result = StreamingSweepResult(
        load_factors=load_factors, window_us=int(spec.window_us), seed=spec.seed
    )
    for out in outs:
        result.curves[out["paradigm"]] = out["points"]
    return SweepResult(
        kind="streaming",
        result=result,
        snapshot=snapshot,
        num_shards=len(shards),
        num_cells=sum(len(s.cells) for s in shards),
        cache_stats=cache_stats,
    )


def run_sweep(spec: SweepSpec, parallel: ParallelConfig | None = None) -> SweepResult:
    """Execute one sweep spec on the sharded executor.

    Args:
        spec: the grid description (see :class:`SweepSpec`).
        parallel: overrides ``spec.parallel`` when given.

    Returns:
        The reconciled :class:`SweepResult`.  For any fixed spec the
        ``result`` and (with per-shard instrumentation) the
        ``snapshot`` are byte-identical across backends and worker
        counts.

    Raises:
        ValueError: on an unknown kind, an invalid grid, a shared
            ``instrumentation`` combined with a concurrent backend, or
            pipeline instances on the process backend.
        RuntimeError: when the merged snapshot fails reconciliation or
            a pipeline fails to fit.
    """
    if spec.kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, got {spec.kind!r}")
    parallel = parallel if parallel is not None else spec.parallel
    if spec.instrumentation is not None and parallel.resolve() != "serial":
        raise ValueError(
            "a shared instrumentation requires the serial backend "
            "(n_workers=1); per-shard instrumentation is merged "
            "automatically when instrumentation is None"
        )
    if spec.kind == "comparison":
        return _run_comparison(spec, parallel)
    if spec.kind == "robustness":
        return _run_robustness(spec, parallel)
    return _run_streaming(spec, parallel)
