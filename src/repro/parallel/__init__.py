"""Sharded parallel execution and content-addressed representation caching.

The ROADMAP's scaling question: the comparison, robustness and
streaming grids are embarrassingly parallel (paradigm × condition ×
recording), yet the legacy entry points ran them serially and
re-encoded every event stream from scratch.  This package supplies the
missing execution layer behind one unified API:

* :mod:`~repro.parallel.sharding` — deterministic work-shard planning
  (the plan depends only on the grid, never on the worker count),
  per-shard seed derivation via :func:`derive_seed`, and a seeded
  process-pool executor with a serial fallback backend;
* :mod:`~repro.parallel.cache` — a content-addressed
  :class:`RepresentationCache` keyed by the SHA-256 of the raw event
  bytes plus the canonicalised encoder config, memoizing CNN frame
  stacks, SNN spike tensors and GNN graphs in memory (LRU) and
  optionally on disk;
* :mod:`~repro.parallel.merge` — a deterministic fold of per-shard
  metrics, reports and observability snapshots into one reconciled
  result that passes ``validate_snapshot`` and the shard-count
  invariants;
* :mod:`~repro.parallel.api` — :class:`SweepSpec` / :func:`run_sweep`,
  the single calling convention the legacy ``run_comparison``,
  ``run_robustness_sweep`` and ``run_streaming_sweep`` entry points now
  delegate to.

Determinism contract: for any fixed spec, results and merged snapshots
are byte-identical across backends and worker counts.
"""

from .api import SweepResult, SweepSpec, run_sweep
from .cache import (
    CacheConfig,
    RepresentationCache,
    canonical_json,
    config_digest,
    content_key,
)
from .merge import (
    DeterministicClock,
    merge_metrics,
    merge_snapshots,
    reconcile_shards,
)
from .sharding import (
    Cell,
    ParallelConfig,
    Shard,
    balance_assignments,
    derive_seed,
    plan_shards,
    run_shards,
)

__all__ = [
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "ParallelConfig",
    "Cell",
    "Shard",
    "plan_shards",
    "balance_assignments",
    "derive_seed",
    "run_shards",
    "CacheConfig",
    "RepresentationCache",
    "canonical_json",
    "config_digest",
    "content_key",
    "DeterministicClock",
    "merge_metrics",
    "merge_snapshots",
    "reconcile_shards",
]
