"""Deterministic work sharding over (paradigm × condition) grids.

A sweep is a grid of cells — one (paradigm, condition) evaluation each
— and this module splits that grid into :class:`Shard`\\ s and runs them
on a backend.  Two properties make parallel runs byte-identical to
serial ones:

* **worker-count independence** — the shard plan depends only on the
  grid (:func:`plan_shards` never sees ``n_workers``), so the same grid
  always produces the same shards in the same order, whether they run
  on one process or eight;
* **per-shard seeding** — every randomised quantity inside a shard is
  derived from the master seed and the cell's grid position
  (:func:`derive_seed`), never from execution order or wall time.

Backends: ``"serial"`` runs shards in-process in plan order (the
debugging reference); ``"thread"`` fans them out on a
``ThreadPoolExecutor`` — shards share the parent's memory (no pickling,
no fork), and the NumPy-heavy stages release the GIL; ``"process"``
fans them out on a persistent forked ``ProcessPoolExecutor`` that is
spawned once and reused across sweeps.  ``"auto"`` picks ``serial``
for one worker, ``thread`` when the machine has a single CPU or cannot
fork (process isolation would only add spawn + pickle overhead there),
and ``process`` otherwise.

For the process backend, heavy per-sweep context (datasets, pipeline
configs) is pickled **once** into a shared blob handed to every task;
each pool child unpickles it on first use and caches it by token, so
per-shard submissions carry only the small shard descriptor.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "Cell",
    "Shard",
    "ParallelConfig",
    "balance_assignments",
    "derive_seed",
    "plan_shards",
    "run_shards",
    "shutdown_pools",
]

_BACKENDS = ("auto", "serial", "thread", "process")


@dataclass(frozen=True)
class Cell:
    """One grid cell: a (paradigm, condition) evaluation.

    Attributes:
        paradigm: pipeline name ("SNN" / "CNN" / "GNN").
        condition: the swept value (severity, load factor, seed), or
            None for single-condition grids.
        index: position in the flattened paradigm-major grid — the
            seed-derivation anchor, independent of sharding.
    """

    paradigm: str
    condition: Any = None
    index: int = 0


@dataclass(frozen=True)
class Shard:
    """A deterministic slice of the grid, executed by one worker.

    Attributes:
        index: position in the shard plan (merge order).
        cells: the grid cells of this shard, in grid order.
    """

    index: int
    cells: tuple[Cell, ...]


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs of the sharded executor.

    Attributes:
        n_workers: worker-pool width; 1 means serial.
        backend: ``"serial"``, ``"thread"``, ``"process"``, or
            ``"auto"`` — serial for one worker, threads when the
            machine has one CPU or cannot fork, processes otherwise.
    """

    n_workers: int = 1
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")

    def resolve(self) -> str:
        """The concrete backend this configuration runs on."""
        if self.backend != "auto":
            return self.backend
        if self.n_workers <= 1:
            return "serial"
        if (os.cpu_count() or 1) <= 1 or _fork_context() is None:
            return "thread"
        return "process"


def derive_seed(*path: int) -> int:
    """Deterministic seed for one grid position.

    Spawns a :class:`numpy.random.SeedSequence` from the integer path
    (master seed, paradigm index, condition index, ...) — collision-
    resistant and independent of execution order, so a cell's seed is
    the same whether its shard runs first, last, serial or parallel.
    """
    if not path:
        raise ValueError("derive_seed needs at least one path component")
    sequence = np.random.SeedSequence([int(p) for p in path])
    return int(sequence.generate_state(1)[0])


def plan_shards(
    paradigms: Sequence[str],
    conditions: Sequence[Any] = (),
    group_by: str = "paradigm",
) -> tuple[Shard, ...]:
    """Split a (paradigm × condition) grid into deterministic shards.

    The plan is a pure function of the grid — never of the worker
    count — which is the invariant behind serial/parallel
    byte-identity: per-shard state (caches, instrumentation, seeds)
    is identical no matter how many workers drain the plan.

    Args:
        paradigms: grid rows, in canonical order.
        conditions: grid columns (empty = one unconditioned cell per
            paradigm).
        group_by: ``"paradigm"`` keeps a whole row in one shard (for
            sweeps that train once per paradigm and evaluate every
            condition on the fitted model); ``"cell"`` makes every
            cell its own shard (for grids whose cells are independent
            fit+measure runs).

    Returns:
        Shards in plan order, covering every cell exactly once.
    """
    if group_by not in ("paradigm", "cell"):
        raise ValueError("group_by must be 'paradigm' or 'cell'")
    cells: list[Cell] = []
    for name in paradigms:
        if conditions:
            for condition in conditions:
                cells.append(Cell(name, condition, index=len(cells)))
        else:
            cells.append(Cell(name, None, index=len(cells)))

    if group_by == "cell":
        return tuple(Shard(i, (cell,)) for i, cell in enumerate(cells))
    shards: list[Shard] = []
    for name in paradigms:
        row = tuple(c for c in cells if c.paradigm == name)
        shards.append(Shard(len(shards), row))
    return tuple(shards)


def balance_assignments(
    weights: Sequence[tuple[str, float]], n_shards: int
) -> dict[str, int]:
    """Deterministic weight-balanced placement of items onto shards.

    Longest-processing-time greedy: items are considered heaviest first
    (ties broken by item id, then original order) and each goes to the
    currently lightest shard (ties broken by lowest shard index).  The
    result is a pure function of ``(weights, n_shards)`` — placement
    never depends on execution order, which is what lets callers treat
    the shard count as a pure computation partition.

    Args:
        weights: ``(item_id, weight)`` pairs; ids must be unique and
            weights non-negative.
        n_shards: number of shards (>= 1).

    Returns:
        item id → shard index in ``[0, n_shards)``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    ids = [item_id for item_id, _ in weights]
    if len(set(ids)) != len(ids):
        raise ValueError("item ids must be unique")
    for item_id, weight in weights:
        if weight < 0:
            raise ValueError(f"negative weight for {item_id!r}")
    order = sorted(
        range(len(weights)), key=lambda i: (-weights[i][1], weights[i][0], i)
    )
    loads = [0.0] * n_shards
    assignment: dict[str, int] = {}
    for i in order:
        item_id, weight = weights[i]
        shard = min(range(n_shards), key=lambda s: (loads[s], s))
        assignment[item_id] = shard
        loads[shard] += weight
    return assignment


def _fork_context() -> multiprocessing.context.BaseContext | None:
    """The fork start-method context, or None where unavailable."""
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except ValueError:
        pass
    return None


_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()
_SHARED_TOKENS = itertools.count()

# Child-side cache of unpickled shared contexts, keyed by token.  Bounded
# so long-lived pool children do not pin every sweep's datasets.
_SHARED_CTX: OrderedDict[str, Any] = OrderedDict()
_SHARED_CTX_LIMIT = 4


def _process_pool(workers: int, context) -> ProcessPoolExecutor:
    """A persistent fork pool of the given width, spawned once and reused.

    Amortises pool start-up across sweep cells: the first sweep pays the
    fork cost, later sweeps submit straight into warm children.
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            _POOLS[workers] = pool
        return pool


def _evict_pool(workers: int) -> None:
    with _POOLS_LOCK:
        pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every persistent process pool (idempotent).

    Registered atexit; callable explicitly by tests or long-running
    hosts that want to reclaim the workers early.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def _invoke_with_shared(worker, token: str, blob: bytes, task: Any) -> Any:
    """Pool-child trampoline: unpickle the shared context once per token."""
    ctx = _SHARED_CTX.get(token)
    if ctx is None:
        ctx = pickle.loads(blob)
        _SHARED_CTX[token] = ctx
        while len(_SHARED_CTX) > _SHARED_CTX_LIMIT:
            _SHARED_CTX.popitem(last=False)
    return worker(task, ctx)


def run_shards(
    tasks: Sequence[Any],
    worker: Callable[..., Any],
    parallel: ParallelConfig,
    shared: Any = None,
) -> list[Any]:
    """Execute one task per shard and return results in plan order.

    Args:
        tasks: per-shard payloads, in shard-plan order (picklable for
            the process backend).
        worker: module-level callable mapping a payload to a result
            (must be picklable by reference for the process backend).
            Called as ``worker(task)``, or ``worker(task, shared)``
            when a shared context is given.
        parallel: backend selection.
        shared: optional context common to every task.  Serial and
            thread backends pass it by reference (zero copies); the
            process backend pickles it once into a blob that each pool
            child unpickles and caches, instead of re-pickling the
            heavy fields into every per-shard payload.

    Returns:
        Worker results, ordered like ``tasks`` regardless of
        completion order.  Worker exceptions propagate unchanged.
    """
    backend = parallel.resolve()
    context = _fork_context() if backend == "process" else None
    if backend == "process" and context is None:
        backend = "serial"  # no-fork-platform fallback
    if backend == "serial":
        if shared is None:
            return [worker(task) for task in tasks]
        return [worker(task, shared) for task in tasks]
    workers = min(parallel.n_workers, max(len(tasks), 1))
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            if shared is None:
                futures = [pool.submit(worker, task) for task in tasks]
            else:
                futures = [pool.submit(worker, task, shared) for task in tasks]
            return [future.result() for future in futures]
    pool = _process_pool(workers, context)
    if shared is None:
        futures = [pool.submit(worker, task) for task in tasks]
    else:
        token = f"{os.getpid()}:{next(_SHARED_TOKENS)}"
        blob = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
        futures = [
            pool.submit(_invoke_with_shared, worker, token, blob, task)
            for task in tasks
        ]
    try:
        return [future.result() for future in futures]
    except BrokenProcessPool:
        # A dead child poisons the whole executor; drop it so the next
        # call gets a fresh pool instead of failing forever.
        _evict_pool(workers)
        raise
    except BaseException:
        for future in futures:
            future.cancel()
        raise
