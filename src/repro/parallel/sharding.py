"""Deterministic work sharding over (paradigm × condition) grids.

A sweep is a grid of cells — one (paradigm, condition) evaluation each
— and this module splits that grid into :class:`Shard`\\ s and runs them
on a backend.  Two properties make parallel runs byte-identical to
serial ones:

* **worker-count independence** — the shard plan depends only on the
  grid (:func:`plan_shards` never sees ``n_workers``), so the same grid
  always produces the same shards in the same order, whether they run
  on one process or eight;
* **per-shard seeding** — every randomised quantity inside a shard is
  derived from the master seed and the cell's grid position
  (:func:`derive_seed`), never from execution order or wall time.

Backends: ``"serial"`` runs shards in-process in plan order (the
debugging reference), ``"process"`` fans them out on a forked
``ProcessPoolExecutor`` and reassembles results in plan order.
``"auto"`` picks ``serial`` for one worker and ``process`` otherwise,
degrading to serial when the platform cannot fork.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "Cell",
    "Shard",
    "ParallelConfig",
    "balance_assignments",
    "derive_seed",
    "plan_shards",
    "run_shards",
]

_BACKENDS = ("auto", "serial", "process")


@dataclass(frozen=True)
class Cell:
    """One grid cell: a (paradigm, condition) evaluation.

    Attributes:
        paradigm: pipeline name ("SNN" / "CNN" / "GNN").
        condition: the swept value (severity, load factor, seed), or
            None for single-condition grids.
        index: position in the flattened paradigm-major grid — the
            seed-derivation anchor, independent of sharding.
    """

    paradigm: str
    condition: Any = None
    index: int = 0


@dataclass(frozen=True)
class Shard:
    """A deterministic slice of the grid, executed by one worker.

    Attributes:
        index: position in the shard plan (merge order).
        cells: the grid cells of this shard, in grid order.
    """

    index: int
    cells: tuple[Cell, ...]


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs of the sharded executor.

    Attributes:
        n_workers: process-pool width; 1 means serial.
        backend: ``"auto"`` (serial for one worker, processes
            otherwise), ``"serial"`` or ``"process"``.
    """

    n_workers: int = 1
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")

    def resolve(self) -> str:
        """The concrete backend this configuration runs on."""
        if self.backend == "serial":
            return "serial"
        if self.backend == "process":
            return "process"
        return "serial" if self.n_workers <= 1 else "process"


def derive_seed(*path: int) -> int:
    """Deterministic seed for one grid position.

    Spawns a :class:`numpy.random.SeedSequence` from the integer path
    (master seed, paradigm index, condition index, ...) — collision-
    resistant and independent of execution order, so a cell's seed is
    the same whether its shard runs first, last, serial or parallel.
    """
    if not path:
        raise ValueError("derive_seed needs at least one path component")
    sequence = np.random.SeedSequence([int(p) for p in path])
    return int(sequence.generate_state(1)[0])


def plan_shards(
    paradigms: Sequence[str],
    conditions: Sequence[Any] = (),
    group_by: str = "paradigm",
) -> tuple[Shard, ...]:
    """Split a (paradigm × condition) grid into deterministic shards.

    The plan is a pure function of the grid — never of the worker
    count — which is the invariant behind serial/parallel
    byte-identity: per-shard state (caches, instrumentation, seeds)
    is identical no matter how many workers drain the plan.

    Args:
        paradigms: grid rows, in canonical order.
        conditions: grid columns (empty = one unconditioned cell per
            paradigm).
        group_by: ``"paradigm"`` keeps a whole row in one shard (for
            sweeps that train once per paradigm and evaluate every
            condition on the fitted model); ``"cell"`` makes every
            cell its own shard (for grids whose cells are independent
            fit+measure runs).

    Returns:
        Shards in plan order, covering every cell exactly once.
    """
    if group_by not in ("paradigm", "cell"):
        raise ValueError("group_by must be 'paradigm' or 'cell'")
    cells: list[Cell] = []
    for name in paradigms:
        if conditions:
            for condition in conditions:
                cells.append(Cell(name, condition, index=len(cells)))
        else:
            cells.append(Cell(name, None, index=len(cells)))

    if group_by == "cell":
        return tuple(Shard(i, (cell,)) for i, cell in enumerate(cells))
    shards: list[Shard] = []
    for name in paradigms:
        row = tuple(c for c in cells if c.paradigm == name)
        shards.append(Shard(len(shards), row))
    return tuple(shards)


def balance_assignments(
    weights: Sequence[tuple[str, float]], n_shards: int
) -> dict[str, int]:
    """Deterministic weight-balanced placement of items onto shards.

    Longest-processing-time greedy: items are considered heaviest first
    (ties broken by item id, then original order) and each goes to the
    currently lightest shard (ties broken by lowest shard index).  The
    result is a pure function of ``(weights, n_shards)`` — placement
    never depends on execution order, which is what lets callers treat
    the shard count as a pure computation partition.

    Args:
        weights: ``(item_id, weight)`` pairs; ids must be unique and
            weights non-negative.
        n_shards: number of shards (>= 1).

    Returns:
        item id → shard index in ``[0, n_shards)``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    ids = [item_id for item_id, _ in weights]
    if len(set(ids)) != len(ids):
        raise ValueError("item ids must be unique")
    for item_id, weight in weights:
        if weight < 0:
            raise ValueError(f"negative weight for {item_id!r}")
    order = sorted(
        range(len(weights)), key=lambda i: (-weights[i][1], weights[i][0], i)
    )
    loads = [0.0] * n_shards
    assignment: dict[str, int] = {}
    for i in order:
        item_id, weight = weights[i]
        shard = min(range(n_shards), key=lambda s: (loads[s], s))
        assignment[item_id] = shard
        loads[shard] += weight
    return assignment


def _fork_context() -> multiprocessing.context.BaseContext | None:
    """The fork start-method context, or None where unavailable."""
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except ValueError:
        pass
    return None


def run_shards(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    parallel: ParallelConfig,
) -> list[Any]:
    """Execute one task per shard and return results in plan order.

    Args:
        tasks: per-shard payloads, in shard-plan order (picklable for
            the process backend).
        worker: module-level callable mapping a payload to a result
            (must be picklable by reference for the process backend).
        parallel: backend selection.

    Returns:
        Worker results, ordered like ``tasks`` regardless of
        completion order.  Worker exceptions propagate unchanged.
    """
    backend = parallel.resolve()
    context = _fork_context() if backend == "process" else None
    if backend == "serial" or context is None:
        # Serial reference path (also the no-fork-platform fallback).
        return [worker(task) for task in tasks]
    workers = min(parallel.n_workers, max(len(tasks), 1))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = [pool.submit(worker, task) for task in tasks]
        return [future.result() for future in futures]
