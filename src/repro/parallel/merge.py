"""Deterministic merging of per-shard observability snapshots.

Every shard of a parallel sweep records into its own
:class:`~repro.observability.Instrumentation`, timed by a
:class:`DeterministicClock` so the spans and duration histograms a
shard produces depend only on its work — never on wall time or worker
scheduling.  This module folds those per-shard snapshots into one
reconciled snapshot:

* counters **sum** across shards;
* gauges take the **max** (high-watermark semantics, matching
  :meth:`~repro.observability.metrics.Gauge.max`);
* histograms merge bucket-wise (identical bounds required — mixing
  layouts is a wiring bug, not a runtime condition);
* traces concatenate in shard-plan order.

Because the serial backend runs the *same* per-shard instrumentation
through the *same* merge, serial and parallel runs serialise to
byte-identical snapshots — the property the parallel-smoke CI job and
the bit-identity tests pin down.  :func:`reconcile_shards` then checks
the shard-count invariants (``parallel_shards_total`` equals the plan
size) the way :func:`~repro.observability.export.validate_snapshot`
checks the schema.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..observability import SNAPSHOT_SCHEMA, validate_snapshot

__all__ = [
    "DeterministicClock",
    "merge_metrics",
    "merge_snapshots",
    "reconcile_shards",
]

#: Label set normalised to a sortable, hashable key.
_SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


class DeterministicClock:
    """Virtual microsecond clock advancing a fixed step per reading.

    Injected into per-shard :class:`~repro.observability.Instrumentation`
    so span timestamps and duration histograms are a pure function of
    the shard's call sequence — two runs of the same shard produce
    byte-identical traces no matter the machine, load or backend.

    Args:
        start: first reading (microseconds).
        step: increment applied after every reading.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        self._now = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        now = self._now
        self._now += self._step
        return now


def _export(value: float) -> float | int:
    """Integral floats export as ints (mirrors the registry snapshot)."""
    return int(value) if float(value).is_integer() else float(value)


def _key(series: dict[str, Any]) -> _SeriesKey:
    return (series["name"], tuple(sorted(series["labels"].items())))


def merge_metrics(sections: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Fold per-shard registry snapshots into one metrics section.

    Args:
        sections: the ``metrics`` dicts of per-shard snapshots
            (``counters`` / ``gauges`` / ``histograms`` lists).

    Returns:
        A merged metrics section, series ordered by (name, labels) —
        the same canonical order a single registry snapshot uses.

    Raises:
        ValueError: when the same histogram series appears with
            different bucket bounds in two shards.
    """
    counters: dict[_SeriesKey, float] = {}
    gauges: dict[_SeriesKey, float] = {}
    histograms: dict[_SeriesKey, dict[str, Any]] = {}

    for section in sections:
        for series in section.get("counters", ()):
            key = _key(series)
            counters[key] = counters.get(key, 0.0) + float(series["value"])
        for series in section.get("gauges", ()):
            key = _key(series)
            value = float(series["value"])
            gauges[key] = max(gauges.get(key, value), value)
        for series in section.get("histograms", ()):
            key = _key(series)
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "buckets": list(series["buckets"]),
                    "counts": list(series["counts"]),
                    "sum": float(series["sum"]),
                    "count": int(series["count"]),
                }
                continue
            if merged["buckets"] != list(series["buckets"]):
                raise ValueError(
                    f"histogram {series['name']!r} has mismatched bucket "
                    f"bounds across shards: {merged['buckets']} vs "
                    f"{list(series['buckets'])}"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], series["counts"])
            ]
            merged["sum"] += float(series["sum"])
            merged["count"] += int(series["count"])

    return {
        "counters": [
            {"name": name, "labels": dict(labels), "value": _export(value)}
            for (name, labels), value in sorted(counters.items())
        ],
        "gauges": [
            {"name": name, "labels": dict(labels), "value": _export(value)}
            for (name, labels), value in sorted(gauges.items())
        ],
        "histograms": [
            {
                "name": name,
                "labels": dict(labels),
                "buckets": [_export(b) for b in data["buckets"]],
                "counts": list(data["counts"]),
                "sum": _export(round(data["sum"], 6)),
                "count": data["count"],
            }
            for (name, labels), data in sorted(histograms.items())
        ],
    }


def merge_snapshots(snapshots: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Fold full per-shard instrumentation snapshots into one.

    Metrics merge per :func:`merge_metrics`; traces concatenate in the
    given (shard-plan) order.  The result carries the same schema tag
    as a single-run snapshot and passes
    :func:`~repro.observability.export.validate_snapshot`.

    Args:
        snapshots: per-shard ``Instrumentation.snapshot()`` dicts, in
            shard-plan order.

    Returns:
        One reconciled snapshot.

    Raises:
        ValueError: on an unknown schema tag or mismatched histogram
            buckets.
    """
    for snapshot in snapshots:
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema "
                f"{snapshot.get('schema')!r} (expected {SNAPSHOT_SCHEMA!r})"
            )
    trace: list[Any] = []
    for snapshot in snapshots:
        trace.extend(snapshot.get("trace", ()))
    return {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": merge_metrics([s["metrics"] for s in snapshots]),
        "trace": trace,
    }


def _counter_total(snapshot: dict[str, Any], name: str) -> float:
    return sum(
        float(series["value"])
        for series in snapshot.get("metrics", {}).get("counters", ())
        if series["name"] == name
    )


def reconcile_shards(
    snapshot: dict[str, Any], num_shards: int, num_cells: int
) -> list[str]:
    """Structural + shard-count problems of a merged snapshot.

    Every shard increments ``parallel_shards_total`` once and
    ``parallel_cells_total`` per cell, so the merged totals must equal
    the plan — a lost or double-merged shard shows up here even when
    the snapshot is otherwise well-formed.

    Args:
        snapshot: a merged snapshot (:func:`merge_snapshots` output).
        num_shards: shard-plan size.
        num_cells: total grid cells across the plan.

    Returns:
        Human-readable problem descriptions; empty when reconciled.
    """
    problems = validate_snapshot(snapshot)
    shards = _counter_total(snapshot, "parallel_shards_total")
    if int(shards) != num_shards:
        problems.append(
            f"parallel_shards_total {int(shards)} != plan size {num_shards}"
        )
    cells = _counter_total(snapshot, "parallel_cells_total")
    if int(cells) != num_cells:
        problems.append(
            f"parallel_cells_total {int(cells)} != grid size {num_cells}"
        )
    return problems
