"""Robustness sweep: accuracy-degradation curves across fault severities.

The sweep is the measurement behind the noise/fault-robustness cell of
Table I: train each paradigm pipeline once on clean data, then evaluate
it repeatedly under an escalating fault profile (dead/hot pixels, event
drops, timestamp jitter, polarity flips, AER bit flips — the composable
models of :mod:`repro.reliability.faults`) injected through the hardened
runner.  Every recording that the faults render structurally invalid is
quarantined, every recoverable failure is retried, and the sweep always
completes with a full :class:`~repro.reliability.runner.RunReport` per
point — so a single corrupted recording can no longer abort hours of
training.

Results reduce to a *retained-accuracy* score per paradigm
(:func:`robustness_scores`), which
:func:`repro.core.comparison.attach_robustness` folds back into the
regenerated comparison table.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..core.comparison import PARADIGMS, ComparisonResult, attach_robustness
from ..core.pipeline import CNNPipeline, GNNPipeline, ParadigmPipeline, SNNPipeline
from ..core.ratings import Rating, rate_robustness
from ..datasets.base import EventDataset
from .faults import (
    AERBitFlips,
    BurstyDrop,
    DeadPixels,
    FaultChain,
    FaultModel,
    HotPixels,
    PolarityFlip,
    TimestampJitter,
    UniformDrop,
)
from .runner import HardenedRunner, RunReport

__all__ = [
    "default_fault_profile",
    "SweepPoint",
    "RobustnessSweepResult",
    "run_paradigm_curve",
    "run_robustness_sweep",
    "robustness_scores",
]


def default_fault_profile(severity: float) -> FaultModel | None:
    """The standard severity → fault-chain mapping of the sweep.

    Severity 0 is the clean condition (no fault object at all); rising
    severity scales every process of a realistic mixed profile: array
    defects (dead + hot pixels), link losses (uniform + bursty drops),
    timing degradation (jitter) and signal corruption (polarity flips,
    AER bit flips).  At severity 1 roughly 90% of events are lost and a
    third of the array is defective.

    Args:
        severity: fault intensity in [0, 1].

    Returns:
        A composed :class:`~repro.reliability.faults.FaultChain`, or
        None at severity 0.
    """
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1], got {severity}")
    if severity == 0.0:
        return None
    return FaultChain(
        [
            DeadPixels(fraction=0.45 * severity),
            HotPixels(fraction=0.02 * severity, rate_hz=400.0),
            UniformDrop(probability=0.65 * severity),
            BurstyDrop(probability=0.45 * severity, burst_us=5000),
            TimestampJitter(sigma_us=3000.0 * severity),
            PolarityFlip(probability=0.30 * severity),
            AERBitFlips(bit_flip_probability=0.003 * severity),
        ]
    )


@dataclass
class SweepPoint:
    """One (paradigm, severity) evaluation.

    Attributes:
        severity: fault intensity of this point.
        accuracy: accuracy over the recordings that survived to
            prediction (nan when none did).
        report: the full per-recording account.
    """

    severity: float
    accuracy: float
    report: RunReport

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "severity": self.severity,
            "accuracy": self.accuracy,
            "report": self.report.to_dict(),
        }


@dataclass
class RobustnessSweepResult:
    """Everything produced by one robustness sweep.

    Attributes:
        severities: the swept fault intensities, ascending.
        curves: paradigm name → one :class:`SweepPoint` per severity.
        seed: master seed of the sweep.
    """

    severities: tuple[float, ...]
    curves: dict[str, list[SweepPoint]] = field(default_factory=dict)
    seed: int = 0

    def accuracies(self, paradigm: str) -> list[float]:
        """The degradation curve of one paradigm."""
        return [p.accuracy for p in self.curves[paradigm]]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "severities": list(self.severities),
            "seed": self.seed,
            "curves": {
                name: [p.to_dict() for p in points]
                for name, points in self.curves.items()
            },
        }


def robustness_scores(result: RobustnessSweepResult) -> dict[str, float]:
    """Reduce degradation curves to one retained-accuracy score each.

    The score is the mean, over the non-zero severities, of the accuracy
    retained relative to the clean (severity-0) point, clipped to
    [0, 1]; a paradigm whose accuracy is untouched by faults scores 1,
    one that collapses to zero scores 0.  Paradigms whose clean accuracy
    is nan (nothing evaluated) score nan and rate ``?``.

    Args:
        result: a completed sweep.

    Returns:
        paradigm name → retained-accuracy score.
    """
    scores: dict[str, float] = {}
    for name, points in result.curves.items():
        if not points:
            scores[name] = float("nan")
            continue
        clean = points[0].accuracy
        stressed = [p.accuracy for p in points[1:]] or [clean]
        if not np.isfinite(clean) or clean <= 0:
            scores[name] = float("nan")
            continue
        retained = [
            min(1.0, max(0.0, acc / clean)) if np.isfinite(acc) else 0.0
            for acc in stressed
        ]
        scores[name] = float(np.mean(retained))
    return scores


def rate_sweep(result: RobustnessSweepResult) -> dict[str, Rating]:
    """Rate a sweep's retained-accuracy scores on the ``++ / + / -`` scale."""
    return rate_robustness(robustness_scores(result))


def attach_to_comparison(
    comparison: ComparisonResult, result: RobustnessSweepResult
) -> ComparisonResult:
    """Fold a measured sweep into a Table-I comparison (extra row)."""
    return attach_robustness(comparison, robustness_scores(result))


def _default_pipelines(seed: int) -> dict[str, ParadigmPipeline]:
    return {
        "SNN": SNNPipeline(seed=seed),
        "CNN": CNNPipeline(seed=seed),
        "GNN": GNNPipeline(seed=seed),
    }


def _point_key(paradigm: str, severity: float) -> str:
    return f"{paradigm}@{severity:.6f}"


def run_paradigm_curve(
    name: str,
    pipeline: ParadigmPipeline,
    train: EventDataset,
    test: EventDataset,
    severities: Sequence[float],
    seed: int = 0,
    fault_profile=default_fault_profile,
    checkpoint_dir: str | Path | None = None,
    max_retries: int = 1,
    stage_timeout_s: float | None = None,
    instrumentation=None,
    done: dict[str, dict[str, Any]] | None = None,
    on_point: Callable[[str, SweepPoint], None] | None = None,
    clock: Callable[[], float] | None = None,
) -> list[SweepPoint]:
    """Measure one paradigm's accuracy-degradation curve.

    The unit of work of one robustness shard: train the pipeline once
    through the hardened runner, then evaluate every severity with its
    deterministic per-point seed (derived from ``seed``, the paradigm
    index and the severity level — independent of execution order, so
    parallel shards reproduce the serial sweep bit for bit).

    Args:
        name: paradigm name ('SNN' / 'CNN' / 'GNN').
        pipeline: the (unfitted) pipeline of this paradigm.
        train, test: the shared dataset split.
        severities: ascending fault intensities.
        seed: master seed for fault injection.
        fault_profile: severity → fault-model mapping.
        checkpoint_dir: when given, the fitted model checkpoints to
            ``{name}_model.npz`` inside it.
        max_retries / stage_timeout_s: hardened-runner budgets.
        instrumentation: optional observability sink for the runner.
        done: previously completed points (``{point_key: point_dict}``)
            to resume from instead of recomputing.
        on_point: callback fired as ``on_point(key, point)`` after each
            *freshly computed* point (used by the sweep coordinator to
            persist state incrementally).
        clock: monotonic time source for the runner's ``elapsed_s``
            measurements (default wall clock); the sharded executor
            injects a deterministic virtual clock so reports are
            byte-identical across backends.

    Returns:
        One :class:`SweepPoint` per severity.

    Raises:
        RuntimeError: when the pipeline fails to fit.
    """
    checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
    done = done if done is not None else {}
    runner = HardenedRunner(
        pipeline,
        max_retries=max_retries,
        stage_timeout_s=stage_timeout_s,
        checkpoint_path=(
            checkpoint_dir / f"{name.lower()}_model.npz" if checkpoint_dir else None
        ),
        instrumentation=instrumentation,
        clock=clock,
    )
    fit_result = runner.fit(train)
    if not fit_result.ok:
        raise RuntimeError(
            f"{name} pipeline failed to fit after {fit_result.attempts} "
            f"attempt(s): {fit_result.error_type}: {fit_result.error_message}"
        )
    points: list[SweepPoint] = []
    for level, severity in enumerate(severities):
        key = _point_key(name, severity)
        cached = done.get(key)
        if cached is not None:
            points.append(_point_from_dict(cached))
            continue
        fault = fault_profile(severity)
        # One deterministic seed per (paradigm, severity) point.
        point_seed = int(
            np.random.SeedSequence(
                [seed, PARADIGMS.index(name), level]
            ).generate_state(1)[0]
        )
        report = runner.evaluate(test, fault=fault, seed=point_seed)
        point = SweepPoint(
            severity=severity, accuracy=report.accuracy(), report=report
        )
        points.append(point)
        if on_point is not None:
            on_point(key, point)
    return points


def run_robustness_sweep(
    train: EventDataset,
    test: EventDataset,
    severities: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    pipelines: dict[str, ParadigmPipeline] | None = None,
    seed: int = 0,
    fault_profile=default_fault_profile,
    checkpoint_dir: str | Path | None = None,
    max_retries: int = 1,
    stage_timeout_s: float | None = None,
    instrumentation=None,
) -> RobustnessSweepResult:
    """Measure accuracy-degradation curves for all three paradigms.

    .. deprecated::
        Thin shim over the unified sweep entry point — prefer
        ``repro.parallel.run_sweep(SweepSpec(kind="robustness", ...))``,
        which adds sharded parallel execution and representation
        caching behind the same semantics.  This signature keeps
        working and produces identical results.

    Each pipeline is trained once (on the recordings of ``train`` that
    pass validation) and evaluated at every severity with independently
    seeded fault injection.  The whole sweep is deterministic in
    ``seed`` and never raises on per-recording failures — they are
    quarantined or recorded in the per-point
    :class:`~repro.reliability.runner.RunReport`.

    Args:
        train, test: a shared dataset split (may deliberately contain
            corrupted recordings; they are quarantined, not fatal).
        severities: ascending fault intensities; include 0.0 first so
            the retained-accuracy normalisation has a clean anchor.
        pipelines: override the default pipeline instances (keys must be
            'SNN', 'CNN', 'GNN').
        seed: master seed for fault injection.
        fault_profile: severity → :class:`FaultModel` mapping (None for
            the clean condition); defaults to
            :func:`default_fault_profile`.
        checkpoint_dir: when given, fitted models checkpoint here and
            completed sweep points persist to ``sweep_state.json`` —
            re-running with the same directory resumes instead of
            recomputing.
        max_retries: per-stage retry budget of the hardened runner.
        stage_timeout_s: per-stage wall-clock budget (None = unlimited).
        instrumentation: optional
            :class:`~repro.observability.Instrumentation` shared by the
            hardened runners of all three paradigms (guard spans,
            ``guard_*`` and ``runner_records_total`` counters).

    Returns:
        The sweep result with one curve per paradigm.
    """
    warnings.warn(
        "run_robustness_sweep is deprecated; use "
        "repro.parallel.run_sweep(SweepSpec(kind='robustness', ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..parallel.api import SweepSpec, run_sweep

    spec = SweepSpec(
        kind="robustness",
        train=train,
        test=test,
        conditions=tuple(severities),
        pipelines=pipelines,
        seed=seed,
        options={
            "fault_profile": fault_profile,
            "checkpoint_dir": checkpoint_dir,
            "max_retries": max_retries,
            "stage_timeout_s": stage_timeout_s,
        },
        instrumentation=instrumentation,
    )
    return run_sweep(spec).result


def _point_from_dict(data: dict[str, Any]) -> SweepPoint:
    """Rehydrate a persisted sweep point (accuracy + outcome summary).

    Per-recording reports are restored structurally; this is enough for
    scoring and resume — the full original objects live in the JSON.
    """
    from .runner import RecordingOutcome, RecordingReport

    report_data = data["report"]
    report = RunReport(
        pipeline=report_data["pipeline"],
        fault=report_data["fault"],
        seed=report_data["seed"],
        resumed_from_checkpoint=report_data.get("resumed_from_checkpoint", False),
        records=[
            RecordingReport(
                index=r["index"],
                label=r["label"],
                outcome=RecordingOutcome(r["outcome"]),
                predicted=r["predicted"],
                problems=list(r["problems"]),
                error_type=r["error_type"],
                error_message=r["error_message"],
                attempts=r["attempts"],
                elapsed_s=r["elapsed_s"],
            )
            for r in report_data["records"]
        ],
    )
    return SweepPoint(
        severity=float(data["severity"]),
        accuracy=float(data["accuracy"]),
        report=report,
    )
