"""Composable, seeded fault models for event streams.

Event-camera systems fail in characteristic ways at every stage of the
sensor→processor path: pixels die or latch (array defects), the arbiter
and link drop events uniformly or in bursts (congestion, brown-outs),
timestamps pick up jitter or arrive out of order (clock domain crossings),
polarities flip (comparator noise), and AER bus words take bit flips
(marginal links).  Each :class:`FaultModel` here reproduces one of those
processes as a pure, seeded transformation of an
:class:`~repro.events.stream.EventStream`, so robustness experiments
(:mod:`repro.reliability.sweep`) can dial severity and stay exactly
reproducible.

Fault models *may* emit invalid streams — that is the point of
:class:`OutOfOrderCorruption` — so downstream consumers must validate
(see :meth:`repro.events.stream.EventStream.validate` and the quarantine
logic in :mod:`repro.reliability.runner`) rather than assume cleanliness.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..camera.noise import NoiseParams, hot_pixel_events
from ..events.aer import AERCodec, AERDecodeStats
from ..events.ops import drop_events, jitter_time
from ..events.stream import EventStream

__all__ = [
    "FaultModel",
    "FaultChain",
    "DeadPixels",
    "StuckPixels",
    "HotPixels",
    "UniformDrop",
    "BurstyDrop",
    "TimestampJitter",
    "OutOfOrderCorruption",
    "PolarityFlip",
    "AERBitFlips",
    "apply_fault",
    "SessionFault",
    "SessionStateCorruption",
    "NaNFeatureInjection",
    "ClockSkew",
    "apply_session_fault",
]


class FaultModel(abc.ABC):
    """One seeded corruption process over an event stream.

    Subclasses implement :meth:`apply`; all randomness must come from
    the passed generator so a fault configuration plus a seed fully
    determines the corrupted stream.
    """

    @abc.abstractmethod
    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        """Return the corrupted stream (never mutates the input)."""

    def __call__(self, stream: EventStream, seed: int = 0) -> EventStream:
        """Apply with a fresh generator derived from ``seed``."""
        return self.apply(stream, np.random.default_rng(seed))

    def then(self, other: "FaultModel") -> "FaultChain":
        """Compose: this fault, then ``other``."""
        mine = self.models if isinstance(self, FaultChain) else [self]
        theirs = other.models if isinstance(other, FaultChain) else [other]
        return FaultChain([*mine, *theirs])


@dataclass
class FaultChain(FaultModel):
    """Apply several fault models in sequence (sensor → link order).

    Attributes:
        models: the faults, applied first to last with the same
            generator, so the chain is as deterministic as its parts.
    """

    models: list[FaultModel] = field(default_factory=list)

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        for model in self.models:
            stream = model.apply(stream, rng)
        return stream


def _choose_pixels(
    resolution, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Flat indices of a random pixel subset of the given fraction."""
    num = int(round(fraction * resolution.num_pixels))
    if num == 0:
        return np.empty(0, dtype=np.int64)
    return np.asarray(
        rng.choice(resolution.num_pixels, size=num, replace=False), dtype=np.int64
    )


@dataclass
class DeadPixels(FaultModel):
    """A random fraction of pixels never fires (open-circuit defects).

    Attributes:
        fraction: fraction of the array that is dead, in [0, 1].
    """

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        dead = _choose_pixels(stream.resolution, self.fraction, rng)
        if dead.size == 0 or len(stream) == 0:
            return stream
        mask = np.zeros(stream.resolution.num_pixels, dtype=bool)
        mask[dead] = True
        return stream[~mask[stream.pixel_index()]]


@dataclass
class StuckPixels(FaultModel):
    """A random fraction of pixels reports a latched polarity.

    Models a stuck comparator output: the pixel still responds to
    contrast, but every event it emits carries the same polarity.

    Attributes:
        fraction: fraction of the array that is stuck, in [0, 1].
        polarity: the latched value, +1 or -1.
    """

    fraction: float
    polarity: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.polarity not in (1, -1):
            raise ValueError("polarity must be +1 or -1")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        stuck = _choose_pixels(stream.resolution, self.fraction, rng)
        if stuck.size == 0 or len(stream) == 0:
            return stream
        mask = np.zeros(stream.resolution.num_pixels, dtype=bool)
        mask[stuck] = True
        hit = mask[stream.pixel_index()]
        raw = stream.raw.copy()
        raw["p"][hit] = self.polarity
        return EventStream(raw, stream.resolution, check=False)


@dataclass
class HotPixels(FaultModel):
    """A random fraction of pixels fires quasi-periodically at high rate.

    Reuses the sensor noise model
    (:func:`repro.camera.noise.hot_pixel_events`) so the injected
    population statistics match the camera simulator's.

    Attributes:
        fraction: fraction of hot pixels, in [0, 1].
        rate_hz: firing rate of each hot pixel.
    """

    fraction: float
    rate_hz: float = 500.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.rate_hz < 0:
            raise ValueError("rate_hz must be non-negative")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        duration = max(stream.duration, 1)
        params = NoiseParams(
            ba_rate_hz=0.0,
            hot_pixel_fraction=self.fraction,
            hot_pixel_rate_hz=self.rate_hz,
        )
        t0 = int(stream.t[0]) if len(stream) else 0
        hot = hot_pixel_events(stream.resolution, duration, params, rng, t_start=t0)
        if len(hot) == 0:
            return stream
        merged = np.concatenate([stream.raw, hot.raw])
        merged = merged[np.argsort(merged["t"], kind="stable")]
        return EventStream(merged, stream.resolution, check=False)


@dataclass
class UniformDrop(FaultModel):
    """Drop each event independently with probability ``probability``.

    Attributes:
        probability: per-event drop probability, in [0, 1].
    """

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        return drop_events(stream, self.probability, rng)


@dataclass
class BurstyDrop(FaultModel):
    """Drop whole time windows of events (link brown-outs, FIFO resets).

    Time is partitioned into ``burst_us`` windows and each window is
    dropped in full with probability ``probability``, so the expected
    drop fraction matches :class:`UniformDrop` at equal probability but
    the losses are temporally correlated — the regime per-event
    asynchronous processors are most sensitive to.

    Attributes:
        probability: per-window drop probability, in [0, 1].
        burst_us: window length in microseconds.
    """

    probability: float
    burst_us: int = 5000

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.burst_us <= 0:
            raise ValueError("burst_us must be positive")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        if len(stream) == 0 or self.probability == 0.0:
            return stream
        bins = (stream.t - int(stream.t[0])) // self.burst_us
        num_bins = int(bins[-1]) + 1
        dropped_bin = rng.random(num_bins) < self.probability
        return stream[~dropped_bin[bins]]


@dataclass
class TimestampJitter(FaultModel):
    """Gaussian timestamp noise with re-sorting (valid but blurred time).

    Attributes:
        sigma_us: jitter standard deviation in microseconds.
    """

    sigma_us: float

    def __post_init__(self) -> None:
        if self.sigma_us < 0:
            raise ValueError("sigma_us must be non-negative")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        return jitter_time(stream, self.sigma_us, rng)


@dataclass
class OutOfOrderCorruption(FaultModel):
    """Displace a fraction of timestamps WITHOUT re-sorting.

    This produces a stream that violates the monotonic-time invariant —
    exactly what a host sees when packets reorder across a link.  The
    result is intentionally invalid; it exists to exercise per-recording
    validation and quarantine, not to be consumed by a pipeline.

    Attributes:
        fraction: fraction of events whose timestamp is displaced.
        shift_us: magnitude of the (backward) displacement.
    """

    fraction: float = 0.05
    shift_us: int = 10_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.shift_us <= 0:
            raise ValueError("shift_us must be positive")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        n = len(stream)
        num = int(round(self.fraction * n))
        if num == 0:
            return stream
        victims = rng.choice(n, size=num, replace=False)
        raw = stream.raw.copy()
        raw["t"][victims] -= self.shift_us
        return EventStream(raw, stream.resolution, check=False)


@dataclass
class PolarityFlip(FaultModel):
    """Flip the polarity of each event independently (comparator noise).

    Attributes:
        probability: per-event flip probability, in [0, 1].
    """

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        if len(stream) == 0 or self.probability == 0.0:
            return stream
        flip = rng.random(len(stream)) < self.probability
        raw = stream.raw.copy()
        raw["p"][flip] = -raw["p"][flip]
        return EventStream(raw, stream.resolution, check=False)


@dataclass
class AERBitFlips(FaultModel):
    """Random bit flips on the AER bus words (marginal link model).

    The stream is pushed through :meth:`repro.events.aer.AERCodec.encode`,
    each payload bit of each word is flipped independently with
    ``bit_flip_probability``, and the result is decoded with
    :meth:`~repro.events.aer.AERCodec.decode_with_stats` — so corrupted
    words that decode to impossible coordinates are *quarantined by the
    decoder* (counted in :attr:`last_decode_stats`) instead of surfacing
    as an invalid stream.  Surviving events may still carry wrong
    addresses, polarities or times: that is the realistic failure mode.

    Attributes:
        bit_flip_probability: per-bit flip probability on the link.
        timestamp_bits: codec delta-field width.
        last_decode_stats: decoder statistics of the most recent
            :meth:`apply` (None before first use).
    """

    bit_flip_probability: float
    timestamp_bits: int = 15
    last_decode_stats: AERDecodeStats | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_flip_probability <= 1.0:
            raise ValueError("bit_flip_probability must be in [0, 1]")

    def apply(self, stream: EventStream, rng: np.random.Generator) -> EventStream:
        codec = AERCodec(stream.resolution, timestamp_bits=self.timestamp_bits)
        if len(stream) == 0:
            self.last_decode_stats = AERDecodeStats(0, 0, 0, 0, 0)
            return stream
        t_origin = int(stream.t[0])
        words = codec.encode(stream)
        if self.bit_flip_probability > 0.0:
            flips = rng.random((words.size, codec.word_bits)) < self.bit_flip_probability
            flip_mask = np.zeros(words.size, dtype=np.uint64)
            for bit in range(codec.word_bits):
                flip_mask |= flips[:, bit].astype(np.uint64) << np.uint64(bit)
            words = words ^ flip_mask
        decoded, stats = codec.decode_with_stats(words, t_origin=t_origin)
        self.last_decode_stats = stats
        return decoded


def apply_fault(
    fault: FaultModel | None, stream: EventStream, seed: int
) -> EventStream:
    """Apply an optional fault with a deterministic per-call generator.

    Args:
        fault: the fault model, or None for the identity.
        stream: input events.
        seed: generator seed (combine the sweep seed and recording index
            upstream so every recording gets an independent substream).
    """
    if fault is None:
        return stream
    return fault.apply(stream, np.random.default_rng(seed))


# ----------------------------------------------------------------------
# Session faults: corruption of live serving state, not of the stream
# ----------------------------------------------------------------------

def _engine_state(snapshot: dict) -> dict:
    """The engine checkpoint inside a session or engine snapshot.

    Session checkpoints (``incremental-session/v1``) nest the engine
    state under ``"engine"``; engine checkpoints (``async-gnn/v1``) are
    the state.  Session faults only touch documented checkpoint keys,
    never live internals, so they stay valid across either schema.
    """
    inner = snapshot.get("engine")
    return inner if isinstance(inner, dict) else snapshot


def _live_rows(engine: dict) -> np.ndarray:
    """Storage rows of the currently live nodes in an engine checkpoint."""
    ids = np.arange(int(engine["live_start"]), int(engine["count"]))
    if engine.get("bounded"):
        ids = ids % int(engine["capacity"])
    return ids


class SessionFault(abc.ABC):
    """One seeded corruption of a serving session's checkpoint state.

    Where :class:`FaultModel` corrupts the *input* (the event stream),
    a session fault corrupts the *accumulated state* of a live
    per-event serving session — the failure mode of long-running
    deployments (bit rot, partial writes, clock domain glitches).  It
    operates snapshot → corrupt → restore over the documented
    checkpoint schema, so the injection itself cannot depend on engine
    internals and the corrupted state is always structurally valid:
    only the divergence audit (or an out-of-order rejection) can tell
    it apart from health.
    """

    @abc.abstractmethod
    def corrupt(self, engine: dict, rng: np.random.Generator) -> None:
        """Mutate one engine checkpoint dict in place."""

    def apply(self, snapshot: dict, rng: np.random.Generator) -> dict:
        """Return a corrupted deep copy of ``snapshot`` (input unchanged)."""
        state = copy.deepcopy(snapshot)
        self.corrupt(_engine_state(state), rng)
        return state


@dataclass
class SessionStateCorruption(SessionFault):
    """Additive noise on stored node features and the running readout.

    Attributes:
        fraction: fraction of live nodes whose final-layer features are
            perturbed (at least one when any are live).
        magnitude: standard deviation of the additive noise.

    The running readout is corrupted alongside the per-node features:
    feature-only corruption stays invisible to the max-pooled scores
    until an eviction forces a readout recompute, which would make
    severity depend on eviction timing instead of ``magnitude``.
    """

    fraction: float = 0.25
    magnitude: float = 10.0

    def corrupt(self, engine: dict, rng: np.random.Generator) -> None:
        rows = _live_rows(engine)
        if rows.size:
            k = max(1, int(round(self.fraction * rows.size)))
            chosen = rng.choice(rows, size=min(k, rows.size), replace=False)
            x2 = engine["x2"]
            x2[chosen] += self.magnitude * rng.standard_normal(
                (chosen.size, x2.shape[1])
            )
        engine["running_max"] = engine["running_max"] + (
            self.magnitude * rng.standard_normal(engine["running_max"].shape)
        )


@dataclass
class NaNFeatureInjection(SessionFault):
    """NaNs written into stored features and the running readout.

    Attributes:
        fraction: fraction of live nodes receiving a NaN feature.

    The per-event score path masks non-finite readout entries to zero
    (a NaN must not take serving down), so this fault produces finite
    but *silently wrong* scores — exactly the regime the divergence
    audit exists to catch.
    """

    fraction: float = 0.25

    def corrupt(self, engine: dict, rng: np.random.Generator) -> None:
        rows = _live_rows(engine)
        if rows.size:
            k = max(1, int(round(self.fraction * rows.size)))
            chosen = rng.choice(rows, size=min(k, rows.size), replace=False)
            engine["x2"][chosen] = np.nan
        running_max = engine["running_max"]
        if running_max.size:
            running_max[int(rng.integers(running_max.size))] = np.nan


@dataclass
class ClockSkew(SessionFault):
    """Forward skew of the session's monotonic event clock.

    Attributes:
        skew_us: microseconds added to the last-seen timestamp.

    After restore, genuine events older than the skewed clock are
    rejected as out-of-order (the engine raises ``ValueError``), so
    this fault exercises the *crash* recovery path where the other
    session faults exercise the *silent-drift* path.
    """

    skew_us: int = 1_000_000

    def corrupt(self, engine: dict, rng: np.random.Generator) -> None:
        last = engine.get("last_t_us")
        engine["last_t_us"] = int(self.skew_us if last is None else last + self.skew_us)


def apply_session_fault(fault: SessionFault, session: Any, seed: int) -> None:
    """Corrupt a live session through its own checkpoint round trip.

    ``session`` is anything exposing ``snapshot()``/``restore()`` — a
    :class:`~repro.core.incremental.GNNIncrementalSession` or a bare
    :class:`~repro.gnn.async_network.AsyncEventGNN`.  The corruption is
    seeded and structural validation happens inside ``restore``, so a
    fault that produced an *invalid* checkpoint would surface here as a
    ``ValueError`` rather than silently skipped injection.
    """
    snapshot = session.snapshot()
    session.restore(fault.apply(snapshot, np.random.default_rng(seed)))
