"""Incremental-serving robustness: retained accuracy under session faults.

The classic robustness sweep (:mod:`repro.reliability.sweep`) corrupts
the *input* — the event stream — and asks how much accuracy a paradigm
retains.  This sweep corrupts the *serving state*: the live per-event
session of the GNN fast path is faulted mid-window (state corruption,
NaN feature injection, clock skew — the :class:`SessionFault` models of
:mod:`repro.reliability.faults`) and the session's own defences have to
contain the damage: the divergence audit detects silent drift, the
checkpoint/restore path rolls the session back to its last good
snapshot, and a windowed recompute serves as the final fallback.

Only paradigms with a per-event serving path can be measured, so the
resulting Table-I row (attached via
:func:`repro.core.comparison.attach_session_robustness`) is GNN-only by
construction; SNN and CNN stay ``nan`` and render as ``?``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..core.comparison import PARADIGMS, ComparisonResult, attach_session_robustness
from ..core.incremental import AuditPolicy, SessionDivergenceError
from ..core.pipeline import GNNPipeline
from ..datasets.base import EventDataset
from ..events.stream import EventStream
from .faults import (
    ClockSkew,
    NaNFeatureInjection,
    SessionFault,
    SessionStateCorruption,
    apply_session_fault,
)
from .runner import HardenedRunner

__all__ = [
    "default_session_fault_profile",
    "SessionFaultPoint",
    "IncrementalRobustnessResult",
    "run_incremental_robustness",
    "session_robustness_scores",
    "attach_to_comparison",
]


def default_session_fault_profile(severity: float) -> tuple[SessionFault, ...]:
    """The standard severity → session-fault mapping of the sweep.

    Severity 0 is the clean condition (no faults; the sweep's
    self-check — retained accuracy is 1 by construction).  Rising
    severity widens the corrupted fraction, grows the noise magnitude
    and lengthens the clock skew.  The three fault types are returned
    together; the sweep rotates them across recordings so every point
    exercises the silent-drift path (corruption, NaN) *and* the crash
    path (skew).
    """
    if severity <= 0:
        return ()
    frac = min(1.0, 0.2 + 0.6 * severity)
    return (
        SessionStateCorruption(fraction=frac, magnitude=10.0 * severity),
        NaNFeatureInjection(fraction=frac),
        ClockSkew(skew_us=int(1_000_000 * severity)),
    )


@dataclass
class SessionFaultPoint:
    """One severity evaluation of the incremental-serving path.

    Attributes:
        severity: session-fault intensity of this point.
        accuracy: fraction of served windows predicted correctly.
        windows: windows served (the accuracy denominator).
        faults_injected: mid-window fault injections performed.
        audits_tripped: divergence audits that detected drift.
        crashes: window attempts aborted by an exception (e.g. the
            out-of-order rejection a clock skew provokes).
        restores: rollbacks to a last-good session checkpoint.
        fallbacks: windows served by windowed ``predict`` after the
            per-event retry also failed.
    """

    severity: float
    accuracy: float
    windows: int = 0
    faults_injected: int = 0
    audits_tripped: int = 0
    crashes: int = 0
    restores: int = 0
    fallbacks: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "severity": self.severity,
            "accuracy": self.accuracy,
            "windows": self.windows,
            "faults_injected": self.faults_injected,
            "audits_tripped": self.audits_tripped,
            "crashes": self.crashes,
            "restores": self.restores,
            "fallbacks": self.fallbacks,
        }


@dataclass
class IncrementalRobustnessResult:
    """Everything produced by one incremental-robustness sweep.

    Attributes:
        severities: the swept fault intensities, ascending.
        points: one :class:`SessionFaultPoint` per severity (GNN only —
            no other paradigm has a per-event serving path).
        seed: master seed of the sweep.
        window_us: serving-window length used by the per-window loop.
    """

    severities: tuple[float, ...]
    points: list[SessionFaultPoint] = field(default_factory=list)
    seed: int = 0
    window_us: int = 10_000

    def accuracies(self) -> list[float]:
        """The degradation curve."""
        return [p.accuracy for p in self.points]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "severities": list(self.severities),
            "seed": self.seed,
            "window_us": self.window_us,
            "points": [p.to_dict() for p in self.points],
        }


def session_robustness_scores(result: IncrementalRobustnessResult) -> dict[str, float]:
    """Reduce the degradation curve to one retained-accuracy score.

    Mirrors :func:`repro.reliability.sweep.robustness_scores`: the mean,
    over non-zero severities, of accuracy retained relative to the
    clean point, clipped to [0, 1].  Paradigms without a per-event
    serving path score nan (they rate ``?`` in the table).
    """
    scores = {name: float("nan") for name in PARADIGMS}
    points = result.points
    if not points:
        return scores
    clean = points[0].accuracy
    if not np.isfinite(clean) or clean <= 0:
        return scores
    stressed = [p.accuracy for p in points[1:]] or [clean]
    retained = [
        min(1.0, max(0.0, acc / clean)) if np.isfinite(acc) else 0.0
        for acc in stressed
    ]
    scores["GNN"] = float(np.mean(retained))
    return scores


def attach_to_comparison(
    comparison: ComparisonResult, result: IncrementalRobustnessResult
) -> ComparisonResult:
    """Fold a measured sweep into a Table-I comparison (extra row)."""
    return attach_session_robustness(comparison, session_robustness_scores(result))


def _windows_of(stream: EventStream, window_us: int) -> list[EventStream]:
    """Split one recording into fixed serving windows (at least one)."""
    if len(stream) == 0:
        return [stream]
    t0 = int(stream.t[0])
    span = int(stream.t[-1]) - t0 + 1
    count = max(1, -(-span // window_us))
    return [
        stream.time_window(t0 + k * window_us, t0 + (k + 1) * window_us)
        for k in range(count)
    ]


def _serve_recording(
    pipeline: GNNPipeline,
    session: Any,
    windows: list[EventStream],
    inject: SessionFault | None,
    fault_seed: int,
    point: SessionFaultPoint,
) -> list[int]:
    """Serve one recording window by window with mid-window injection.

    The self-healing loop under measurement: every window starts from a
    ``reset`` (which runs the previous window's divergence audit — a
    trip triggers restore-from-last-good), takes a start-of-window
    checkpoint, and replays without injection after a crash.  A window
    whose retry also fails is served by windowed ``predict``.
    """
    predictions: list[int] = []
    last_good: dict | None = None
    for w, win in enumerate(windows):
        fault_here = inject if w == len(windows) // 2 else None
        mid = len(win) // 2
        predicted: int | None = None
        for attempt in range(2):
            good: dict | None = None
            try:
                try:
                    session.reset()
                except SessionDivergenceError:
                    point.audits_tripped += 1
                    if last_good is not None:
                        session.restore(last_good)
                        point.restores += 1
                    session.reset()  # the tripped window already rotated out
                good = session.snapshot()
                for i, (t, x, y, p) in enumerate(zip(win.t, win.x, win.y, win.p)):
                    if attempt == 0 and fault_here is not None and i == mid:
                        apply_session_fault(fault_here, session, fault_seed)
                        point.faults_injected += 1
                    session.process_event(int(x), int(y), int(t), int(p))
                predicted = int(session.predict())
                last_good = good
                break
            except Exception:
                point.crashes += 1
                if good is not None:
                    session.restore(good)
                    point.restores += 1
        if predicted is None:
            predicted = int(pipeline.predict(win))
            point.fallbacks += 1
        predictions.append(predicted)
    # Close the final window so a fault in it is still audited.
    try:
        session.reset()
    except SessionDivergenceError:
        point.audits_tripped += 1
    return predictions


def run_incremental_robustness(
    train: EventDataset,
    test: EventDataset,
    severities: Sequence[float] = (0.0, 0.5, 1.0),
    pipeline: GNNPipeline | None = None,
    seed: int = 0,
    window_us: int = 10_000,
    audit: AuditPolicy | None = None,
    max_live_nodes: int | None = None,
    fault_profile=default_session_fault_profile,
) -> IncrementalRobustnessResult:
    """Measure retained accuracy of per-event serving under session faults.

    Fits one GNN pipeline (through the hardened runner), then for every
    severity serves each test recording window by window through an
    auditing incremental session while injecting the severity's session
    faults mid-window — rotating corruption / NaN injection / clock
    skew across recordings.  Recovery is the session's own machinery:
    divergence audits, last-good checkpoints and windowed recompute.

    Args:
        train, test: the dataset split.
        severities: ascending session-fault intensities; include 0 for
            the clean baseline the retained score normalises against.
        pipeline: an optional pre-built (possibly fitted) GNN pipeline.
        seed: master seed — fault placement is a pure function of
            (seed, severity level, recording index).
        window_us: serving-window length of the per-window loop.
        audit: divergence-audit policy; defaults to auditing every
            window with a small tolerance, so silent corruption is
            caught at the next window boundary.  Bounded sessions get a
            loose default tolerance instead: eviction makes them drift
            from the full-window shadow *by design*, and a tolerance
            below the drift bound would trip on every healthy window —
            pass an explicit policy with the measured bound (see the
            bounded point in ``BENCH_async.json``) to tighten it.
        max_live_nodes: serve in bounded-state mode with this budget
            (None = exact unbounded mode).
        fault_profile: severity → session-fault tuple mapping.

    Returns:
        The per-severity curve with recovery-path counters.
    """
    pipeline = pipeline or GNNPipeline(seed=seed)
    if getattr(pipeline, "model", None) is None:
        runner = HardenedRunner(pipeline)
        fit_result = runner.fit(train)
        if not fit_result.ok:
            raise RuntimeError(
                f"GNN pipeline failed to fit after {fit_result.attempts} "
                f"attempt(s): {fit_result.error_type}: {fit_result.error_message}"
            )
    if audit is None:
        tolerance = 1e-6 if max_live_nodes is None else 100.0
        audit = AuditPolicy(every=1, tolerance=tolerance, seed=seed)
    result = IncrementalRobustnessResult(
        severities=tuple(float(s) for s in severities),
        seed=seed,
        window_us=int(window_us),
    )
    for level, severity in enumerate(result.severities):
        faults = fault_profile(severity)
        point = SessionFaultPoint(severity=severity, accuracy=float("nan"))
        correct = 0
        for r, sample in enumerate(test):
            inject = faults[r % len(faults)] if faults else None
            fault_seed = int(
                np.random.SeedSequence([seed, level, r]).generate_state(1)[0]
            )
            session = pipeline.open_session(
                audit=audit, max_live_nodes=max_live_nodes
            )
            windows = _windows_of(sample.stream, result.window_us)
            predictions = _serve_recording(
                pipeline, session, windows, inject, fault_seed, point
            )
            point.windows += len(predictions)
            correct += sum(1 for p in predictions if p == sample.label)
        point.accuracy = correct / point.windows if point.windows else float("nan")
        result.points.append(point)
    return result
