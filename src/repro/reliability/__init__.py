"""Fault injection and graceful degradation.

The reliability subsystem turns the paper's qualitative noise/fault
robustness assessment into a measurement, and hardens the experiment
infrastructure so that measurement can run unattended:

* :mod:`~repro.reliability.faults` — composable, seeded corruption
  models spanning the sensor array (dead/stuck/hot pixels), the link
  (uniform and bursty drops, AER bit flips) and the clock (jitter,
  out-of-order delivery);
* :mod:`~repro.reliability.runner` — a hardened wrapper around the
  paradigm pipelines with per-recording validation + quarantine, retry
  with backoff, wall-clock stage timeouts and model checkpointing;
* :mod:`~repro.reliability.sweep` — the robustness sweep producing
  accuracy-degradation curves and the retained-accuracy scores that
  regenerate the Table-I robustness cell;
* :mod:`~repro.reliability.incremental` — the session-fault sweep:
  live per-event serving state is corrupted mid-stream (state
  corruption, NaN injection, clock skew) and the session's own
  defences — divergence audits, last-good checkpoints, windowed
  recompute — must contain the damage (the Table-I session-fault
  resilience cell).
"""

from .backoff import ExponentialBackoff
from .faults import (
    AERBitFlips,
    BurstyDrop,
    ClockSkew,
    DeadPixels,
    FaultChain,
    FaultModel,
    HotPixels,
    NaNFeatureInjection,
    OutOfOrderCorruption,
    PolarityFlip,
    SessionFault,
    SessionStateCorruption,
    StuckPixels,
    TimestampJitter,
    UniformDrop,
    apply_fault,
    apply_session_fault,
)
from .incremental import (
    IncrementalRobustnessResult,
    SessionFaultPoint,
    default_session_fault_profile,
    run_incremental_robustness,
    session_robustness_scores,
)
from .runner import (
    HardenedRunner,
    StageGuard,
    RecordingOutcome,
    RecordingReport,
    RunReport,
    StageResult,
    validate_sample,
)
from .sweep import (
    RobustnessSweepResult,
    SweepPoint,
    attach_to_comparison,
    default_fault_profile,
    rate_sweep,
    robustness_scores,
    run_paradigm_curve,
    run_robustness_sweep,
)

__all__ = [
    "ExponentialBackoff",
    "FaultModel",
    "FaultChain",
    "DeadPixels",
    "StuckPixels",
    "HotPixels",
    "UniformDrop",
    "BurstyDrop",
    "TimestampJitter",
    "OutOfOrderCorruption",
    "PolarityFlip",
    "AERBitFlips",
    "apply_fault",
    "SessionFault",
    "SessionStateCorruption",
    "NaNFeatureInjection",
    "ClockSkew",
    "apply_session_fault",
    "HardenedRunner",
    "RecordingOutcome",
    "RecordingReport",
    "RunReport",
    "StageGuard",
    "StageResult",
    "validate_sample",
    "default_fault_profile",
    "SweepPoint",
    "RobustnessSweepResult",
    "run_paradigm_curve",
    "run_robustness_sweep",
    "robustness_scores",
    "rate_sweep",
    "attach_to_comparison",
    "SessionFaultPoint",
    "IncrementalRobustnessResult",
    "default_session_fault_profile",
    "run_incremental_robustness",
    "session_robustness_scores",
]
