"""Degradation-aware pipeline runner: validate, quarantine, retry, resume.

The paradigm pipelines (:mod:`repro.core.pipeline`) assume clean inputs
and abort on the first malformed recording — acceptable in a unit test,
fatal in a sweep that trains three paradigms across many fault
severities.  :class:`HardenedRunner` wraps ``fit`` / ``predict`` /
``measure`` with the reliability policies a long-running sweep needs:

* **per-recording validation + quarantine** — every recording is checked
  against the :data:`~repro.events.stream.EVENT_DTYPE` invariants before
  it reaches the model; corrupted ones are quarantined with a reason
  instead of crashing the run;
* **retry with backoff** — transient stage failures are retried a
  configurable number of times with exponential backoff;
* **wall-clock stage timeouts** — a hung stage is abandoned (the worker
  thread is left to finish in the background) and recorded as a timeout;
* **skip-and-record semantics** — every recording produces a
  :class:`RecordingReport` inside a structured :class:`RunReport`, so a
  sweep always completes with an account of what happened;
* **checkpointing** — fitted model state is persisted through
  :mod:`repro.nn.serialization`, so an interrupted sweep resumes without
  retraining.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..core.pipeline import NotFittedError, ParadigmPipeline
from ..datasets.base import EventDataset, EventSample
from ..events.stream import EventStream
from ..nn.layers import Module
from ..nn.serialization import load_state, save_state
from ..observability import Instrumentation
from .backoff import ExponentialBackoff
from .faults import FaultModel, apply_fault

__all__ = [
    "RecordingOutcome",
    "RecordingReport",
    "RunReport",
    "StageGuard",
    "StageResult",
    "HardenedRunner",
    "validate_sample",
]


class RecordingOutcome(str, Enum):
    """What happened to one recording inside a hardened run."""

    OK = "ok"
    QUARANTINED = "quarantined"
    FAILED = "failed"
    TIMEOUT = "timeout"


@dataclass
class RecordingReport:
    """Outcome of one recording.

    Attributes:
        index: position of the recording in the dataset.
        label: ground-truth class.
        outcome: what happened.
        predicted: model output (None unless outcome is OK).
        problems: validation problems that caused a quarantine.
        error_type: exception class name for FAILED/TIMEOUT records.
        error_message: exception message for FAILED/TIMEOUT records.
        attempts: prediction attempts made (0 for quarantined records).
        elapsed_s: wall-clock time spent on the recording.
    """

    index: int
    label: int
    outcome: RecordingOutcome
    predicted: int | None = None
    problems: list[str] = field(default_factory=list)
    error_type: str = ""
    error_message: str = ""
    attempts: int = 0
    elapsed_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "index": self.index,
            "label": self.label,
            "outcome": self.outcome.value,
            "predicted": self.predicted,
            "problems": list(self.problems),
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 6),
        }


@dataclass
class RunReport:
    """Structured account of one hardened evaluation pass.

    Attributes:
        pipeline: paradigm name of the wrapped pipeline.
        fault: repr of the injected fault configuration ("" when clean).
        seed: fault-injection seed of this pass.
        records: one report per recording, in dataset order.
        resumed_from_checkpoint: whether fit was restored rather than
            trained in this process.
    """

    pipeline: str
    fault: str = ""
    seed: int = 0
    records: list[RecordingReport] = field(default_factory=list)
    resumed_from_checkpoint: bool = False

    def outcome_counts(self) -> dict[str, int]:
        """Outcome value → number of recordings."""
        counts = {o.value: 0 for o in RecordingOutcome}
        for r in self.records:
            counts[r.outcome.value] += 1
        return counts

    @property
    def num_evaluated(self) -> int:
        """Recordings that produced a prediction."""
        return sum(1 for r in self.records if r.outcome is RecordingOutcome.OK)

    @property
    def quarantined_indices(self) -> list[int]:
        """Dataset indices of quarantined recordings."""
        return [
            r.index for r in self.records if r.outcome is RecordingOutcome.QUARANTINED
        ]

    def accuracy(self) -> float:
        """Accuracy over the successfully evaluated recordings (nan if none)."""
        evaluated = [r for r in self.records if r.outcome is RecordingOutcome.OK]
        if not evaluated:
            return float("nan")
        return float(
            np.mean([1.0 if r.predicted == r.label else 0.0 for r in evaluated])
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "pipeline": self.pipeline,
            "fault": self.fault,
            "seed": self.seed,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            "outcome_counts": self.outcome_counts(),
            "accuracy": self.accuracy(),
            "records": [r.to_dict() for r in self.records],
        }


@dataclass
class StageResult:
    """Outcome of one guarded pipeline stage (fit or measure).

    Attributes:
        name: stage name.
        ok: whether the stage completed.
        value: the stage's return value when ok.
        attempts: attempts made.
        error_type: exception class name when not ok.
        error_message: exception message when not ok.
        elapsed_s: wall-clock time spent.
    """

    name: str
    ok: bool
    value: Any = None
    attempts: int = 0
    error_type: str = ""
    error_message: str = ""
    elapsed_s: float = 0.0


def validate_sample(sample: EventSample, expected_resolution) -> list[str]:
    """Pre-flight checks of one recording against the dataset contract.

    Args:
        sample: the recording.
        expected_resolution: resolution every recording must share.

    Returns:
        Problem descriptions; empty when the recording is usable.
    """
    stream = sample.stream
    problems = stream.validate()
    if stream.resolution != expected_resolution:
        problems.append(
            f"resolution {stream.resolution} != dataset {expected_resolution}"
        )
    return problems


class _StageTimeout(Exception):
    """Internal marker: a stage exceeded its wall-clock budget."""


class StageGuard:
    """Retry + backoff + wall-clock-timeout wrapper for one stage call.

    The guarded-execution core shared by :class:`HardenedRunner` (batch
    sweeps) and :class:`repro.streaming.StreamingExecutor` (live
    windows): run a callable, retrying transient failures with
    exponential backoff, abandoning calls that exceed a wall-clock
    budget, and always returning a structured :class:`StageResult`
    instead of raising — except for :class:`NotFittedError`, which is a
    configuration error no retry can fix and is re-raised so callers
    fail fast.

    Args:
        max_retries: extra attempts after a failed call (0 = fail
            immediately on first error).
        backoff_s: base sleep before retry ``k`` (scaled by ``2**k``
            through a shared :class:`ExponentialBackoff` schedule);
            0 retries immediately.
        backoff: optional explicit :class:`ExponentialBackoff` schedule;
            overrides ``backoff_s`` when given (``backoff_s`` then
            reports the schedule's base delay).
        timeout_s: wall-clock budget per call (None = no timeout).  A
            timed-out call keeps running on its daemon worker thread but
            its result is discarded — skip-and-record, never hang.
        instrumentation: optional observability sink; every guarded
            call is then traced as a ``guard:{stage}`` span, counted
            into ``guard_calls_total`` / ``guard_attempts_total`` /
            ``guard_failures_total`` / ``guard_timeouts_total`` and
            surfaced through the ``on_stage_start/end`` hooks.
        clock: the monotonic time source for ``elapsed_s`` measurements
            (default ``time.monotonic``).  The sharded executor injects
            a deterministic virtual clock here so reports are
            byte-identical across backends; timeout enforcement always
            uses real wall-clock time regardless.
    """

    def __init__(
        self,
        *,
        max_retries: int = 1,
        backoff_s: float = 0.0,
        backoff: ExponentialBackoff | None = None,
        timeout_s: float | None = None,
        instrumentation: Instrumentation | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.max_retries = max_retries
        self.backoff = (
            backoff if backoff is not None else ExponentialBackoff(base_s=backoff_s)
        )
        self.timeout_s = timeout_s
        self.instrumentation = instrumentation
        self.clock = clock if clock is not None else time.monotonic

    @property
    def backoff_s(self) -> float:
        """Base delay of the retry schedule (back-compat accessor)."""
        return self.backoff.base_s

    def _call_with_timeout(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn``, enforcing the wall-clock timeout.

        The timed call runs on a daemon thread; on timeout the thread is
        abandoned (it cannot be killed) and its eventual result
        discarded, so the caller moves on instead of hanging.
        """
        if self.timeout_s is None:
            return fn()
        result: list[Any] = []
        error: list[BaseException] = []

        def target() -> None:
            try:
                result.append(fn())
            except BaseException as exc:  # propagated to the caller below
                error.append(exc)

        worker = threading.Thread(target=target, daemon=True, name="repro-stage")
        worker.start()
        worker.join(self.timeout_s)
        if worker.is_alive():
            raise _StageTimeout(
                f"stage exceeded {self.timeout_s}s wall-clock budget"
            )
        if error:
            raise error[0]
        return result[0]

    def run(self, name: str, fn: Callable[[], Any]) -> StageResult:
        """Run a stage with retry + backoff + timeout, never raising.

        :class:`NotFittedError` is not retried — an unfitted pipeline is
        a configuration error no retry can fix — and is re-raised so the
        caller fails fast instead of burning the retry budget.
        """
        obs = self.instrumentation
        if obs is None:
            return self._execute(name, fn)
        labels = {"stage": name}
        reg = obs.registry
        reg.counter(
            "guard_calls_total", labels=labels, help="guarded stage calls"
        ).inc()
        obs.stage_start(name)
        result: StageResult | None = None
        try:
            with obs.tracer.span(f"guard:{name}"):
                result = self._execute(name, fn)
            return result
        except Exception:
            # NotFittedError (and anything else escaping the guard) is a
            # failed call even though no StageResult exists for it.
            reg.counter(
                "guard_failures_total",
                labels=labels,
                help="guarded stage calls that did not complete",
            ).inc()
            raise
        finally:
            if result is not None:
                reg.counter(
                    "guard_attempts_total",
                    labels=labels,
                    help="attempts across guarded stage calls",
                ).inc(result.attempts)
                if not result.ok:
                    reg.counter(
                        "guard_failures_total",
                        labels=labels,
                        help="guarded stage calls that did not complete",
                    ).inc()
                    if result.error_type == "TimeoutError":
                        reg.counter(
                            "guard_timeouts_total",
                            labels=labels,
                            help="guarded stage calls abandoned on timeout",
                        ).inc()
            obs.stage_end(name, ok=result is not None and result.ok)

    def _execute(self, name: str, fn: Callable[[], Any]) -> StageResult:
        """The uninstrumented retry/backoff/timeout loop."""
        attempts = 0
        start = self.clock()
        last_exc: BaseException | None = None
        while attempts <= self.max_retries:
            attempts += 1
            try:
                value = self._call_with_timeout(fn)
                return StageResult(
                    name=name,
                    ok=True,
                    value=value,
                    attempts=attempts,
                    elapsed_s=self.clock() - start,
                )
            except NotFittedError:
                raise
            except _StageTimeout as exc:
                # A hung stage will hang again: do not retry timeouts.
                return StageResult(
                    name=name,
                    ok=False,
                    attempts=attempts,
                    error_type="TimeoutError",
                    error_message=str(exc),
                    elapsed_s=self.clock() - start,
                )
            except Exception as exc:
                last_exc = exc
                if attempts <= self.max_retries:
                    self.backoff.sleep(attempts)
        return StageResult(
            name=name,
            ok=False,
            attempts=attempts,
            error_type=type(last_exc).__name__,
            error_message=str(last_exc),
            elapsed_s=self.clock() - start,
        )


class HardenedRunner:
    """Fault-tolerant wrapper around one :class:`ParadigmPipeline`.

    Args:
        pipeline: the pipeline to protect.
        max_retries: extra attempts after a failed stage call (0 = fail
            immediately on first error).
        backoff_s: base sleep before retry ``k`` (scaled by ``2**k``);
            0 retries immediately.
        stage_timeout_s: wall-clock budget per stage call (None = no
            timeout).  A timed-out stage keeps running on its worker
            thread but its result is discarded and the stage recorded as
            TIMEOUT — skip-and-record, never hang the sweep.
        checkpoint_path: where to persist fitted model state.  When the
            file exists, :meth:`fit` restores it (rebuilding the
            architecture with a zero-epoch fit) instead of retraining,
            which is what lets an interrupted sweep resume.
        instrumentation: optional observability sink.  Stage calls are
            guarded through an instrumented :class:`StageGuard` (spans +
            ``guard_*`` counters) and every classified recording is
            counted into ``runner_records_total{outcome=...}`` with the
            ``on_window`` hook fired per terminal outcome.
        clock: monotonic time source for ``elapsed_s`` measurements
            (default ``time.monotonic``); see :class:`StageGuard`.
    """

    def __init__(
        self,
        pipeline: ParadigmPipeline,
        *,
        max_retries: int = 1,
        backoff_s: float = 0.0,
        backoff: ExponentialBackoff | None = None,
        stage_timeout_s: float | None = None,
        checkpoint_path: str | Path | None = None,
        instrumentation: Instrumentation | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._guard = StageGuard(
            max_retries=max_retries,
            backoff_s=backoff_s,
            backoff=backoff,
            timeout_s=stage_timeout_s,
            instrumentation=instrumentation,
            clock=clock,
        )
        self.pipeline = pipeline
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.resumed_from_checkpoint = False
        self.instrumentation = instrumentation
        self.clock = self._guard.clock

    # ------------------------------------------------------------------
    # Guarded execution primitives (delegated to the shared StageGuard)
    # ------------------------------------------------------------------
    @property
    def max_retries(self) -> int:
        """Per-stage retry budget."""
        return self._guard.max_retries

    @property
    def backoff_s(self) -> float:
        """Base backoff before retries."""
        return self._guard.backoff_s

    @property
    def stage_timeout_s(self) -> float | None:
        """Wall-clock budget per stage call."""
        return self._guard.timeout_s

    def _run_stage(self, name: str, fn: Callable[[], Any]) -> StageResult:
        """Run a stage through the shared :class:`StageGuard`."""
        return self._guard.run(name, fn)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self) -> bool:
        """Persist the fitted model (no-op without a path or a model)."""
        if self.checkpoint_path is None:
            return False
        model = getattr(self.pipeline, "model", None)
        if not isinstance(model, Module):
            return False
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        save_state(model, self.checkpoint_path)
        return True

    def _try_resume(self, train: EventDataset) -> bool:
        """Restore fitted state from the checkpoint, if compatible.

        The pipelines build their architecture inside ``fit`` (it depends
        on the dataset), so resume runs a zero-epoch fit to construct the
        untrained model, then loads the checkpointed parameters into it.
        Any incompatibility (architecture drift, corrupt file) falls back
        to a full fit.
        """
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return False
        epochs = getattr(self.pipeline, "epochs", None)
        if epochs is None:
            return False
        try:
            self.pipeline.epochs = 0
            self.pipeline.fit(train)
            load_state(self.pipeline.model, self.checkpoint_path)
            return True
        except Exception:
            self.pipeline.model = None
            return False
        finally:
            self.pipeline.epochs = epochs

    # ------------------------------------------------------------------
    # Hardened pipeline stages
    # ------------------------------------------------------------------
    def fit(self, train: EventDataset, resume: bool = True) -> StageResult:
        """Train (or restore) the pipeline, then checkpoint it.

        Args:
            train: training recordings.  Recordings that fail validation
                are excluded from training (and training proceeds on the
                survivors) rather than poisoning the whole fit.
            resume: restore from :attr:`checkpoint_path` when possible.
        """
        clean_indices = [
            i
            for i, sample in enumerate(train)
            if not validate_sample(sample, train.resolution)
        ]
        if not clean_indices:
            return StageResult(
                name="fit",
                ok=False,
                error_type="ValueError",
                error_message="no valid training recordings after quarantine",
            )
        if len(clean_indices) < len(train):
            train = train.subset(clean_indices)

        if resume and self._try_resume(train):
            self.resumed_from_checkpoint = True
            return StageResult(name="fit", ok=True, attempts=0)
        self.resumed_from_checkpoint = False
        result = self._run_stage("fit", lambda: self.pipeline.fit(train))
        if result.ok:
            self.save_checkpoint()
        return result

    def predict_sample(
        self,
        sample: EventSample,
        index: int,
        expected_resolution,
        fault: FaultModel | None = None,
        seed: int = 0,
    ) -> RecordingReport:
        """Validate, optionally corrupt, revalidate, and classify one recording.

        Validation runs twice: once on the recording as stored (so
        pre-existing dataset corruption is quarantined no matter what
        faults are injected afterwards — some faults re-sort timestamps
        and would otherwise mask it) and once on the faulted stream (so
        fault-induced structural damage is quarantined too).
        """
        record = self._classify_sample(
            sample, index, expected_resolution, fault=fault, seed=seed
        )
        obs = self.instrumentation
        if obs is not None:
            obs.registry.counter(
                "runner_records_total",
                labels={"outcome": record.outcome.value},
                help="recordings by terminal outcome",
            ).inc()
            obs.window(index, record.outcome.value)
        return record

    def _classify_sample(
        self,
        sample: EventSample,
        index: int,
        expected_resolution,
        fault: FaultModel | None = None,
        seed: int = 0,
    ) -> RecordingReport:
        start = self.clock()
        problems = validate_sample(sample, expected_resolution)
        if problems:
            return RecordingReport(
                index=index,
                label=sample.label,
                outcome=RecordingOutcome.QUARANTINED,
                problems=problems,
                elapsed_s=self.clock() - start,
            )
        stream: EventStream = sample.stream
        if fault is not None:
            try:
                stream = apply_fault(fault, stream, seed)
            except Exception as exc:
                return RecordingReport(
                    index=index,
                    label=sample.label,
                    outcome=RecordingOutcome.FAILED,
                    error_type=type(exc).__name__,
                    error_message=f"fault injection failed: {exc}",
                    elapsed_s=self.clock() - start,
                )
            problems = validate_sample(
                EventSample(stream, sample.label), expected_resolution
            )
            if problems:
                return RecordingReport(
                    index=index,
                    label=sample.label,
                    outcome=RecordingOutcome.QUARANTINED,
                    problems=[f"after fault injection: {p}" for p in problems],
                    elapsed_s=self.clock() - start,
                )
        stage = self._run_stage("predict", lambda: self.pipeline.predict(stream))
        if stage.ok:
            return RecordingReport(
                index=index,
                label=sample.label,
                outcome=RecordingOutcome.OK,
                predicted=int(stage.value),
                attempts=stage.attempts,
                elapsed_s=self.clock() - start,
            )
        outcome = (
            RecordingOutcome.TIMEOUT
            if stage.error_type == "TimeoutError"
            else RecordingOutcome.FAILED
        )
        return RecordingReport(
            index=index,
            label=sample.label,
            outcome=outcome,
            error_type=stage.error_type,
            error_message=stage.error_message,
            attempts=stage.attempts,
            elapsed_s=self.clock() - start,
        )

    def evaluate(
        self,
        test: EventDataset,
        fault: FaultModel | None = None,
        seed: int = 0,
    ) -> RunReport:
        """Classify every recording, quarantining instead of crashing.

        Args:
            test: recordings to classify.
            fault: optional fault model injected into every recording
                (each gets an independent generator derived from ``seed``
                and its index, so runs are deterministic).
            seed: fault-injection base seed.

        Returns:
            A :class:`RunReport` with one record per recording.
        """
        self.pipeline._require_fitted()
        report = RunReport(
            pipeline=self.pipeline.name,
            fault=repr(fault) if fault is not None else "",
            seed=seed,
            resumed_from_checkpoint=self.resumed_from_checkpoint,
        )
        expected = test.resolution
        for index, sample in enumerate(test):
            record_seed = int(
                np.random.SeedSequence([seed, index]).generate_state(1)[0]
            )
            report.records.append(
                self.predict_sample(
                    sample, index, expected, fault=fault, seed=record_seed
                )
            )
        return report

    def measure(
        self, test: EventDataset, temporal_labels: tuple[int, ...] = ()
    ) -> StageResult:
        """Hardened ``pipeline.measure`` (retry/timeout, never raises).

        Validation-failing recordings are excluded before measuring, so
        a corrupted test set degrades the measurement instead of killing
        it; the stage fails (recorded, not raised) only when nothing
        valid remains or the pipeline itself errors repeatedly.
        """
        self.pipeline._require_fitted()
        clean_indices = [
            i
            for i, sample in enumerate(test)
            if not validate_sample(sample, test.resolution)
        ]
        if not clean_indices:
            return StageResult(
                name="measure",
                ok=False,
                error_type="ValueError",
                error_message="no valid test recordings after quarantine",
            )
        if len(clean_indices) < len(test):
            test = test.subset(clean_indices)
        return self._run_stage(
            "measure", lambda: self.pipeline.measure(test, temporal_labels)
        )
