"""Seeded exponential backoff with deterministic jitter.

Retry pacing appears in two very different places in this codebase: the
:class:`~repro.reliability.runner.StageGuard` sleeps between retries of
a flaky stage, and the serving admission controller
(:mod:`repro.serving`) hands refused tenants a *retry-after hint*
without sleeping at all.  Both need the same schedule — exponential
growth with a cap — and both need it deterministic, because every
report in this repository must be byte-identical across identical
seeded runs.

Randomised jitter normally breaks that: its whole point is decorrelating
clients.  :class:`ExponentialBackoff` squares the circle by deriving the
jitter for retry ``k`` from a :class:`numpy.random.SeedSequence` keyed
on ``(seed, k)`` — a pure function of the configuration, so two backoff
instances with the same seed produce the same schedule while instances
with different seeds (e.g. per-tenant seeds) stay decorrelated, which is
what prevents a thundering herd of refused tenants from re-arriving in
lockstep.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["ExponentialBackoff"]


@dataclass(frozen=True)
class ExponentialBackoff:
    """Deterministic exponential retry schedule with optional seeded jitter.

    The delay before retry ``k`` (1-based) is::

        min(base_s * factor**(k - 1), max_s) * (1 + jitter * u_k)

    where ``u_k`` is a uniform draw in ``[0, 1)`` derived from
    ``SeedSequence([seed, k])`` — deterministic per ``(seed, k)``, so the
    schedule is reproducible yet decorrelated across seeds.  With
    ``jitter=0`` (the default) the schedule is exactly the classic
    ``base * factor**(k-1)`` ladder the :class:`StageGuard` has always
    used.

    Attributes:
        base_s: delay before the first retry, in seconds.
        factor: multiplicative growth per retry (>= 1).
        max_s: cap on the un-jittered delay (jitter may exceed it by at
            most ``jitter * max_s``).
        jitter: jitter amplitude as a fraction of the delay, in [0, 1].
        seed: base seed of the jitter stream.
    """

    base_s: float = 0.0
    factor: float = 2.0
    max_s: float = math.inf
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError("base_s must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.max_s <= 0:
            raise ValueError("max_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, retry: int) -> float:
        """Delay in seconds before retry ``retry`` (1-based).

        A pure function of ``(self, retry)``: calling it repeatedly, out
        of order, or from different processes yields identical values.
        """
        if retry < 1:
            raise ValueError("retry must be >= 1")
        if self.base_s == 0.0:
            return 0.0
        raw = min(self.base_s * self.factor ** (retry - 1), self.max_s)
        if self.jitter == 0.0:
            return raw
        u = np.random.default_rng(
            np.random.SeedSequence([self.seed & 0xFFFFFFFF, retry])
        ).random()
        return raw * (1.0 + self.jitter * u)

    def delays(self, retries: int) -> list[float]:
        """The first ``retries`` delays, in order (empty for 0)."""
        if retries < 0:
            raise ValueError("retries must be non-negative")
        return [self.delay(k) for k in range(1, retries + 1)]

    def sleep(self, retry: int) -> float:
        """Sleep for :meth:`delay` of retry ``retry``; returns the delay."""
        d = self.delay(retry)
        if d > 0:
            time.sleep(d)
        return d

    def with_seed(self, seed: int) -> "ExponentialBackoff":
        """A copy of this schedule with a different jitter seed."""
        return ExponentialBackoff(
            base_s=self.base_s,
            factor=self.factor,
            max_s=self.max_s,
            jitter=self.jitter,
            seed=seed,
        )
