"""Reverse-mode automatic differentiation on NumPy arrays.

The paper's training methods — surrogate-gradient backpropagation through
time for SNNs, standard backprop for CNNs, straight-through-estimator
quantization, and message-passing graph convolutions — all need a
gradient engine.  Since the reproduction environment provides no deep
learning framework, this module implements one from scratch: a
:class:`Tensor` wrapping a ``float64`` ndarray that records a dynamic
computation graph and differentiates it with a topological-order
backward pass.

The design follows the classic define-by-run pattern: every operation
creates a result tensor holding a closure that, given the result's
gradient, accumulates gradients into its parents.  Broadcasting is fully
supported (gradients are summed back over broadcast axes).
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "custom_gradient",
    "stable_matmul",
    "is_stable_matmul",
]


class _EngineState(threading.local):
    """Per-thread autograd flags.

    The parallel executor's thread backend runs shards concurrently in one
    process; ``no_grad``/``stable_matmul`` entered on one shard's thread
    must not leak into another shard mid-training, so both flags live in
    thread-local storage rather than module globals.
    """

    def __init__(self) -> None:
        self.grad_enabled = True
        self.stable_matmul = False


_STATE = _EngineState()


class no_grad:
    """Context manager that disables graph recording (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._prev = _STATE.grad_enabled
        _STATE.grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _STATE.grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """True when operations record the autograd graph."""
    return _STATE.grad_enabled


class stable_matmul:
    """Context manager making 2-D matmul products batch-size independent.

    BLAS ``gemm``/``gemv`` kernels choose their reduction order (blocking,
    SIMD partial sums) from the operand shapes, so row ``i`` of ``A @ W``
    is not, in general, bit-identical to ``A[i:i+1] @ W``.  Inside this
    context, 2-D ``Tensor`` matmuls are evaluated with ``np.einsum``,
    whose per-row reduction never depends on how many rows ride along.
    The incremental per-event GNN path computes exactly the rows the
    batch path computes, one at a time — wrapping both sides in this
    context is what makes them bit-equal rather than merely close.
    """

    def __enter__(self) -> "stable_matmul":
        self._prev = _STATE.stable_matmul
        _STATE.stable_matmul = True
        return self

    def __exit__(self, *exc) -> None:
        _STATE.stable_matmul = self._prev


def is_stable_matmul() -> bool:
    """True when 2-D matmuls use the batch-size-independent reduction."""
    return _STATE.stable_matmul


def _matmul_data(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Forward matmul honouring :class:`stable_matmul`."""
    if _STATE.stable_matmul and a.ndim == 2 and b.ndim == 2:
        return np.einsum("ij,jk->ik", a, b)
    return a @ b


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multi-dimensional array.

    Args:
        data: anything convertible to a float64 ndarray.
        requires_grad: whether gradients should flow to this tensor.

    Attributes:
        data: the underlying ndarray.
        grad: accumulated gradient (ndarray of the same shape), populated
            by :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _STATE.grad_enabled
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op result, wiring the graph only when grad is enabled."""
        needs = _STATE.grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        Args:
            grad: gradient contribution (broadcast shapes allowed).
            owned: the caller cedes ownership of a freshly allocated
                ``grad`` — the buffer may be adopted in place instead of
                copied.  Values are identical either way; this only skips
                one float64 temporary per hot-loop accumulation.
        """
        if not self.requires_grad:
            return
        g = np.asarray(grad, dtype=np.float64)
        reduced = _unbroadcast(g, self.data.shape)
        if self.grad is None:
            # _unbroadcast allocates whenever it actually reduces (size
            # shrinks); a same-size result may be a reshape view, so only
            # a strictly smaller result is known-fresh.
            if (owned and reduced is g and g is grad) or (
                reduced is not g and reduced.size < g.size
            ):
                self.grad = reduced
            else:
                self.grad = reduced.copy()
        else:
            self.grad += reduced

    # ------------------------------------------------------------------
    # Shape & dtype
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_err()

    def _item_err(self) -> float:
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """A detached copy of the data."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Args:
            grad: incoming gradient; defaults to ones (must be supplied
                explicitly only for non-scalar outputs where a seed other
                than all-ones is wanted).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)

        # Topological order over the dynamic graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(g)

        return Tensor._result(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self._accumulate(-g, owned=True)

        return Tensor._result(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        # Single fused node: IEEE-754 guarantees a - b == a + (-b) bitwise,
        # so this matches the old two-node ``self + (-other)`` chain exactly
        # while skipping one graph node and one float64 temporary.
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g)
            other._accumulate(-g, owned=True)

        return Tensor._result(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = other.data - self.data

        def backward(g: np.ndarray) -> None:
            other._accumulate(g)
            self._accumulate(-g, owned=True)

        return Tensor._result(out_data, (self, other), backward)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * other.data, owned=True)
            other._accumulate(g * self.data, owned=True)

        return Tensor._result(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / other.data, owned=True)
            other._accumulate(-g * self.data / (other.data**2), owned=True)

        return Tensor._result(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1), owned=True)

        return Tensor._result(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = _matmul_data(self.data, other.data)

        def backward(g: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product
                self._accumulate(g * b, owned=True)
                other._accumulate(g * a, owned=True)
            elif a.ndim == 1:  # (k,) @ (k, n)
                self._accumulate(g @ b.T, owned=True)
                other._accumulate(np.outer(a, g), owned=True)
            elif b.ndim == 1:  # (m, k) @ (k,)
                self._accumulate(np.outer(g, b), owned=True)
                other._accumulate(a.T @ g, owned=True)
            else:
                ga = g @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ g
                self._accumulate(_unbroadcast(ga, a.shape), owned=True)
                other._accumulate(_unbroadcast(gb, b.shape), owned=True)

        return Tensor._result(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.data.shape))
            else:
                g_exp = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g_exp, self.data.shape))

        return Tensor._result(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * g, owned=True)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = (self.data == expanded).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                g_exp = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(mask * g_exp, owned=True)

        return Tensor._result(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        # Direct kernel replacing the old ``-((-self).max())`` three-node
        # chain.  Bitwise identical: negation is an exact sign flip, so
        # min(x) == -max(-x) and the tie-splitting mask is the same, while
        # the double negation of the gradient cancels exactly.
        out_data = self.data.min(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if axis is None:
                mask = (self.data == self.data.min()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * g, owned=True)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = (self.data == expanded).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                g_exp = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(mask * g_exp, owned=True)

        return Tensor._result(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance, differentiable (built from mean ops)."""
        centred = self - self.mean(axis=axis, keepdims=True)
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * 0.5 / np.maximum(out_data, 1e-300), owned=True)

        return Tensor._result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        orig = self.data.shape

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.reshape(orig))

        return Tensor._result(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)  # sort-ok: axes is a permutation, no ties

        def backward(g: np.ndarray) -> None:
            self._accumulate(g.transpose(inverse))

        return Tensor._result(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            self._accumulate(full, owned=True)

        return Tensor._result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data, owned=True)

        return Tensor._result(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g / self.data, owned=True)

        return Tensor._result(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * (1.0 - out_data**2), owned=True)

        return Tensor._result(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * out_data * (1.0 - out_data), owned=True)

        return Tensor._result(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask, owned=True)

        return Tensor._result(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * sign, owned=True)

        return Tensor._result(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g: np.ndarray) -> None:
            self._accumulate(g * mask, owned=True)

        return Tensor._result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (no gradient; return plain bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> np.ndarray:
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other) -> np.ndarray:
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other) -> np.ndarray:
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other) -> np.ndarray:
        return self.data <= (other.data if isinstance(other, Tensor) else other)


def custom_gradient(
    forward_value: np.ndarray,
    parents: Sequence[Tensor],
    backward: Callable[[np.ndarray], Sequence[np.ndarray]],
) -> Tensor:
    """Build a tensor with a user-defined backward rule.

    This is the extension point for *surrogate gradients*: the SNN spike
    function uses a hard threshold forward but a smooth derivative
    backward (Neftci et al. 2019), and STE quantization uses an identity
    backward through the rounding forward.

    Args:
        forward_value: the op's forward result.
        parents: the tensors the op consumed.
        backward: maps the output gradient to one gradient per parent
            (entries may be None to skip a parent).

    Returns:
        A tensor wired into the autograd graph with the custom rule.
    """

    def _backward(g: np.ndarray) -> None:
        grads = backward(g)
        if len(grads) != len(parents):
            raise ValueError("backward must return one gradient per parent")
        for parent, grad in zip(parents, grads):
            if grad is not None:
                parent._accumulate(grad)

    return Tensor._result(np.asarray(forward_value, dtype=np.float64), parents, _backward)
