"""Gradient-descent optimizers."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR"]


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, params: list[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    Args:
        params: parameters to update.
        lr: learning rate.
        momentum: heavy-ball momentum coefficient (0 disables).
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update using the stored gradients."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction.

    Args:
        params: parameters to update.
        lr: learning rate.
        betas: first/second moment decay rates.
        eps: denominator floor.
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update using the stored gradients."""
        self._t += 1
        b1, b2 = self.betas
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Step learning-rate schedule: multiply lr by ``gamma`` every
    ``step_size`` calls to :meth:`step`.

    Args:
        optimizer: the optimizer whose ``lr`` is managed.
        step_size: epochs between decays.
        gamma: multiplicative decay factor.
    """

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    @property
    def lr(self) -> float:
        """Current learning rate."""
        return self.optimizer.lr

    def step(self) -> None:
        """Advance one epoch, decaying the rate on schedule."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
