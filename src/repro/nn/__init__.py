"""From-scratch autograd and neural-network substrate.

A reverse-mode automatic-differentiation engine over NumPy plus the layer
zoo, losses and optimizers that the SNN, CNN and GNN pipelines all train
with.  This replaces the PyTorch dependency the original event-vision
stacks assume.
"""

from . import functional
from .functional import (
    affine,
    affine_act,
    affine_act_reference,
    affine_reference,
    avg_pool2d,
    concatenate,
    conv2d,
    dropout,
    log_softmax,
    log_softmax_reference,
    max_pool2d,
    softmax,
    stack,
    where,
)
from .init import kaiming_uniform, xavier_uniform, zeros
from .layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import accuracy, cross_entropy, cross_entropy_reference, mse_loss, nll_loss
from .optim import SGD, Adam, Optimizer, StepLR
from .serialization import load_state, save_state
from .tensor import (
    Tensor,
    custom_gradient,
    is_grad_enabled,
    is_stable_matmul,
    no_grad,
    stable_matmul,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "custom_gradient",
    "stable_matmul",
    "is_stable_matmul",
    "functional",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "affine",
    "affine_reference",
    "affine_act",
    "affine_act_reference",
    "softmax",
    "log_softmax",
    "log_softmax_reference",
    "stack",
    "concatenate",
    "where",
    "dropout",
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Sequential",
    "cross_entropy",
    "cross_entropy_reference",
    "mse_loss",
    "nll_loss",
    "accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "save_state",
    "load_state",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros",
]
