"""Differentiable functional operations.

Convolution, pooling, softmax-family and structural ops built on the
:class:`~repro.nn.tensor.Tensor` autograd core.  Convolutions use the
im2col/col2im lowering — the same dense lowering a systolic-array
accelerator performs in hardware, which is why the hardware cost models
in :mod:`repro.hw` can count its MACs directly.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, custom_gradient
from .tensor import _matmul_data, _unbroadcast

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "affine",
    "affine_reference",
    "affine_act",
    "affine_act_reference",
    "softmax",
    "log_softmax",
    "log_softmax_reference",
    "stack",
    "concatenate",
    "where",
    "dropout",
    "pad2d",
]


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Lower ``(N, C, H, W)`` input into convolution patch columns.

    Returns:
        ``(cols, out_h, out_w)`` where ``cols`` has shape
        ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kh}x{kw} with stride {stride}, padding {padding} "
            f"does not fit input {h}x{w}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Gather every patch with stride tricks, then reshape to columns.
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = patches.reshape(n, c * kh * kw, out_h * out_w, order="C").copy()
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add patch columns back into an input-shaped array (im2col adjoint)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding))
    patches = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                patches[:, :, i, j]
            )
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) with autograd.

    Args:
        x: input of shape ``(N, C_in, H, W)``.
        weight: kernels of shape ``(C_out, C_in, kh, kw)``.
        bias: optional per-output-channel bias ``(C_out,)``.
        stride: spatial stride.
        padding: symmetric zero padding.

    Returns:
        Output tensor of shape ``(N, C_out, out_h, out_w)``.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d input must be 4-D (N, C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d weight must be 4-D, got {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"input channels {x.shape[1]} != weight channels {weight.shape[1]}"
        )
    n = x.shape[0]
    c_out, _, kh, kw = weight.shape
    cols, out_h, out_w = im2col(x.data, kh, kw, stride, padding)
    w_flat = weight.data.reshape(c_out, -1)
    out_data = np.einsum("of,nfp->nop", w_flat, cols).reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(g: np.ndarray):
        g4 = g.reshape(n, c_out, out_h * out_w)
        grad_w = np.einsum("nop,nfp->of", g4, cols).reshape(weight.shape)
        grad_cols = np.einsum("of,nop->nfp", w_flat, g4)
        grad_x = col2im(grad_cols, x.data.shape, kh, kw, stride, padding)
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(g.sum(axis=(0, 2, 3)))
        return grads

    return custom_gradient(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    if stride is None:
        stride = kernel
    if x.ndim != 4:
        raise ValueError(f"max_pool2d input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0
    )
    # cols: (n*c, k*k, out_h*out_w)
    argmax = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(g: np.ndarray):
        g_flat = g.reshape(n * c, out_h * out_w)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, argmax[:, None, :], g_flat[:, None, :], axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [grad_x.reshape(n, c, h, w)]

    return custom_gradient(out_data, [x], backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    if stride is None:
        stride = kernel
    if x.ndim != 4:
        raise ValueError(f"avg_pool2d input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0
    )
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    k2 = kernel * kernel

    def backward(g: np.ndarray):
        g_flat = g.reshape(n * c, 1, out_h * out_w) / k2
        grad_cols = np.broadcast_to(g_flat, cols.shape).copy()
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [grad_x.reshape(n, c, h, w)]

    return custom_gradient(out_data, [x], backward)


def affine_reference(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Unfused ``x @ W^T + b`` — the reference oracle for :func:`affine`.

    Three graph nodes (transpose, matmul, add); kept as the composition
    the fused kernel must match bitwise, forward and backward.
    """
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def affine(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ W^T + b`` in a single autograd node.

    Bitwise identical to :func:`affine_reference` (same NumPy ops in the
    same order, including the einsum path under
    :class:`~repro.nn.tensor.stable_matmul`), but records one node instead
    of three and skips the transpose node's gradient copy — the dominant
    cost in the per-node MLP hot loops of the GNN pipelines.

    Args:
        x: input of shape ``(..., in_features)`` with ``ndim >= 2``.
        weight: ``(out_features, in_features)`` parameter.
        bias: optional ``(out_features,)`` parameter.
    """
    if x.ndim < 2:
        return affine_reference(x, weight, bias)
    out_data = _matmul_data(x.data, weight.data.T)
    if bias is not None:
        out_data = out_data + bias.data
    parents = [x, weight] + ([bias] if bias is not None else [])
    wt_shape = (weight.shape[1], weight.shape[0])

    def backward(g: np.ndarray):
        # Replicates the reference composition's backward exactly:
        # matmul-node grads with plain ``@``, then the transpose node's
        # permutation back onto ``weight``.
        grad_x = _unbroadcast(g @ weight.data, x.shape)
        gw = np.swapaxes(x.data, -1, -2) @ g
        grad_w = _unbroadcast(gw, wt_shape).transpose(1, 0)
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(g)
        return grads

    return custom_gradient(out_data, parents, backward)


_ACTIVATIONS = ("relu", "tanh", "sigmoid")


def affine_act_reference(
    x: Tensor, weight: Tensor, bias: Tensor | None, activation: str
) -> Tensor:
    """Unfused affine followed by an activation — oracle for :func:`affine_act`."""
    out = affine_reference(x, weight, bias)
    if activation == "relu":
        return out.relu()
    if activation == "tanh":
        return out.tanh()
    if activation == "sigmoid":
        return out.sigmoid()
    raise ValueError(f"unknown activation {activation!r}; expected one of {_ACTIVATIONS}")


def affine_act(
    x: Tensor, weight: Tensor, bias: Tensor | None, activation: str
) -> Tensor:
    """Fused affine + activation in a single autograd node.

    Bitwise identical to :func:`affine_act_reference`; saves the
    intermediate pre-activation node and its gradient buffer.
    """
    if activation not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}; expected one of {_ACTIVATIONS}")
    if x.ndim < 2:
        return affine_act_reference(x, weight, bias, activation)
    pre = _matmul_data(x.data, weight.data.T)
    if bias is not None:
        pre = pre + bias.data
    if activation == "relu":
        mask = pre > 0
        act_data = pre * mask
    elif activation == "tanh":
        act_data = np.tanh(pre)
    else:  # sigmoid
        act_data = 1.0 / (1.0 + np.exp(-pre))
    parents = [x, weight] + ([bias] if bias is not None else [])
    wt_shape = (weight.shape[1], weight.shape[0])

    def backward(g: np.ndarray):
        if activation == "relu":
            ga = g * mask
        elif activation == "tanh":
            ga = g * (1.0 - act_data**2)
        else:
            ga = g * act_data * (1.0 - act_data)
        grad_x = _unbroadcast(ga @ weight.data, x.shape)
        gw = np.swapaxes(x.data, -1, -2) @ ga
        grad_w = _unbroadcast(gw, wt_shape).transpose(1, 0)
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(ga)
        return grads

    return custom_gradient(act_data, parents, backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax_reference(x: Tensor, axis: int = -1) -> Tensor:
    """Unfused log-softmax chain — the reference oracle for :func:`log_softmax`."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``, fused into one node.

    Bitwise identical to :func:`log_softmax_reference` (same shift /
    exp / sum / log ops, gradient terms combined in the same order) while
    recording one graph node instead of five and allocating no
    intermediate gradient buffers.
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    se = e.sum(axis=axis, keepdims=True)
    out_data = shifted - np.log(se)

    def backward(g: np.ndarray):
        # Matches the unfused chain: the subtract node routes ``g`` to
        # ``shifted`` and ``-g`` (summed over ``axis``) to the log node,
        # which scales by 1/sum and redistributes through exp.
        gl = _unbroadcast(-g, se.shape)
        gx = g.copy()
        gx += (gl / se) * e
        return [gx]

    return custom_gradient(out_data, [x], backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiably."""
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        return [np.take(g, i, axis=axis) for i in range(len(tensors))]

    return custom_gradient(out_data, tensors, backward)


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiably."""
    if not tensors:
        raise ValueError("concatenate needs at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return list(np.split(g, splits, axis=axis))

    return custom_gradient(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient routing to the chosen branch."""
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return [np.where(cond, g, 0.0), np.where(cond, 0.0, g)]

    return custom_gradient(out_data, [a, b], backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero a fraction ``p`` and rescale survivors."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(g: np.ndarray):
        return [g * mask]

    return custom_gradient(x.data * mask, [x], backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the trailing two axes of a 4-D tensor."""
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return x
    out_data = np.pad(
        x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )

    def backward(g: np.ndarray):
        return [g[:, :, padding:-padding, padding:-padding]]

    return custom_gradient(out_data, [x], backward)
