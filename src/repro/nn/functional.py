"""Differentiable functional operations.

Convolution, pooling, softmax-family and structural ops built on the
:class:`~repro.nn.tensor.Tensor` autograd core.  Convolutions use the
im2col/col2im lowering — the same dense lowering a systolic-array
accelerator performs in hardware, which is why the hardware cost models
in :mod:`repro.hw` can count its MACs directly.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, custom_gradient

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "softmax",
    "log_softmax",
    "stack",
    "concatenate",
    "where",
    "dropout",
    "pad2d",
]


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Lower ``(N, C, H, W)`` input into convolution patch columns.

    Returns:
        ``(cols, out_h, out_w)`` where ``cols`` has shape
        ``(N, C*kh*kw, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kh}x{kw} with stride {stride}, padding {padding} "
            f"does not fit input {h}x{w}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Gather every patch with stride tricks, then reshape to columns.
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = patches.reshape(n, c * kh * kw, out_h * out_w, order="C").copy()
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add patch columns back into an input-shaped array (im2col adjoint)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding))
    patches = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                patches[:, :, i, j]
            )
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) with autograd.

    Args:
        x: input of shape ``(N, C_in, H, W)``.
        weight: kernels of shape ``(C_out, C_in, kh, kw)``.
        bias: optional per-output-channel bias ``(C_out,)``.
        stride: spatial stride.
        padding: symmetric zero padding.

    Returns:
        Output tensor of shape ``(N, C_out, out_h, out_w)``.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d input must be 4-D (N, C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d weight must be 4-D, got {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"input channels {x.shape[1]} != weight channels {weight.shape[1]}"
        )
    n = x.shape[0]
    c_out, _, kh, kw = weight.shape
    cols, out_h, out_w = im2col(x.data, kh, kw, stride, padding)
    w_flat = weight.data.reshape(c_out, -1)
    out_data = np.einsum("of,nfp->nop", w_flat, cols).reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(g: np.ndarray):
        g4 = g.reshape(n, c_out, out_h * out_w)
        grad_w = np.einsum("nop,nfp->of", g4, cols).reshape(weight.shape)
        grad_cols = np.einsum("of,nop->nfp", w_flat, g4)
        grad_x = col2im(grad_cols, x.data.shape, kh, kw, stride, padding)
        grads = [grad_x, grad_w]
        if bias is not None:
            grads.append(g.sum(axis=(0, 2, 3)))
        return grads

    return custom_gradient(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    if stride is None:
        stride = kernel
    if x.ndim != 4:
        raise ValueError(f"max_pool2d input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0
    )
    # cols: (n*c, k*k, out_h*out_w)
    argmax = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(g: np.ndarray):
        g_flat = g.reshape(n * c, out_h * out_w)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, argmax[:, None, :], g_flat[:, None, :], axis=1)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [grad_x.reshape(n, c, h, w)]

    return custom_gradient(out_data, [x], backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    if stride is None:
        stride = kernel
    if x.ndim != 4:
        raise ValueError(f"avg_pool2d input must be 4-D, got {x.shape}")
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0
    )
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    k2 = kernel * kernel

    def backward(g: np.ndarray):
        g_flat = g.reshape(n * c, 1, out_h * out_w) / k2
        grad_cols = np.broadcast_to(g_flat, cols.shape).copy()
        grad_x = col2im(grad_cols, (n * c, 1, h, w), kernel, kernel, stride, 0)
        return [grad_x.reshape(n, c, h, w)]

    return custom_gradient(out_data, [x], backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiably."""
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        return [np.take(g, i, axis=axis) for i in range(len(tensors))]

    return custom_gradient(out_data, tensors, backward)


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiably."""
    if not tensors:
        raise ValueError("concatenate needs at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return list(np.split(g, splits, axis=axis))

    return custom_gradient(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient routing to the chosen branch."""
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray):
        return [np.where(cond, g, 0.0), np.where(cond, 0.0, g)]

    return custom_gradient(out_data, [a, b], backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero a fraction ``p`` and rescale survivors."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(g: np.ndarray):
        return [g * mask]

    return custom_gradient(x.data * mask, [x], backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the trailing two axes of a 4-D tensor."""
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return x
    out_data = np.pad(
        x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )

    def backward(g: np.ndarray):
        return [g[:, :, padding:-padding, padding:-padding]]

    return custom_gradient(out_data, [x], backward)
