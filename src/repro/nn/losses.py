"""Loss functions."""

from __future__ import annotations

import numpy as np

from .functional import log_softmax
from .tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "nll_loss", "accuracy"]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy against integer class labels.

    Args:
        logits: ``(N, num_classes)`` unnormalised scores.
        targets: ``(N,)`` integer labels.

    Returns:
        Scalar mean loss tensor.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(f"targets shape {targets.shape} != ({logits.shape[0]},)")
    return nll_loss(log_softmax(logits, axis=1), targets)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log likelihood over pre-computed log probabilities."""
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = scores.argmax(axis=1)
    return float(np.mean(pred == np.asarray(targets)))
