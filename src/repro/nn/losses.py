"""Loss functions."""

from __future__ import annotations

import numpy as np

from .functional import log_softmax_reference
from .tensor import Tensor, custom_gradient
from .tensor import _unbroadcast

__all__ = ["cross_entropy", "cross_entropy_reference", "mse_loss", "nll_loss", "accuracy"]


def _check_ce_args(logits: Tensor, targets) -> np.ndarray:
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(f"targets shape {targets.shape} != ({logits.shape[0]},)")
    return targets


def cross_entropy_reference(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Unfused softmax cross-entropy — the reference oracle for
    :func:`cross_entropy` (log-softmax chain + gather + mean, ~10 nodes)."""
    targets = _check_ce_args(logits, targets)
    return nll_loss(log_softmax_reference(logits, axis=1), targets)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy against integer class labels, fused into one
    autograd node.

    Bitwise identical to :func:`cross_entropy_reference` — the forward
    runs the same shift/exp/sum/log/gather/mean ops and the backward
    combines the chain's gradient terms in the same order — but records a
    single node, which removes most of the per-step graph and temporary
    cost of the training hot loop.

    Args:
        logits: ``(N, num_classes)`` unnormalised scores.
        targets: ``(N,)`` integer labels.

    Returns:
        Scalar mean loss tensor.
    """
    targets = _check_ce_args(logits, targets)
    x = logits.data
    n = x.shape[0]
    shifted = x - x.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    se = e.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(se)
    rows = np.arange(n)
    picked = log_probs[rows, targets]
    loss = -(picked.sum() * (1.0 / n))

    def backward(g: np.ndarray):
        # mean → gather adjoint: scatter -g/n into the target entries …
        g_picked = np.broadcast_to((-g) * (1.0 / n), (n,))
        full = np.zeros_like(log_probs)
        np.add.at(full, (rows, targets), g_picked)
        # … then the log-softmax adjoint, ordered as the unfused chain.
        gl = _unbroadcast(-full, se.shape)
        gx = full.copy()
        gx += (gl / se) * e
        return [gx]

    return custom_gradient(loss, [logits], backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log likelihood over pre-computed log probabilities."""
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = scores.argmax(axis=1)
    return float(np.mean(pred == np.asarray(targets)))
