"""Parameter initialisation schemes."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros"]


def kaiming_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU-family networks.

    Args:
        shape: parameter shape.
        fan_in: number of inputs feeding each unit.
        rng: random generator.
    """
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for saturating activations."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fans must be positive")
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)
