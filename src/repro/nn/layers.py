"""Neural-network layers (modules) on the autograd core.

A small module system in the familiar style: a :class:`Module` owns
parameters and sub-modules, :meth:`Module.parameters` walks the tree, and
``__call__`` dispatches to ``forward``.  These layers are shared by the
dense-frame CNN pipeline, the readout heads of the SNN pipeline and the
per-node transforms of the GNN pipeline.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .init import kaiming_uniform, zeros
from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Sequential",
]


class Module:
    """Base class for layers and models.

    Sub-classes assign :class:`Tensor` parameters and child modules as
    attributes; :meth:`parameters` discovers both recursively.
    """

    def __init__(self) -> None:
        self.training = True

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    def parameters(self) -> list[Tensor]:
        """All trainable parameter tensors in this module tree."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            self._collect(value, params, seen)
        return params

    def _collect(self, value, params: list[Tensor], seen: set[int]) -> None:
        if isinstance(value, Tensor) and value.requires_grad and id(value) not in seen:
            seen.add(id(value))
            params.append(value)
        elif isinstance(value, Module):
            for p in value.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect(item, params, seen)

    def modules(self) -> list["Module"]:
        """This module plus all descendants, depth-first."""
        out: list[Module] = [self]
        for value in self.__dict__.values():
            if isinstance(value, Module):
                out.extend(value.modules())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        out.extend(item.modules())
        return out

    def train(self) -> "Module":
        """Switch the whole tree into training mode."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Switch the whole tree into inference mode."""
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name → array mapping of all parameters (copyable snapshot)."""
        out: dict[str, np.ndarray] = {}
        self._state("", out)
        return out

    def _state(self, prefix: str, out: dict[str, np.ndarray]) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                out[key] = value.data.copy()
            elif isinstance(value, Module):
                value._state(f"{key}.", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._state(f"{key}.{i}.", out)
                    elif isinstance(item, Tensor) and item.requires_grad:
                        out[f"{key}.{i}"] = item.data.copy()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters from a :meth:`state_dict` snapshot (in place)."""
        current = {}
        self._named_params("", current)
        missing = set(current) - set(state)
        if missing:
            raise KeyError(f"state dict missing keys: {sorted(missing)}")
        for key, tensor in current.items():
            if state[key].shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {state[key].shape} vs {tensor.data.shape}"
                )
            tensor.data[...] = state[key]

    def _named_params(self, prefix: str, out: dict[str, Tensor]) -> None:
        for name, value in self.__dict__.items():
            key = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                out[key] = value
            elif isinstance(value, Module):
                value._named_params(f"{key}.", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._named_params(f"{key}.{i}.", out)
                    elif isinstance(item, Tensor) and item.requires_grad:
                        out[f"{key}.{i}"] = item


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    Args:
        in_features: input dimensionality.
        out_features: output dimensionality.
        bias: include an additive bias.
        rng: initialisation generator (defaults to seed 0).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            kaiming_uniform((out_features, in_features), in_features, rng),
            requires_grad=True,
        )
        self.bias = Tensor(zeros((out_features,)), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        # Single fused node; bit-identical to the unfused
        # ``x @ self.weight.T + self.bias`` composition (F.affine_reference).
        return F.affine(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer.

    Args:
        in_channels, out_channels: channel counts.
        kernel_size: square kernel side.
        stride: spatial stride.
        padding: symmetric zero padding.
        bias: include per-channel bias.
        rng: initialisation generator.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            requires_grad=True,
        )
        self.bias = Tensor(zeros((out_channels,)), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class ReLU(Module):
    """Rectified linear activation — the sparsity-inducing non-linearity
    Section III-B credits for CNN feature-map sparsity."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class MaxPool2d(Module):
    """Square max pooling."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class AvgPool2d(Module):
    """Square average pooling."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class Flatten(Module):
    """Flatten all axes but the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    """Inverted dropout (active only in training mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class BatchNorm(Module):
    """Batch normalisation over the batch (and spatial) axes.

    Works for 2-D ``(N, F)`` and 4-D ``(N, C, H, W)`` inputs; running
    statistics are tracked for inference mode.

    Args:
        num_features: feature/channel count.
        momentum: running-statistics update rate.
        eps: variance floor.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(num_features), requires_grad=True)
        self.beta = Tensor(np.zeros(num_features), requires_grad=True)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            axes: tuple[int, ...] = (0,)
            shape = (1, self.num_features)
        elif x.ndim == 4:
            axes = (0, 2, 3)
            shape = (1, self.num_features, 1, 1)
        else:
            raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.shape}")
        if self.training:
            mean = x.data.mean(axis=axes)
            var = x.data.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        # Statistics are treated as constants (no grad through them); this
        # is the standard "frozen statistics" simplification and keeps the
        # backward pass simple while remaining a valid descent direction.
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - Tensor(mean.reshape(shape))) * Tensor(inv_std.reshape(shape))
        return x_hat * self.gamma.reshape(shape) + self.beta.reshape(shape)


# Activation layers Sequential can fuse into the preceding Linear.
_FUSABLE_ACT = {ReLU: "relu", Tanh: "tanh", Sigmoid: "sigmoid"}


class Sequential(Module):
    """Run sub-modules in order.

    Adjacent ``(Linear, activation)`` pairs are executed through the
    fused :func:`repro.nn.functional.affine_act` kernel — bit-identical
    to running the two layers separately, but one autograd node instead
    of four.  Exact types only; subclasses may override ``forward`` and
    are dispatched normally.
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        layers = self.layers
        n = len(layers)
        i = 0
        while i < n:
            layer = layers[i]
            act = _FUSABLE_ACT.get(type(layers[i + 1])) if i + 1 < n else None
            if act is not None and type(layer) is Linear:
                x = F.affine_act(x, layer.weight, layer.bias, act)
                i += 2
            else:
                x = layer(x)
                i += 1
        return x

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)
