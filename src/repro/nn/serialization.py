"""Model parameter persistence.

Thin ``.npz`` save/load over :meth:`repro.nn.Module.state_dict`, so
trained pipelines can be checkpointed and experiments resumed exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state"]

_FORMAT_VERSION = 1


def save_state(model: Module, path: str | Path) -> None:
    """Write a model's parameters to an ``.npz`` checkpoint.

    Args:
        model: any :class:`Module`.
        path: destination file.
    """
    state = model.state_dict()
    np.savez_compressed(
        Path(path), __version__=np.int64(_FORMAT_VERSION), **state
    )


def load_state(model: Module, path: str | Path) -> None:
    """Restore a model's parameters from :func:`save_state` output.

    The model must have the same architecture (same parameter names and
    shapes) as the one that was saved.

    Args:
        model: the model to fill in place.
        path: checkpoint file.

    Raises:
        ValueError: on version mismatch or missing/misshapen parameters.
    """
    with np.load(Path(path)) as data:
        if "__version__" not in data:
            raise ValueError(f"{path} is not a repro checkpoint")
        if int(data["__version__"]) != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {int(data['__version__'])}")
        state = {k: data[k] for k in data.files if k != "__version__"}
    model.load_state_dict(state)
