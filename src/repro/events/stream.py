"""Core event-stream container.

An event camera emits a sparse, time-ordered stream of *events*, each
comprising an ``(x, y)`` pixel address, a timestamp (microseconds in this
library) and a binary polarity (+1 for an ON / luminance-increase event,
-1 for an OFF / luminance-decrease event).  This module provides
:class:`EventStream`, a thin, validated wrapper around a NumPy structured
array with that layout.  Every other subsystem in the library — the camera
simulator, the SNN / CNN / GNN pipelines and the hardware cost models —
consumes and produces :class:`EventStream` objects.

The dtype is deliberately minimal and matches the fields carried by the
Address-Event Representation (AER) protocol (see :mod:`repro.events.aer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["EVENT_DTYPE", "EventStream", "Resolution", "concatenate"]

#: Structured dtype used for all event arrays in the library.
#:
#: ``t``: timestamp in microseconds (int64, monotonically non-decreasing).
#: ``x``/``y``: pixel coordinates (int32, ``0 <= x < width``, ``0 <= y < height``).
#: ``p``: polarity, strictly +1 or -1 (int8).
EVENT_DTYPE = np.dtype([("t", np.int64), ("x", np.int32), ("y", np.int32), ("p", np.int8)])


@dataclass(frozen=True)
class Resolution:
    """Sensor array resolution in pixels.

    Attributes:
        width: number of pixel columns (x spans ``[0, width)``).
        height: number of pixel rows (y spans ``[0, height)``).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"resolution must be positive, got {self.width}x{self.height}")

    @property
    def num_pixels(self) -> int:
        """Total number of pixels in the array."""
        return self.width * self.height

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean mask of coordinates that fall inside the array."""
        return (x >= 0) & (x < self.width) & (y >= 0) & (y < self.height)

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"


class EventStream:
    """A validated, time-ordered stream of camera events.

    The stream is backed by a structured NumPy array with dtype
    :data:`EVENT_DTYPE` and carries the resolution of the sensor that
    produced it.  Instances are conceptually immutable: operations return
    new streams rather than mutating in place.

    Args:
        events: structured array with fields ``t, x, y, p``, or anything
            :func:`numpy.asarray` can convert to one.
        resolution: the sensor array size; coordinates are validated
            against it.
        check: when True (default), validate ordering, coordinate bounds
            and polarity values.  Disable only on hot paths where the
            producer guarantees validity.
    """

    __slots__ = ("_events", "_resolution", "_soa")

    def __init__(
        self,
        events: np.ndarray,
        resolution: Resolution,
        *,
        check: bool = True,
    ) -> None:
        arr = np.asarray(events)
        if arr.dtype != EVENT_DTYPE:
            try:
                arr = arr.astype(EVENT_DTYPE)
            except (TypeError, ValueError) as exc:
                raise TypeError(
                    f"events must have dtype {EVENT_DTYPE}, got {arr.dtype}"
                ) from exc
        if arr.ndim != 1:
            raise ValueError(f"events must be a 1-D array, got shape {arr.shape}")
        if check and arr.size:
            if np.any(np.diff(arr["t"]) < 0):
                raise ValueError("event timestamps must be non-decreasing")
            if not np.all(resolution.contains(arr["x"], arr["y"])):
                raise ValueError(f"event coordinates out of bounds for {resolution}")
            pol = arr["p"]
            if not np.all((pol == 1) | (pol == -1)):
                raise ValueError("polarity values must be +1 or -1")
        self._events = arr
        self._resolution = resolution
        self._soa = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        t: Sequence[int] | np.ndarray,
        x: Sequence[int] | np.ndarray,
        y: Sequence[int] | np.ndarray,
        p: Sequence[int] | np.ndarray,
        resolution: Resolution,
        *,
        sort: bool = False,
    ) -> "EventStream":
        """Build a stream from parallel coordinate arrays.

        Args:
            t, x, y, p: equal-length sequences of timestamps, coordinates
                and polarities.
            resolution: sensor resolution.
            sort: when True, stably sort by timestamp before validation.
        """
        t = np.asarray(t, dtype=np.int64)
        x = np.asarray(x, dtype=np.int32)
        y = np.asarray(y, dtype=np.int32)
        p = np.asarray(p, dtype=np.int8)
        n = len(t)
        if not (len(x) == len(y) == len(p) == n):
            raise ValueError("t, x, y, p must have equal lengths")
        arr = np.empty(n, dtype=EVENT_DTYPE)
        arr["t"], arr["x"], arr["y"], arr["p"] = t, x, y, p
        if sort and n:
            arr = arr[np.argsort(arr["t"], kind="stable")]
        return cls(arr, resolution)

    @classmethod
    def empty(cls, resolution: Resolution) -> "EventStream":
        """An event stream with no events."""
        return cls(np.empty(0, dtype=EVENT_DTYPE), resolution, check=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def resolution(self) -> Resolution:
        """Sensor resolution the stream coordinates refer to."""
        return self._resolution

    @property
    def t(self) -> np.ndarray:
        """Timestamps in microseconds (int64 view)."""
        return self._events["t"]

    @property
    def x(self) -> np.ndarray:
        """Pixel column addresses (int32 view)."""
        return self._events["x"]

    @property
    def y(self) -> np.ndarray:
        """Pixel row addresses (int32 view)."""
        return self._events["y"]

    @property
    def p(self) -> np.ndarray:
        """Polarities, +1 or -1 (int8 view)."""
        return self._events["p"]

    @property
    def raw(self) -> np.ndarray:
        """The backing structured array (do not mutate)."""
        return self._events

    def __len__(self) -> int:
        return self._events.size

    def __getstate__(self):
        # The SoA cache is derived data; keep pickles (parallel shard
        # shipping, on-disk caches) at the raw-array footprint.
        return (self._events, self._resolution)

    def __setstate__(self, state) -> None:
        self._events, self._resolution = state
        self._soa = None

    def __iter__(self) -> Iterator[np.void]:
        return iter(self._events)

    def __getitem__(self, index) -> "EventStream":
        """Index or slice the stream, returning a new stream.

        Boolean masks, integer arrays and slices are supported.  Scalar
        indexing also returns a length-1 stream for type stability.
        """
        sub = self._events[index]
        if sub.ndim == 0:
            sub = sub.reshape(1)
        return EventStream(sub, self._resolution, check=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventStream):
            return NotImplemented
        return self._resolution == other._resolution and np.array_equal(
            self._events, other._events
        )

    def __repr__(self) -> str:
        span = f"[{self.t[0]}..{self.t[-1]}]us" if len(self) else "[]"
        return f"EventStream(n={len(self)}, res={self._resolution}, t={span})"

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Diagnose integrity problems without raising.

        Construction with ``check=True`` rejects malformed data outright;
        this method instead *reports* what is wrong, so fault-tolerant
        consumers (:mod:`repro.reliability`) can quarantine a corrupted
        recording with a reason instead of crashing on it.  A stream
        built with ``check=False`` (e.g. straight from a decoder or a
        fault injector) may fail any of these checks.

        Returns:
            A list of human-readable problem descriptions; empty when the
            stream satisfies every :data:`EVENT_DTYPE` invariant.
        """
        problems: list[str] = []
        if len(self) == 0:
            return problems
        bad_order = int(np.count_nonzero(np.diff(self.t) < 0))
        if bad_order:
            problems.append(f"{bad_order} out-of-order timestamp step(s)")
        oob = int(np.count_nonzero(~self._resolution.contains(self.x, self.y)))
        if oob:
            problems.append(
                f"{oob} event(s) outside the {self._resolution} array"
            )
        bad_pol = int(np.count_nonzero((self.p != 1) & (self.p != -1)))
        if bad_pol:
            problems.append(f"{bad_pol} event(s) with polarity not in {{+1, -1}}")
        if int(self.t[0]) < 0:
            problems.append(f"negative first timestamp {int(self.t[0])}")
        return problems

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """Time span covered by the stream in microseconds (0 if < 2 events)."""
        if len(self) < 2:
            return 0
        return int(self.t[-1] - self.t[0])

    def event_rate(self) -> float:
        """Mean event rate in events per second (0.0 for degenerate streams)."""
        dur = self.duration
        if dur <= 0:
            return 0.0
        return len(self) / (dur * 1e-6)

    def polarity_counts(self) -> tuple[int, int]:
        """Return ``(num_on, num_off)`` event counts."""
        on = int(np.count_nonzero(self.p == 1))
        return on, len(self) - on

    def sparsity(self) -> float:
        """Fraction of pixels that never fire in this stream (1.0 = all silent)."""
        if len(self) == 0:
            return 1.0
        active = np.unique(self.y.astype(np.int64) * self._resolution.width + self.x)
        return 1.0 - active.size / self._resolution.num_pixels

    # ------------------------------------------------------------------
    # Transformations (all return new streams)
    # ------------------------------------------------------------------
    def time_window(self, t_start: int, t_end: int) -> "EventStream":
        """Events with ``t_start <= t < t_end`` (microseconds)."""
        if t_end < t_start:
            raise ValueError(f"empty window: t_end={t_end} < t_start={t_start}")
        lo = np.searchsorted(self.t, t_start, side="left")
        hi = np.searchsorted(self.t, t_end, side="left")
        return self[lo:hi]

    def crop(self, x0: int, y0: int, x1: int, y1: int) -> "EventStream":
        """Events inside the half-open spatial box ``[x0, x1) x [y0, y1)``.

        Coordinates are re-referenced to the box origin and the resolution
        shrinks accordingly.
        """
        if not (0 <= x0 < x1 <= self._resolution.width):
            raise ValueError(f"invalid x crop [{x0}, {x1})")
        if not (0 <= y0 < y1 <= self._resolution.height):
            raise ValueError(f"invalid y crop [{y0}, {y1})")
        mask = (self.x >= x0) & (self.x < x1) & (self.y >= y0) & (self.y < y1)
        sub = self._events[mask].copy()
        sub["x"] -= x0
        sub["y"] -= y0
        return EventStream(sub, Resolution(x1 - x0, y1 - y0), check=False)

    def shift_time(self, offset_us: int) -> "EventStream":
        """Add ``offset_us`` to every timestamp."""
        sub = self._events.copy()
        sub["t"] += offset_us
        return EventStream(sub, self._resolution, check=False)

    def rezero_time(self) -> "EventStream":
        """Shift timestamps so the first event occurs at t=0."""
        if len(self) == 0:
            return self
        return self.shift_time(-int(self.t[0]))

    def with_polarity(self, polarity: int) -> "EventStream":
        """Only the events of the given polarity (+1 or -1)."""
        if polarity not in (1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {polarity}")
        return self[self.p == polarity]

    def flip_polarity(self) -> "EventStream":
        """Swap ON and OFF events."""
        sub = self._events.copy()
        sub["p"] = -sub["p"]
        return EventStream(sub, self._resolution, check=False)

    def flip_x(self) -> "EventStream":
        """Mirror the stream horizontally."""
        sub = self._events.copy()
        sub["x"] = self._resolution.width - 1 - sub["x"]
        return EventStream(sub, self._resolution, check=False)

    def flip_y(self) -> "EventStream":
        """Mirror the stream vertically."""
        sub = self._events.copy()
        sub["y"] = self._resolution.height - 1 - sub["y"]
        return EventStream(sub, self._resolution, check=False)

    def pixel_index(self) -> np.ndarray:
        """Flat pixel index ``y * width + x`` for every event (int64)."""
        return self.y.astype(np.int64) * self._resolution.width + self.x.astype(np.int64)

    def soa(self) -> "EventSoA":
        """Contiguous structure-of-arrays view of this stream, cached.

        The first call extracts one contiguous column per field; later
        calls (graph build, encoders, repeated point clouds) reuse them.
        """
        if self._soa is None:
            from .soa import EventSoA

            self._soa = EventSoA.from_stream(self)
        return self._soa

    def as_point_cloud(self, time_scale_us: float = 1.0) -> np.ndarray:
        """View the stream as an ``(N, 3)`` float point cloud ``(x, y, t/scale)``.

        This is the representation event-graph construction starts from
        (Section IV of the paper): two spatial dimensions plus one scaled
        temporal dimension.  Assembled from the cached
        structure-of-arrays columns (:meth:`soa`); values are identical
        to reading the structured fields directly.

        Args:
            time_scale_us: microseconds mapped to one spatial-unit of the
                temporal axis.  Larger values compress time.
        """
        return self.soa().point_cloud(time_scale_us)


def concatenate(streams: Iterable[EventStream]) -> EventStream:
    """Concatenate time-ordered streams that share one resolution.

    The streams must already be mutually ordered (each stream's first
    timestamp at or after the previous stream's last); use
    :meth:`EventStream.shift_time` first when stitching recordings.

    Each input stream was validated at construction, so only the
    cross-stream boundary timestamps are checked here — the merged
    array is not re-validated.
    """
    streams = list(streams)
    if not streams:
        raise ValueError("need at least one stream to concatenate")
    res = streams[0].resolution
    last_t: int | None = None
    for s in streams:
        if s.resolution != res:
            raise ValueError(f"mixed resolutions: {s.resolution} vs {res}")
        if len(s) == 0:
            continue
        if last_t is not None and int(s.t[0]) < last_t:
            raise ValueError(
                "streams are not mutually time-ordered: "
                f"boundary {s.t[0]} < {last_t}"
            )
        last_t = int(s.t[-1])
    arr = np.concatenate([s.raw for s in streams])
    return EventStream(arr, res, check=False)
