"""Stream-level operations on event data.

These are the generic manipulations every paradigm needs before its own
preprocessing: windowing/chunking for frame construction, refractory and
neighbourhood-support filters for denoising, and spatial downsampling as
used by in-sensor mitigation schemes (Section II of the paper).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .stream import EventStream, Resolution

__all__ = [
    "split_by_time",
    "split_by_count",
    "refractory_filter",
    "neighbourhood_filter",
    "hot_pixel_filter",
    "spatial_downsample",
    "merge_polarities",
    "jitter_time",
    "drop_events",
    "event_count_map",
]


def split_by_time(stream: EventStream, window_us: int) -> Iterator[EventStream]:
    """Split a stream into consecutive fixed-duration windows.

    Windows are aligned to the first event's timestamp; every window in
    ``[t0, t_last]`` is yielded, including empty ones, so frame sequences
    built from the chunks have uniform temporal spacing.

    Args:
        stream: input events.
        window_us: window length in microseconds (> 0).

    Yields:
        One :class:`EventStream` per window, each re-zeroed relative to
        the global stream start (timestamps stay absolute).
    """
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    if len(stream) == 0:
        return
    t0 = int(stream.t[0])
    t_end = int(stream.t[-1])
    start = t0
    while start <= t_end:
        yield stream.time_window(start, start + window_us)
        start += window_us


def split_by_count(stream: EventStream, count: int) -> Iterator[EventStream]:
    """Split a stream into consecutive fixed-size chunks of events.

    The final chunk may be shorter.  Fixed-count slicing is the windowing
    strategy used by event-count frame methods that adapt to scene
    activity rather than wall-clock time.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    for lo in range(0, len(stream), count):
        yield stream[lo : lo + count]


def refractory_filter(stream: EventStream, refractory_us: int) -> EventStream:
    """Drop events that follow a previous event at the same pixel too soon.

    Models a per-pixel refractory period: after a pixel fires, further
    events from that pixel within ``refractory_us`` are discarded
    (regardless of polarity).  This is both a denoising filter and a
    component of the DVS pixel circuit.
    """
    if refractory_us < 0:
        raise ValueError("refractory_us must be non-negative")
    n = len(stream)
    if n == 0 or refractory_us == 0:
        return stream
    pix = stream.pixel_index()
    t = stream.t
    last_fire: dict[int, int] = {}
    keep = np.zeros(n, dtype=bool)
    for i in range(n):
        key = int(pix[i])
        ti = int(t[i])
        prev = last_fire.get(key)
        if prev is None or ti - prev > refractory_us:
            keep[i] = True
            last_fire[key] = ti
    return stream[keep]


def neighbourhood_filter(
    stream: EventStream, window_us: int, radius: int = 1
) -> EventStream:
    """Background-activity filter: keep events supported by a recent neighbour.

    An event survives only if some event occurred within ``radius`` pixels
    (Chebyshev distance) during the preceding ``window_us`` microseconds.
    Isolated shot-noise events have no such support and are removed.  This
    is the classic nearest-neighbour denoise used on DVS output.
    """
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    n = len(stream)
    if n == 0:
        return stream
    w, h = stream.resolution.width, stream.resolution.height
    last_seen = np.full((h, w), np.iinfo(np.int64).min, dtype=np.int64)
    keep = np.zeros(n, dtype=bool)
    xs, ys, ts = stream.x, stream.y, stream.t
    for i in range(n):
        x, y, t = int(xs[i]), int(ys[i]), int(ts[i])
        x0, x1 = max(0, x - radius), min(w, x + radius + 1)
        y0, y1 = max(0, y - radius), min(h, y + radius + 1)
        patch = last_seen[y0:y1, x0:x1]
        if np.any(patch >= t - window_us):
            keep[i] = True
        last_seen[y, x] = t
    return stream[keep]


def hot_pixel_filter(
    stream: EventStream, rate_factor: float = 10.0, min_events: int = 8
) -> EventStream:
    """Remove events from statistically over-active ("hot") pixels.

    A pixel is hot when its event count exceeds ``rate_factor`` times the
    mean count of all *active* pixels (and at least ``min_events``) —
    the standard rate-outlier criterion used to mask stuck comparators.

    Args:
        stream: input events.
        rate_factor: multiple of the mean active-pixel count that marks
            a pixel hot.
        min_events: hot pixels must additionally exceed this absolute
            count (protects short recordings).
    """
    if rate_factor <= 1.0:
        raise ValueError("rate_factor must be > 1")
    if min_events < 1:
        raise ValueError("min_events must be >= 1")
    if len(stream) == 0:
        return stream
    pix = stream.pixel_index()
    counts = np.bincount(pix, minlength=stream.resolution.num_pixels)
    active = counts[counts > 0]
    threshold = max(float(active.mean()) * rate_factor, float(min_events))
    hot = counts > threshold
    keep = ~hot[pix]
    return stream[keep]


def spatial_downsample(
    stream: EventStream, factor: int, refractory_us: int = 0
) -> EventStream:
    """Pool events into ``factor x factor`` super-pixels.

    Implements the in-sensor down-sampling mitigation for high-resolution
    sensors (Bouvier et al. 2021, cited in Section II): coordinates are
    integer-divided by ``factor``, and events landing on the same
    super-pixel with the same polarity within ``refractory_us`` merge
    into one (a pooled pixel shares one comparator, so it can emit at
    most once per refractory window).  With ``refractory_us=0`` only
    exactly simultaneous duplicates merge.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    if refractory_us < 0:
        raise ValueError("refractory_us must be non-negative")
    if factor == 1 or len(stream) == 0:
        new_res = Resolution(
            max(1, stream.resolution.width // factor),
            max(1, stream.resolution.height // factor),
        )
        if factor == 1:
            return stream
        return EventStream.empty(new_res)
    new_res = Resolution(
        max(1, stream.resolution.width // factor),
        max(1, stream.resolution.height // factor),
    )
    x = np.minimum(stream.x // factor, new_res.width - 1).astype(np.int64)
    y = np.minimum(stream.y // factor, new_res.height - 1).astype(np.int64)
    pol_bit = (stream.p == 1).astype(np.int64)
    keys = (y * new_res.width + x) * 2 + pol_bit
    t = stream.t
    keep = np.ones(len(stream), dtype=bool)
    last_emit: dict[int, int] = {}
    for i in range(len(stream)):
        key = int(keys[i])
        ti = int(t[i])
        prev = last_emit.get(key)
        if prev is not None and ti - prev <= refractory_us:
            keep[i] = False
        else:
            last_emit[key] = ti
    return EventStream.from_arrays(
        t[keep], x[keep], y[keep], stream.p[keep], new_res
    )


def merge_polarities(stream: EventStream) -> EventStream:
    """Map every event to ON polarity, discarding sign information."""
    arr = stream.raw.copy()
    arr["p"] = 1
    return EventStream(arr, stream.resolution, check=False)


def jitter_time(
    stream: EventStream, sigma_us: float, rng: np.random.Generator
) -> EventStream:
    """Add Gaussian timestamp jitter and re-sort (data augmentation / sensor model).

    Args:
        stream: input events.
        sigma_us: standard deviation of the jitter in microseconds.
        rng: NumPy random generator (explicit for reproducibility).
    """
    if sigma_us < 0:
        raise ValueError("sigma_us must be non-negative")
    if len(stream) == 0 or sigma_us == 0:
        return stream
    t = stream.t + np.round(rng.normal(0.0, sigma_us, len(stream))).astype(np.int64)
    t = np.maximum(t, 0)
    order = np.argsort(t, kind="stable")
    return EventStream.from_arrays(
        t[order], stream.x[order], stream.y[order], stream.p[order], stream.resolution
    )


def drop_events(
    stream: EventStream, drop_probability: float, rng: np.random.Generator
) -> EventStream:
    """Randomly drop a fraction of events (augmentation / lossy-link model)."""
    if not 0.0 <= drop_probability <= 1.0:
        raise ValueError("drop_probability must be in [0, 1]")
    if len(stream) == 0 or drop_probability == 0.0:
        return stream
    keep = rng.random(len(stream)) >= drop_probability
    return stream[keep]


def event_count_map(stream: EventStream, signed: bool = False) -> np.ndarray:
    """Per-pixel event counts as an ``(H, W)`` array.

    Args:
        stream: input events.
        signed: when True, OFF events subtract instead of adding (so the
            map is the net polarity balance per pixel).
    """
    h, w = stream.resolution.height, stream.resolution.width
    weights = stream.p.astype(np.int64) if signed else None
    flat = np.bincount(
        stream.pixel_index(), weights=weights, minlength=h * w
    )
    return flat.reshape(h, w).astype(np.int64)
