"""Stream-level operations on event data.

These are the generic manipulations every paradigm needs before its own
preprocessing: windowing/chunking for frame construction, refractory and
neighbourhood-support filters for denoising, and spatial downsampling as
used by in-sensor mitigation schemes (Section II of the paper).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .stream import EVENT_DTYPE, EventStream, Resolution

__all__ = [
    "MAX_SPLIT_WINDOWS",
    "split_by_time",
    "split_by_count",
    "refractory_filter",
    "refractory_filter_reference",
    "neighbourhood_filter",
    "neighbourhood_filter_reference",
    "hot_pixel_filter",
    "spatial_downsample",
    "spatial_downsample_reference",
    "merge_polarities",
    "jitter_time",
    "drop_events",
    "event_count_map",
]


#: Default cap on the number of windows :func:`split_by_time` may yield.
#: One window is yielded per ``window_us`` across the stream's span —
#: even an empty one — so a single corrupted far-future timestamp would
#: otherwise turn the generator into an effective hang.
MAX_SPLIT_WINDOWS = 4_194_304


def split_by_time(
    stream: EventStream, window_us: int, max_windows: int = MAX_SPLIT_WINDOWS
) -> Iterator[EventStream]:
    """Split a stream into consecutive fixed-duration windows.

    Windows are aligned to the first event's timestamp; every window in
    ``[t0, t_last]`` is yielded, including empty ones, so frame sequences
    built from the chunks have uniform temporal spacing.  Because one
    (mostly empty) window is yielded per ``window_us`` of span, a stream
    whose span needs more than ``max_windows`` windows (e.g. one
    corrupted far-future timestamp) raises :class:`ValueError` naming
    the span — eagerly, at call time, not on first iteration.

    Args:
        stream: input events.
        window_us: window length in microseconds (> 0).
        max_windows: upper bound on the number of windows.

    Returns:
        An iterator of one :class:`EventStream` per window, spanning
        ``[start, start + window_us)``.  Timestamps stay absolute (use
        :meth:`EventStream.rezero_time` on a chunk for window-relative
        times).
    """
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    if max_windows <= 0:
        raise ValueError("max_windows must be positive")
    if len(stream) == 0:
        return iter(())
    t0 = int(stream.t[0])
    t_end = int(stream.t[-1])
    span = t_end - t0
    num_windows = span // window_us + 1
    if num_windows > max_windows:
        raise ValueError(
            f"stream spans {span}us, needing {num_windows} windows of "
            f"{window_us}us (max_windows={max_windows}); a corrupted "
            "far-future timestamp is the usual cause — clean the stream "
            "or raise max_windows"
        )

    def _windows() -> Iterator[EventStream]:
        start = t0
        while start <= t_end:
            yield stream.time_window(start, start + window_us)
            start += window_us

    return _windows()


def split_by_count(stream: EventStream, count: int) -> Iterator[EventStream]:
    """Split a stream into consecutive fixed-size chunks of events.

    The final chunk may be shorter.  Fixed-count slicing is the windowing
    strategy used by event-count frame methods that adapt to scene
    activity rather than wall-clock time.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    for lo in range(0, len(stream), count):
        yield stream[lo : lo + count]


def _grouped_refractory_keep(
    keys: np.ndarray, t: np.ndarray, refractory_us: int
) -> np.ndarray:
    """Vectorized greedy refractory selection, grouped by ``keys``.

    Within each group (events in stream order, timestamps
    non-decreasing) the first event is kept and every subsequent event
    is kept iff it is more than ``refractory_us`` after the last *kept*
    event of the group — the sequential-scan semantics of the loop
    references.

    Two facts remove the sequential chain dependency.  First, any event
    whose gap to its in-group predecessor exceeds ``refractory_us`` is
    provably kept (the last kept event can be no later than that
    predecessor), so group heads and such "anchor" events are decided
    immediately without any chain-following.  Second, the greedy chain
    provably lands on every anchor exactly, so only the events inside
    "uncertain runs" — consecutive stretches whose gaps are all within
    the refractory period — remain undecided, and each run's chain
    restarts at the anchor just before it.  Those runs are resolved by
    one ``searchsorted`` over the packed ``(group, t)`` keys (needles
    restricted to the runs) plus pointer-jumping confined to the runs,
    so the chain machinery costs O(u log u) for u uncertain events
    rather than O(n log n).

    Returns a boolean keep-mask in stream order; ``None`` signals the
    packed keys would overflow int64 (caller falls back to the loop).
    """
    n = keys.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    t = t.astype(np.int64)
    ts_rel = t - int(t[0])  # t is non-decreasing, so t[0] is the minimum
    span = int(ts_rel[-1]) + refractory_us + 2
    kmax = int(keys.max())
    if (
        float(kmax + 1) * float(n) >= 2**62
        or float(kmax + 1) * float(span) >= 2**62
    ):
        return None
    # Group by key via a value sort of (key, stream index) packed into
    # one int64 — stream order (and thus time order) survives within
    # each group, including timestamp ties, and a plain sort is much
    # faster than a stable argsort.
    packed = np.sort(keys * n + np.arange(n))  # sort-ok: packed keys are unique
    ks = packed // n
    order = packed - ks * n
    ts = ts_rel[order]

    # Seeds: group heads plus anchors (gap to in-group predecessor
    # exceeds the refractory period).  Everything else sits in an
    # uncertain run and needs its chain followed.
    seed = np.empty(n, dtype=bool)
    seed[0] = True
    seed[1:] = (ks[1:] != ks[:-1]) | (ts[1:] - ts[:-1] > refractory_us)
    uncertain = np.flatnonzero(~seed)
    if uncertain.size == 0:
        return np.ones(n, dtype=bool)

    # Chains only matter on the runs and the seed immediately before
    # each (its anchor); ``uncertain - 1`` is always valid because index
    # 0 is a seed.
    sub = np.unique(np.concatenate([uncertain - 1, uncertain]))
    comp = ks * span + ts
    # First event strictly more than refractory_us later; the probe
    # stays inside the group's key range (ts + refractory_us < span), so
    # landing in another group hits that group's head — a seed — which
    # makes the mark a no-op and ends the chain.
    nxt = np.searchsorted(comp, comp[sub] + refractory_us, side="right")
    # Translate chain targets into the compact sub-domain; targets
    # outside it are seeds beyond the run (or n), i.e. chain ends.
    m = sub.size
    pos = np.searchsorted(sub, nxt)
    pos_c = np.minimum(pos, m - 1)
    inside = (pos < m) & (sub[pos_c] == nxt)
    jump = np.where(inside, pos_c, np.arange(m))
    reached = seed[sub]
    marked = int(np.count_nonzero(reached))
    while True:
        reached[jump[reached]] = True
        now = int(np.count_nonzero(reached))
        if now == marked:
            break
        marked = now
        jump = jump[jump]
    seed[sub[reached]] = True  # seeds stay True; reached run events join
    keep = np.empty(n, dtype=bool)
    keep[order] = seed
    return keep


def refractory_filter(stream: EventStream, refractory_us: int) -> EventStream:
    """Drop events that follow a previous event at the same pixel too soon.

    Models a per-pixel refractory period: after a pixel fires, further
    events from that pixel within ``refractory_us`` are discarded
    (regardless of polarity).  This is both a denoising filter and a
    component of the DVS pixel circuit.

    Vectorized via :func:`_grouped_refractory_keep`;
    :func:`refractory_filter_reference` is the loop-based oracle it is
    tested against.
    """
    if refractory_us < 0:
        raise ValueError("refractory_us must be non-negative")
    n = len(stream)
    if n == 0 or refractory_us == 0:
        return stream
    keep = _grouped_refractory_keep(stream.pixel_index(), stream.t, refractory_us)
    if keep is None:
        return refractory_filter_reference(stream, refractory_us)
    return stream[keep]


def refractory_filter_reference(
    stream: EventStream, refractory_us: int
) -> EventStream:
    """Loop-based reference oracle for :func:`refractory_filter`."""
    if refractory_us < 0:
        raise ValueError("refractory_us must be non-negative")
    n = len(stream)
    if n == 0 or refractory_us == 0:
        return stream
    pix = stream.pixel_index()
    t = stream.t
    last_fire: dict[int, int] = {}
    keep = np.zeros(n, dtype=bool)
    for i in range(n):
        key = int(pix[i])
        ti = int(t[i])
        prev = last_fire.get(key)
        if prev is None or ti - prev > refractory_us:
            keep[i] = True
            last_fire[key] = ti
    return stream[keep]


def neighbourhood_filter(
    stream: EventStream, window_us: int, radius: int = 1
) -> EventStream:
    """Background-activity filter: keep events supported by a recent neighbour.

    An event survives only if some event occurred within ``radius`` pixels
    (Chebyshev distance) during the preceding ``window_us`` microseconds.
    Isolated shot-noise events have no such support and are removed.  This
    is the classic nearest-neighbour denoise used on DVS output.

    Vectorized: events are sorted by a packed ``(pixel, stream index)``
    key, so "the latest earlier event at pixel q" is one ``searchsorted``
    per patch offset — ``(2·radius + 1)²`` array-wide lookups replace the
    per-event Python patch scan of
    :func:`neighbourhood_filter_reference` (timestamps are
    non-decreasing, so only each pixel's latest predecessor needs its
    time checked).
    """
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    n = len(stream)
    if n == 0:
        return stream
    w, h = stream.resolution.width, stream.resolution.height
    pix = stream.pixel_index()
    if float(h) * float(w) * float(n) >= 2**62:
        return neighbourhood_filter_reference(stream, window_us, radius)
    # Sort by packed (pixel, stream index); stream order survives within
    # a pixel, so skey is strictly increasing and the sorted order is
    # recoverable from the key itself.  All lookups below run in this
    # sorted domain: every probe array is then sorted too, which keeps
    # the binary searches cache-resident.
    skey = np.sort(pix * n + np.arange(n))  # sort-ok: packed keys are unique
    order = skey % n
    xs = stream.x.astype(np.int64)[order]
    ys = stream.y.astype(np.int64)[order]
    ts = stream.t.astype(np.int64)[order]
    thresh = ts - window_us

    support = np.zeros(n, dtype=bool)
    xv = {dx: (xs + dx >= 0) & (xs + dx < w) for dx in range(-radius, radius + 1)}
    yv = {dy: (ys + dy >= 0) & (ys + dy < h) for dy in range(-radius, radius + 1)}
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            # Latest event at patch pixel q strictly earlier in the
            # stream: the last key below q*n + i.  The event itself
            # (offset 0, 0) has exactly key q*n + i, so it never
            # supports itself.
            qkey = skey + (dy * w + dx) * n
            pred = np.searchsorted(skey, qkey) - 1
            pred_c = np.maximum(pred, 0)
            hit = (
                xv[dx]
                & yv[dy]
                & (pred >= 0)
                & (skey[pred_c] >= qkey - order)
                & (ts[pred_c] >= thresh)
            )
            support |= hit
    keep = np.zeros(n, dtype=bool)
    keep[order] = support
    return stream[keep]


def neighbourhood_filter_reference(
    stream: EventStream, window_us: int, radius: int = 1
) -> EventStream:
    """Loop-based reference oracle for :func:`neighbourhood_filter`."""
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    n = len(stream)
    if n == 0:
        return stream
    w, h = stream.resolution.width, stream.resolution.height
    last_seen = np.full((h, w), np.iinfo(np.int64).min, dtype=np.int64)
    keep = np.zeros(n, dtype=bool)
    xs, ys, ts = stream.x, stream.y, stream.t
    for i in range(n):
        x, y, t = int(xs[i]), int(ys[i]), int(ts[i])
        x0, x1 = max(0, x - radius), min(w, x + radius + 1)
        y0, y1 = max(0, y - radius), min(h, y + radius + 1)
        patch = last_seen[y0:y1, x0:x1]
        if np.any(patch >= t - window_us):
            keep[i] = True
        last_seen[y, x] = t
    return stream[keep]


def hot_pixel_filter(
    stream: EventStream, rate_factor: float = 10.0, min_events: int = 8
) -> EventStream:
    """Remove events from statistically over-active ("hot") pixels.

    A pixel is hot when its event count exceeds ``rate_factor`` times the
    mean count of all *active* pixels (and at least ``min_events``) —
    the standard rate-outlier criterion used to mask stuck comparators.

    Args:
        stream: input events.
        rate_factor: multiple of the mean active-pixel count that marks
            a pixel hot.
        min_events: hot pixels must additionally exceed this absolute
            count (protects short recordings).
    """
    if rate_factor <= 1.0:
        raise ValueError("rate_factor must be > 1")
    if min_events < 1:
        raise ValueError("min_events must be >= 1")
    if len(stream) == 0:
        return stream
    pix = stream.pixel_index()
    counts = np.bincount(pix, minlength=stream.resolution.num_pixels)
    active = counts[counts > 0]
    threshold = max(float(active.mean()) * rate_factor, float(min_events))
    hot = counts > threshold
    keep = ~hot[pix]
    return stream[keep]


def spatial_downsample(
    stream: EventStream, factor: int, refractory_us: int = 0
) -> EventStream:
    """Pool events into ``factor x factor`` super-pixels.

    Implements the in-sensor down-sampling mitigation for high-resolution
    sensors (Bouvier et al. 2021, cited in Section II): coordinates are
    integer-divided by ``factor``, and events landing on the same
    super-pixel with the same polarity within ``refractory_us`` merge
    into one (a pooled pixel shares one comparator, so it can emit at
    most once per refractory window).  With ``refractory_us=0`` only
    exactly simultaneous duplicates merge.

    Vectorized via :func:`_grouped_refractory_keep` (grouped on
    super-pixel and polarity); :func:`spatial_downsample_reference` is
    the loop-based oracle it is tested against.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    if refractory_us < 0:
        raise ValueError("refractory_us must be non-negative")
    if factor == 1 or len(stream) == 0:
        new_res = Resolution(
            max(1, stream.resolution.width // factor),
            max(1, stream.resolution.height // factor),
        )
        if factor == 1:
            return stream
        return EventStream.empty(new_res)
    new_res = Resolution(
        max(1, stream.resolution.width // factor),
        max(1, stream.resolution.height // factor),
    )
    x = np.minimum(stream.x // factor, new_res.width - 1).astype(np.int64)
    y = np.minimum(stream.y // factor, new_res.height - 1).astype(np.int64)
    pol_bit = (stream.p == 1).astype(np.int64)
    keys = (y * new_res.width + x) * 2 + pol_bit
    t = stream.t
    keep = _grouped_refractory_keep(keys, t, refractory_us)
    if keep is None:
        return spatial_downsample_reference(stream, factor, refractory_us)
    # Valid by construction (t[keep] stays ordered, coordinates are
    # clipped to the new resolution, polarities untouched) — skip
    # re-validation on this hot path.
    arr = np.empty(int(np.count_nonzero(keep)), dtype=EVENT_DTYPE)
    arr["t"] = t[keep]
    arr["x"] = x[keep]
    arr["y"] = y[keep]
    arr["p"] = stream.p[keep]
    return EventStream(arr, new_res, check=False)


def spatial_downsample_reference(
    stream: EventStream, factor: int, refractory_us: int = 0
) -> EventStream:
    """Loop-based reference oracle for :func:`spatial_downsample`."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    if refractory_us < 0:
        raise ValueError("refractory_us must be non-negative")
    new_res = Resolution(
        max(1, stream.resolution.width // factor),
        max(1, stream.resolution.height // factor),
    )
    if factor == 1 or len(stream) == 0:
        return stream if factor == 1 else EventStream.empty(new_res)
    x = np.minimum(stream.x // factor, new_res.width - 1).astype(np.int64)
    y = np.minimum(stream.y // factor, new_res.height - 1).astype(np.int64)
    pol_bit = (stream.p == 1).astype(np.int64)
    keys = (y * new_res.width + x) * 2 + pol_bit
    t = stream.t
    keep = np.ones(len(stream), dtype=bool)
    last_emit: dict[int, int] = {}
    for i in range(len(stream)):
        key = int(keys[i])
        ti = int(t[i])
        prev = last_emit.get(key)
        if prev is not None and ti - prev <= refractory_us:
            keep[i] = False
        else:
            last_emit[key] = ti
    return EventStream.from_arrays(
        t[keep], x[keep], y[keep], stream.p[keep], new_res
    )


def merge_polarities(stream: EventStream) -> EventStream:
    """Map every event to ON polarity, discarding sign information."""
    arr = stream.raw.copy()
    arr["p"] = 1
    return EventStream(arr, stream.resolution, check=False)


def jitter_time(
    stream: EventStream, sigma_us: float, rng: np.random.Generator
) -> EventStream:
    """Add Gaussian timestamp jitter and re-sort (data augmentation / sensor model).

    Args:
        stream: input events.
        sigma_us: standard deviation of the jitter in microseconds.
        rng: NumPy random generator (explicit for reproducibility).
    """
    if sigma_us < 0:
        raise ValueError("sigma_us must be non-negative")
    if len(stream) == 0 or sigma_us == 0:
        return stream
    t = stream.t + np.round(rng.normal(0.0, sigma_us, len(stream))).astype(np.int64)
    t = np.maximum(t, 0)
    order = np.argsort(t, kind="stable")
    return EventStream.from_arrays(
        t[order], stream.x[order], stream.y[order], stream.p[order], stream.resolution
    )


def drop_events(
    stream: EventStream, drop_probability: float, rng: np.random.Generator
) -> EventStream:
    """Randomly drop a fraction of events (augmentation / lossy-link model)."""
    if not 0.0 <= drop_probability <= 1.0:
        raise ValueError("drop_probability must be in [0, 1]")
    if len(stream) == 0 or drop_probability == 0.0:
        return stream
    keep = rng.random(len(stream)) >= drop_probability
    return stream[keep]


def event_count_map(stream: EventStream, signed: bool = False) -> np.ndarray:
    """Per-pixel event counts as an ``(H, W)`` array.

    Args:
        stream: input events.
        signed: when True, OFF events subtract instead of adding (so the
            map is the net polarity balance per pixel).
    """
    h, w = stream.resolution.height, stream.resolution.width
    weights = stream.p.astype(np.int64) if signed else None
    flat = np.bincount(
        stream.pixel_index(), weights=weights, minlength=h * w
    )
    return flat.reshape(h, w).astype(np.int64)
