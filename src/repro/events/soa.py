"""Structure-of-arrays event layout.

:class:`~repro.events.stream.EventStream` stores events as one packed
structured array — the AER wire layout.  Compute kernels want the
transposed layout: one *contiguous* column per field, so vectorised
passes (point-cloud assembly for graph building, polarity one-hots for
node features, per-field encoder scans) read sequential memory instead
of 17-byte-strided gathers.  :class:`EventSoA` is that layout, built
once per stream and cached on it (:meth:`EventStream.soa`), so the graph
build path and the encoders share a single column extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stream import EventStream, Resolution

__all__ = ["EventSoA"]


@dataclass(frozen=True)
class EventSoA:
    """Contiguous per-field columns of an event stream.

    Attributes:
        t: int64 timestamps (microseconds), C-contiguous.
        x: int32 pixel columns, C-contiguous.
        y: int32 pixel rows, C-contiguous.
        p: int8 polarities (+1/-1), C-contiguous.
        resolution: sensor resolution the coordinates refer to.
    """

    t: np.ndarray
    x: np.ndarray
    y: np.ndarray
    p: np.ndarray
    resolution: Resolution

    @classmethod
    def from_stream(cls, stream: EventStream) -> "EventSoA":
        """Extract contiguous columns from a stream's structured array."""
        ev = stream.raw
        return cls(
            t=np.ascontiguousarray(ev["t"]),
            x=np.ascontiguousarray(ev["x"]),
            y=np.ascontiguousarray(ev["y"]),
            p=np.ascontiguousarray(ev["p"]),
            resolution=stream.resolution,
        )

    def __len__(self) -> int:
        return self.t.size

    def point_cloud(self, time_scale_us: float = 1.0) -> np.ndarray:
        """``(N, 3)`` float64 point cloud ``(x, y, t/scale)``.

        Value-identical to :meth:`EventStream.as_point_cloud` (same
        conversions on the same field values), assembled from the
        contiguous columns.

        Args:
            time_scale_us: microseconds mapped to one spatial-unit of
                the temporal axis.
        """
        if time_scale_us <= 0:
            raise ValueError("time_scale_us must be positive")
        pts = np.empty((len(self), 3), dtype=np.float64)
        pts[:, 0] = self.x
        pts[:, 1] = self.y
        pts[:, 2] = self.t / time_scale_us
        return pts

    def polarity_onehot(self) -> tuple[np.ndarray, np.ndarray]:
        """``(is_on, is_off)`` float64 indicator columns (GNN node features)."""
        return (self.p == 1).astype(np.float64), (self.p == -1).astype(np.float64)
