"""Address-Event Representation (AER) protocol encoding and decoding.

Events leave the sensor over a time-multiplexed digital bus using the AER
protocol (Zamarreño-Ramos et al. 2012; Section I of the paper).  This
module implements a concrete, self-consistent AER word format plus the
encoder/decoder pair, so downstream hardware models can reason about link
bandwidth and so the whole sensor→processor path can be exercised in
tests.

Word format (little-endian bit packing inside one unsigned word):

``| timestamp delta (T bits) | polarity (1 bit) | y (Y bits) | x (X bits) |``

``X``/``Y`` are the minimum widths that cover the sensor array; ``T`` is
configurable (default 15 bits, i.e. ~32 ms of delta range at 1 us ticks).
When the inter-event time exceeds the delta range, the encoder emits one
or more *timer-wrap* words: all-ones delta with x = y = 0 and polarity 0,
each advancing time by the full delta range.  This mirrors the overflow
events used by real AER links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stream import EVENT_DTYPE, EventStream, Resolution

__all__ = ["AERCodec", "AERDecodeStats", "AERLinkStats"]

#: Default upper bound on decoded absolute timestamps: beyond this the
#: int64 microsecond clock is considered rolled over (~146 years —
#: only reachable through corrupted wrap runs or a bogus ``t_origin``).
DEFAULT_ROLLOVER_LIMIT_US = 1 << 62


def _bits_for(n: int) -> int:
    """Minimum number of bits to represent values in [0, n)."""
    if n <= 1:
        return 1
    return int(n - 1).bit_length()


@dataclass(frozen=True)
class AERDecodeStats:
    """Outcome of decoding one AER packet.

    Corrupted bus words (bit flips on the link) can decode to pixel
    addresses outside the sensor array or to absurd wrap runs; the
    decoder quarantines those into counters instead of emitting an
    invalid :class:`~repro.events.stream.EventStream`.

    Attributes:
        num_words: bus words consumed.
        num_wrap_words: words interpreted as timer wraps.
        num_events: valid events emitted.
        dropped_out_of_range: events discarded because the decoded
            ``(x, y)`` fell outside the codec resolution.
        dropped_rollover: events discarded because the reconstructed
            absolute timestamp exceeded the rollover limit.
    """

    num_words: int
    num_wrap_words: int
    num_events: int
    dropped_out_of_range: int
    dropped_rollover: int

    @property
    def num_dropped(self) -> int:
        """Total quarantined events."""
        return self.dropped_out_of_range + self.dropped_rollover


@dataclass(frozen=True)
class AERLinkStats:
    """Summary of an encoded AER packet.

    Attributes:
        num_events: camera events carried by the packet.
        num_words: total bus words including timer wraps.
        num_wrap_words: timer-wrap (overflow) words inserted.
        bits_per_word: width of one bus word.
        total_bits: total bits on the link.
        duration_us: time span covered by the packet.
    """

    num_events: int
    num_words: int
    num_wrap_words: int
    bits_per_word: int
    total_bits: int
    duration_us: int

    @property
    def bandwidth_bps(self) -> float:
        """Mean link bandwidth in bits per second (0.0 for instantaneous packets)."""
        if self.duration_us <= 0:
            return 0.0
        return self.total_bits / (self.duration_us * 1e-6)

    @property
    def events_per_second(self) -> float:
        """Mean event throughput of the packet."""
        if self.duration_us <= 0:
            return 0.0
        return self.num_events / (self.duration_us * 1e-6)


class AERCodec:
    """Encoder/decoder for the delta-timestamped AER word format.

    Args:
        resolution: sensor array size; determines address field widths.
        timestamp_bits: width of the timestamp-delta field.  The maximum
            encodable delta is ``2**timestamp_bits - 2``; the all-ones
            pattern is reserved for timer-wrap words.
    """

    def __init__(self, resolution: Resolution, timestamp_bits: int = 15) -> None:
        if timestamp_bits < 2:
            raise ValueError("timestamp_bits must be >= 2")
        self.resolution = resolution
        self.x_bits = _bits_for(resolution.width)
        self.y_bits = _bits_for(resolution.height)
        self.t_bits = timestamp_bits
        self.word_bits = self.x_bits + self.y_bits + 1 + self.t_bits
        if self.word_bits > 63:
            raise ValueError(f"word width {self.word_bits} exceeds 63 bits")
        self._x_shift = 0
        self._y_shift = self.x_bits
        self._p_shift = self.x_bits + self.y_bits
        self._t_shift = self.x_bits + self.y_bits + 1
        self._wrap_delta = (1 << self.t_bits) - 1
        self.max_delta = self._wrap_delta - 1

    # ------------------------------------------------------------------
    def encode(self, stream: EventStream, t_origin: int | None = None) -> np.ndarray:
        """Encode a stream into an array of AER words (uint64).

        Args:
            stream: the events to encode; must fit this codec's resolution.
            t_origin: reference time for the first delta.  Defaults to the
                first event's timestamp (first delta = 0).

        Returns:
            uint64 array of bus words, including any timer-wrap words.
        """
        if stream.resolution != self.resolution:
            raise ValueError(
                f"stream resolution {stream.resolution} != codec resolution {self.resolution}"
            )
        n = len(stream)
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        t = stream.t.astype(np.int64)
        origin = int(t[0]) if t_origin is None else int(t_origin)
        if origin > t[0]:
            raise ValueError("t_origin must not exceed the first event timestamp")
        deltas = np.diff(np.concatenate(([origin], t)))
        wraps = deltas // (self.max_delta + 1)
        residuals = deltas - wraps * (self.max_delta + 1)

        total_words = int(n + wraps.sum())
        words = np.empty(total_words, dtype=np.uint64)
        pol_bit = (stream.p == 1).astype(np.uint64)
        payload = (
            (residuals.astype(np.uint64) << np.uint64(self._t_shift))
            | (pol_bit << np.uint64(self._p_shift))
            | (stream.y.astype(np.uint64) << np.uint64(self._y_shift))
            | stream.x.astype(np.uint64)
        )
        wrap_word = np.uint64(self._wrap_delta) << np.uint64(self._t_shift)

        out = 0
        for i in range(n):
            w = int(wraps[i])
            if w:
                words[out : out + w] = wrap_word
                out += w
            words[out] = payload[i]
            out += 1
        assert out == total_words
        return words

    def decode(self, words: np.ndarray, t_origin: int = 0) -> EventStream:
        """Decode AER words back into an :class:`EventStream`.

        Corrupted words that decode to out-of-range coordinates or to
        timestamps past the rollover limit are silently dropped; use
        :meth:`decode_with_stats` when the drop counts matter.

        Args:
            words: uint64 word array from :meth:`encode`.
            t_origin: absolute time of the encoder's reference instant.
        """
        stream, _ = self.decode_with_stats(words, t_origin)
        return stream

    def decode_with_stats(
        self,
        words: np.ndarray,
        t_origin: int = 0,
        rollover_limit_us: int = DEFAULT_ROLLOVER_LIMIT_US,
    ) -> tuple[EventStream, AERDecodeStats]:
        """Decode AER words, quarantining corrupted ones into counters.

        The address fields are the minimum widths covering the array, so
        a bit flip can produce ``x``/``y`` values the sensor cannot emit
        (e.g. x = 700 on a 640-wide array); such events are dropped and
        counted rather than decoded into an invalid stream.  Likewise
        events whose reconstructed absolute time exceeds
        ``rollover_limit_us`` (a corrupted wrap run or bogus origin) are
        dropped as rollover victims.

        This is the zero-copy fast path: address fields are extracted
        only for surviving words and written straight into one
        :data:`~repro.events.stream.EVENT_DTYPE` buffer, and the stream is
        constructed without re-validation (the decoder itself guarantees
        ordering, coordinate range and polarity).  It produces streams
        and stats identical to :meth:`decode_with_stats_reference`, which
        is kept as the tested oracle.

        Args:
            words: uint64 word array from :meth:`encode`.
            t_origin: absolute time of the encoder's reference instant.
            rollover_limit_us: inclusive upper bound on decoded absolute
                timestamps.

        Returns:
            ``(stream, stats)`` — the surviving events plus drop counts.
        """
        words = np.asarray(words, dtype=np.uint64)
        deltas = (words >> np.uint64(self._t_shift)).astype(np.int64)
        is_wrap = deltas == self._wrap_delta
        step = np.where(is_wrap, self.max_delta + 1, deltas)
        t_abs = t_origin + np.cumsum(step)
        # Range checks on the raw (non-negative) bit fields; no int32
        # casts or polarity materialisation for words that will drop.
        x_raw = words & np.uint64((1 << self.x_bits) - 1)
        y_raw = (words >> np.uint64(self._y_shift)) & np.uint64((1 << self.y_bits) - 1)
        in_range = (x_raw < np.uint64(self.resolution.width)) & (
            y_raw < np.uint64(self.resolution.height)
        )
        in_time = (t_abs >= np.int64(min(t_origin, 0))) & (
            t_abs <= np.int64(rollover_limit_us)
        )
        is_event = ~is_wrap
        keep = is_event & in_range & in_time
        num_events = int(np.count_nonzero(keep))
        stats = AERDecodeStats(
            num_words=int(words.size),
            num_wrap_words=int(np.count_nonzero(is_wrap)),
            num_events=num_events,
            dropped_out_of_range=int(np.count_nonzero(is_event & ~in_range)),
            dropped_rollover=int(np.count_nonzero(is_event & in_range & ~in_time)),
        )
        kept = words[keep]
        arr = np.empty(num_events, dtype=EVENT_DTYPE)
        arr["t"] = t_abs[keep]
        arr["x"] = kept & np.uint64((1 << self.x_bits) - 1)
        arr["y"] = (kept >> np.uint64(self._y_shift)) & np.uint64((1 << self.y_bits) - 1)
        p_bit = (kept >> np.uint64(self._p_shift)) & np.uint64(1)
        np.subtract(
            p_bit.astype(np.int8) << 1, 1, out=arr["p"]
        )  # bit {0,1} -> polarity {-1,+1}
        stream = EventStream(arr, self.resolution, check=False)
        return stream, stats

    def decode_with_stats_reference(
        self,
        words: np.ndarray,
        t_origin: int = 0,
        rollover_limit_us: int = DEFAULT_ROLLOVER_LIMIT_US,
    ) -> tuple[EventStream, AERDecodeStats]:
        """Original full-materialisation decode — the oracle for
        :meth:`decode_with_stats` (decodes every field for every word,
        then filters and re-validates through ``from_arrays``)."""
        words = np.asarray(words, dtype=np.uint64)
        deltas = (words >> np.uint64(self._t_shift)).astype(np.int64)
        is_wrap = deltas == self._wrap_delta
        step = np.where(is_wrap, self.max_delta + 1, deltas)
        t_abs = t_origin + np.cumsum(step)
        x = (words & np.uint64((1 << self.x_bits) - 1)).astype(np.int32)
        y = ((words >> np.uint64(self._y_shift)) & np.uint64((1 << self.y_bits) - 1)).astype(
            np.int32
        )
        p_bit = (words >> np.uint64(self._p_shift)) & np.uint64(1)
        p = np.where(p_bit == 1, 1, -1).astype(np.int8)

        is_event = ~is_wrap
        in_range = self.resolution.contains(x, y)
        in_time = (t_abs >= np.int64(min(t_origin, 0))) & (
            t_abs <= np.int64(rollover_limit_us)
        )
        keep = is_event & in_range & in_time
        stats = AERDecodeStats(
            num_words=int(words.size),
            num_wrap_words=int(np.count_nonzero(is_wrap)),
            num_events=int(np.count_nonzero(keep)),
            dropped_out_of_range=int(np.count_nonzero(is_event & ~in_range)),
            dropped_rollover=int(np.count_nonzero(is_event & in_range & ~in_time)),
        )
        stream = EventStream.from_arrays(
            t_abs[keep], x[keep], y[keep], p[keep], self.resolution
        )
        return stream, stats

    def link_stats(self, stream: EventStream) -> AERLinkStats:
        """Encode and summarise the link cost of carrying ``stream``."""
        words = self.encode(stream)
        num_wraps = int(
            np.count_nonzero(
                (words >> np.uint64(self._t_shift)) == np.uint64(self._wrap_delta)
            )
        )
        return AERLinkStats(
            num_events=len(stream),
            num_words=words.size,
            num_wrap_words=num_wraps,
            bits_per_word=self.word_bits,
            total_bits=words.size * self.word_bits,
            duration_us=stream.duration,
        )
