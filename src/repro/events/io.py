"""Event-stream persistence.

Recordings are saved as ``.npz`` archives holding the structured event
array plus the sensor resolution, so datasets and experiment inputs can
be cached to disk and reloaded exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .stream import EVENT_DTYPE, EventStream, Resolution

__all__ = ["save_events", "load_events"]

_FORMAT_VERSION = 1


def save_events(stream: EventStream, path: str | Path) -> None:
    """Write a stream to ``path`` (``.npz`` appended if missing).

    Args:
        stream: the events to persist.
        path: destination file.
    """
    path = Path(path)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        events=stream.raw,
        width=np.int64(stream.resolution.width),
        height=np.int64(stream.resolution.height),
    )


def load_events(path: str | Path) -> EventStream:
    """Read a stream previously written by :func:`save_events`.

    Every way a recording on disk can be bad — truncated or corrupt
    archive, missing fields, wrong event dtype, nonsensical resolution,
    a future format version — surfaces as a single ``ValueError`` whose
    message names the offending path, so batch loaders (and the
    :mod:`repro.reliability` runner) can quarantine the file on one
    exception type instead of crashing on whatever ``np.load`` happens
    to raise.

    Args:
        path: source file.

    Raises:
        FileNotFoundError: when the file does not exist.
        ValueError: on any unreadable or malformed archive.
    """
    path = Path(path)
    try:
        archive = np.load(path)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile/pickle/OS errors from a corrupt file
        raise ValueError(f"{path} is not a readable event archive: {exc}") from exc
    with archive as data:
        for field in ("version", "events", "width", "height"):
            if field not in data:
                raise ValueError(f"{path} is not an event archive (missing {field!r})")
        try:
            version = int(data["version"])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path} has a malformed version field: {exc}") from exc
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path} has unsupported event archive version {version} "
                f"(this library reads version {_FORMAT_VERSION})"
            )
        try:
            raw = data["events"]
        except Exception as exc:  # lazy decompression hits truncation here
            raise ValueError(f"{path} has an unreadable events member: {exc}") from exc
        if raw.dtype != EVENT_DTYPE:
            try:
                events = np.asarray(raw, dtype=EVENT_DTYPE)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path} holds events with dtype {raw.dtype}, "
                    f"not convertible to {EVENT_DTYPE}: {exc}"
                ) from exc
        else:
            events = np.asarray(raw)
        try:
            resolution = Resolution(int(data["width"]), int(data["height"]))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path} has a bad resolution field: {exc}") from exc
        try:
            return EventStream(events, resolution)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path} holds an invalid event stream: {exc}") from exc
