"""Event-stream persistence.

Recordings are saved as ``.npz`` archives holding the structured event
array plus the sensor resolution, so datasets and experiment inputs can
be cached to disk and reloaded exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .stream import EVENT_DTYPE, EventStream, Resolution

__all__ = ["save_events", "load_events"]

_FORMAT_VERSION = 1


def save_events(stream: EventStream, path: str | Path) -> None:
    """Write a stream to ``path`` (``.npz`` appended if missing).

    Args:
        stream: the events to persist.
        path: destination file.
    """
    path = Path(path)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        events=stream.raw,
        width=np.int64(stream.resolution.width),
        height=np.int64(stream.resolution.height),
    )


def load_events(path: str | Path) -> EventStream:
    """Read a stream previously written by :func:`save_events`.

    Args:
        path: source file.

    Raises:
        ValueError: on missing fields or an unsupported format version.
    """
    path = Path(path)
    with np.load(path) as data:
        for field in ("version", "events", "width", "height"):
            if field not in data:
                raise ValueError(f"{path} is not an event archive (missing {field!r})")
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported event archive version {version}")
        events = np.asarray(data["events"], dtype=EVENT_DTYPE)
        resolution = Resolution(int(data["width"]), int(data["height"]))
    return EventStream(events, resolution)
