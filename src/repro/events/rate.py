"""Event-rate statistics.

Section II of the paper discusses readout throughput in GEPS (giga-events
per second) and the high instantaneous rates that high-resolution sensors
can produce under egomotion.  These helpers compute the rate profiles that
the readout model (:mod:`repro.camera.readout`) and the resolution
experiment (ABL-RES) consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .stream import EventStream

__all__ = [
    "RateProfile",
    "rate_profile",
    "peak_rate",
    "GEPS",
    "MEPS",
    "KEPS",
    "MAX_RATE_BINS",
]

#: One kilo-event per second.
KEPS = 1e3
#: One mega-event per second.
MEPS = 1e6
#: One giga-event per second (the readout scale of modern HD sensors).
GEPS = 1e9

#: Default cap on the number of bins one profile may allocate (4M bins =
#: 32 MB of int64 edges).  A single corrupted far-future timestamp (e.g.
#: an AER bit flip in the delta field) would otherwise make the span —
#: and the allocation — balloon by orders of magnitude.
MAX_RATE_BINS = 4_194_304


@dataclass(frozen=True)
class RateProfile:
    """Event rate measured over consecutive fixed bins.

    Attributes:
        bin_edges_us: bin boundary timestamps, length ``num_bins + 1``.
        counts: events per bin.
        bin_us: bin width in microseconds.
    """

    bin_edges_us: np.ndarray
    counts: np.ndarray
    bin_us: int

    @property
    def rates_eps(self) -> np.ndarray:
        """Per-bin rate in events per second."""
        return self.counts / (self.bin_us * 1e-6)

    @property
    def mean_rate_eps(self) -> float:
        """Mean rate over the profile in events per second."""
        if self.counts.size == 0:
            return 0.0
        return float(self.counts.sum() / (self.counts.size * self.bin_us * 1e-6))

    @property
    def peak_rate_eps(self) -> float:
        """Highest per-bin rate in events per second."""
        if self.counts.size == 0:
            return 0.0
        return float(self.counts.max() / (self.bin_us * 1e-6))

    @property
    def burstiness(self) -> float:
        """Peak-to-mean rate ratio (1.0 for a perfectly uniform stream)."""
        mean = self.mean_rate_eps
        if mean == 0.0:
            return 0.0
        return self.peak_rate_eps / mean


def rate_profile(
    stream: EventStream, bin_us: int = 1000, max_bins: int = MAX_RATE_BINS
) -> RateProfile:
    """Histogram the stream's event rate over fixed time bins.

    The bin count is proportional to the stream's time span, so one
    corrupted far-future timestamp would make a naive implementation
    allocate gigabytes; spans needing more than ``max_bins`` bins raise
    :class:`ValueError` (naming the span) in O(len(stream)) instead.
    Counting is a direct bincount on the per-event bin offsets — no
    O(n log n) histogram search.

    Args:
        stream: input events.
        bin_us: bin width in microseconds (default 1 ms).
        max_bins: upper bound on the number of bins the profile may
            allocate.
    """
    if bin_us <= 0:
        raise ValueError("bin_us must be positive")
    if max_bins <= 0:
        raise ValueError("max_bins must be positive")
    if len(stream) == 0:
        return RateProfile(np.array([0, bin_us], dtype=np.int64), np.zeros(1, dtype=np.int64), bin_us)
    t0 = int(stream.t[0])
    t1 = int(stream.t[-1])
    span = t1 - t0
    num_bins = max(1, span // bin_us + 1)
    if num_bins > max_bins:
        raise ValueError(
            f"stream spans {span}us, needing {num_bins} bins of {bin_us}us "
            f"(max_bins={max_bins}); a corrupted far-future timestamp is the "
            "usual cause — clean the stream or raise max_bins"
        )
    # Offsets are clipped defensively: an out-of-order (invalid) stream
    # could place events before t[0], and bincount rejects negatives.
    offsets = np.clip((stream.t.astype(np.int64) - t0) // bin_us, 0, num_bins - 1)
    counts = np.bincount(offsets, minlength=num_bins)
    edges = t0 + np.arange(num_bins + 1, dtype=np.int64) * bin_us
    return RateProfile(edges, counts.astype(np.int64), bin_us)


def peak_rate(
    stream: EventStream, bin_us: int = 1000, max_bins: int = MAX_RATE_BINS
) -> float:
    """Peak event rate (events/s) measured over ``bin_us`` bins."""
    return rate_profile(stream, bin_us, max_bins=max_bins).peak_rate_eps
