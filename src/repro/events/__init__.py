"""Event data structures and stream operations.

The substrate every paradigm shares: the :class:`EventStream` container,
the AER link codec, and generic stream transformations (windowing,
filtering, downsampling) plus rate statistics.
"""

from .aer import AERCodec, AERDecodeStats, AERLinkStats
from .io import load_events, save_events
from .ops import (
    MAX_SPLIT_WINDOWS,
    drop_events,
    hot_pixel_filter,
    event_count_map,
    jitter_time,
    merge_polarities,
    neighbourhood_filter,
    neighbourhood_filter_reference,
    refractory_filter,
    refractory_filter_reference,
    spatial_downsample,
    spatial_downsample_reference,
    split_by_count,
    split_by_time,
)
from .rate import (
    GEPS,
    KEPS,
    MAX_RATE_BINS,
    MEPS,
    RateProfile,
    peak_rate,
    rate_profile,
)
from .soa import EventSoA
from .stream import EVENT_DTYPE, EventStream, Resolution, concatenate

__all__ = [
    "EVENT_DTYPE",
    "EventSoA",
    "EventStream",
    "Resolution",
    "concatenate",
    "AERCodec",
    "AERDecodeStats",
    "AERLinkStats",
    "save_events",
    "load_events",
    "split_by_time",
    "split_by_count",
    "refractory_filter",
    "refractory_filter_reference",
    "neighbourhood_filter",
    "neighbourhood_filter_reference",
    "hot_pixel_filter",
    "spatial_downsample",
    "spatial_downsample_reference",
    "merge_polarities",
    "jitter_time",
    "drop_events",
    "event_count_map",
    "RateProfile",
    "rate_profile",
    "peak_rate",
    "GEPS",
    "MEPS",
    "KEPS",
    "MAX_RATE_BINS",
    "MAX_SPLIT_WINDOWS",
]
