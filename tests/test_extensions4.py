"""Tests for the fourth extension round: hot-pixel filtering, a deep
convolutional SNN trained end to end, and autograd fuzzing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.camera import CameraConfig, EventCamera, MovingDisk, NoiseParams
from repro.events import EventStream, Resolution, hot_pixel_filter
from repro.nn import Adam, Tensor, accuracy, cross_entropy
from repro.snn import LIFReadout, SpikingConv2d, events_to_spike_tensor

from .test_nn_tensor import numerical_grad

RES = Resolution(24, 24)


class TestHotPixelFilter:
    def _with_hot_pixels(self, seed=0):
        cam = EventCamera(
            RES,
            CameraConfig(
                noise=NoiseParams(hot_pixel_fraction=0.01, hot_pixel_rate_hz=2000.0),
                sample_period_us=1000,
                seed=seed,
            ),
        )
        disk = MovingDisk(RES, radius=3.5, x0=4, y0=12, vx_px_per_s=400)
        events, _ = cam.record(disk, 50_000)
        return events

    def test_removes_hot_pixels(self):
        events = self._with_hot_pixels()
        filtered = hot_pixel_filter(events, rate_factor=6.0)
        assert len(filtered) < len(events)
        # No remaining pixel should dominate the stream.
        counts = np.bincount(filtered.pixel_index(), minlength=RES.num_pixels)
        active = counts[counts > 0]
        assert counts.max() < 10 * active.mean()

    def test_clean_stream_untouched(self):
        cam = EventCamera(RES, CameraConfig(sample_period_us=1000, seed=1))
        events, _ = cam.record(MovingDisk(RES, radius=3.5, x0=4, y0=12, vx_px_per_s=400), 40_000)
        filtered = hot_pixel_filter(events, rate_factor=10.0)
        assert len(filtered) > 0.9 * len(events)

    def test_empty_and_validation(self):
        assert len(hot_pixel_filter(EventStream.empty(RES))) == 0
        s = EventStream.from_arrays([0], [0], [0], [1], RES)
        with pytest.raises(ValueError):
            hot_pixel_filter(s, rate_factor=1.0)
        with pytest.raises(ValueError):
            hot_pixel_filter(s, min_events=0)

    def test_min_events_protects_short_streams(self):
        # Two events at one pixel, one elsewhere: nothing exceeds min_events.
        s = EventStream.from_arrays([0, 1, 2], [3, 3, 7], [3, 3, 7], [1, 1, 1], RES)
        assert hot_pixel_filter(s, rate_factor=1.5, min_events=8) == s


class TestDeepConvSNN:
    def test_conv_snn_trains_on_two_shapes(self):
        """End-to-end surrogate-gradient training of a conv SNN (the
        Spiking-YOLO-style architecture family, ref [35])."""
        from repro.datasets import make_shapes_dataset, train_test_split
        from repro.nn import functional as F

        ds = make_shapes_dataset(
            num_per_class=8, resolution=RES, duration_us=40_000, seed=2
        )
        # Binary task: bar (0) vs disk (2).
        keep = [i for i, s in enumerate(ds) if s.label in (0, 2)]
        ds = ds.subset(keep)

        def encode(stream):
            return events_to_spike_tensor(stream, num_steps=8, pool=2)

        x = np.stack([encode(s.stream) for s in ds], axis=1)  # (T, N, 2, 12, 12)
        y = (ds.labels() == 2).astype(np.int64)

        rng = np.random.default_rng(0)
        conv = SpikingConv2d(2, 4, 3, stride=2, padding=1, rng=rng)
        readout = LIFReadout(4 * 6 * 6, 2, rng=rng)

        def forward(batch):
            spikes = conv(Tensor(batch))  # (T, N, 4, 6, 6)
            t, n = spikes.shape[0], spikes.shape[1]
            flat = spikes.reshape(t, n, -1)
            return readout(flat)

        params = conv.parameters() + readout.parameters()
        opt = Adam(params, lr=5e-3)
        for _ in range(25):
            opt.zero_grad()
            loss = cross_entropy(forward(x), y)
            loss.backward()
            opt.step()
        acc = accuracy(forward(x).data, y)
        assert acc >= 0.85  # separates the two shapes

    def test_conv_snn_spike_sparsity(self):
        rng = np.random.default_rng(1)
        conv = SpikingConv2d(2, 4, 3, padding=1, rng=rng)
        x = Tensor((rng.random((6, 2, 2, 12, 12)) < 0.1).astype(np.float64))
        out = conv(x)
        # Spiking activations stay sparse on sparse input.
        assert out.data.mean() < 0.5


class TestAutogradFuzzing:
    # All ops keep |values| bounded so arbitrary compositions stay finite
    # (a raw exp chain overflows by design, not by bug).
    UNARY_OPS = [
        lambda t: t.relu(),
        lambda t: t.tanh(),
        lambda t: t.sigmoid(),
        lambda t: (t * 0.3).exp() - 1.0,
        lambda t: t * 0.5 + 0.1,
        lambda t: (t * t) * 0.3,
        lambda t: t.reshape(-1).reshape(3, 4),
        lambda t: t.T.T,
    ]

    @given(
        st.lists(st.integers(0, 7), min_size=1, max_size=4),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_op_chains_match_numerical_gradient(self, ops, seed):
        rng = np.random.default_rng(seed)
        arr = rng.uniform(-1.5, 1.5, (3, 4))

        def apply_chain(t):
            for op_idx in ops:
                t = self.UNARY_OPS[op_idx](t)
            return t

        x = Tensor(arr.copy(), requires_grad=True)
        apply_chain(x).sum().backward()

        def f(a):
            return apply_chain(Tensor(a)).sum().item()

        num = numerical_grad(f, arr.copy(), eps=1e-6)
        # relu kinks can make finite differences disagree locally; use a
        # tolerant comparison that still catches systematic errors.
        np.testing.assert_allclose(x.grad, num, rtol=1e-3, atol=1e-4)
