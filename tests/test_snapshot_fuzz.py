"""Fuzzed checkpoint round-trip and rejection tests.

Three snapshot/restore contracts guard serving state:

* ``async-gnn/v1`` — :class:`repro.gnn.AsyncEventGNN` engine
  checkpoints;
* ``incremental-session/v1`` — :class:`repro.core.GNNIncrementalSession`
  session checkpoints (wrapping the engine's);
* ``serving-model/v1`` — :class:`repro.serving.TenantModel` stand-in
  session state.

Each must (a) round-trip losslessly, (b) reject unknown or missing
format tags with a ``ValueError`` that *names the expected version*,
and (c) reject truncated or type-corrupted payloads instead of
restoring garbage — fuzzed here by deleting and mangling every
checkpoint key in turn.
"""

import numpy as np
import pytest

from repro.core import GNNIncrementalSession
from repro.core.incremental import SESSION_SNAPSHOT_FORMAT
from repro.events import EventStream, Resolution
from repro.gnn import AsyncEventGNN, EventGNNClassifier
from repro.gnn.async_network import SNAPSHOT_FORMAT
from repro.serving import TenantModel
from repro.serving.chaos import MODEL_SNAPSHOT_FORMAT

RES = Resolution(24, 24)


def make_stream(n=60, seed=0, t0=0):
    rng = np.random.default_rng(seed)
    t = t0 + np.cumsum(rng.integers(100, 1500, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, RES.width, n),
        rng.integers(0, RES.height, n),
        rng.choice([-1, 1], n),
        RES,
    )


def make_engine(seed=1):
    model = EventGNNClassifier(
        3, hidden=8, in_features=2, rng=np.random.default_rng(seed)
    )
    return AsyncEventGNN(
        model,
        radius=4.0,
        time_scale_us=2000.0,
        window_us=1_000_000,
        max_degree=8,
    )


def warmed_engine():
    engine = make_engine()
    engine.process_stream(make_stream(40, seed=2))
    return engine


def warmed_session():
    session = GNNIncrementalSession(make_engine())
    stream = make_stream(40, seed=3)
    for i in range(len(stream)):
        session.process_event(
            int(stream.x[i]), int(stream.y[i]), int(stream.t[i]), int(stream.p[i])
        )
    return session


CASES = [
    pytest.param(warmed_engine, SNAPSHOT_FORMAT, id="async-gnn"),
    pytest.param(warmed_session, SESSION_SNAPSHOT_FORMAT, id="session"),
    pytest.param(
        lambda: TenantModel("GNN", seed=4), MODEL_SNAPSHOT_FORMAT, id="serving-model"
    ),
]


@pytest.mark.parametrize("factory,fmt", CASES)
class TestCheckpointContract:
    def test_snapshot_carries_its_version(self, factory, fmt):
        assert factory().snapshot()["format"] == fmt

    def test_round_trip_restores_state(self, factory, fmt):
        obj = factory()
        snap = obj.snapshot()
        obj.restore(snap)
        assert obj.snapshot()["format"] == fmt

    def test_non_dict_payload_rejected(self, factory, fmt):
        obj = factory()
        for payload in (None, 17, "checkpoint", [1, 2, 3]):
            with pytest.raises(ValueError):
                obj.restore(payload)

    def test_unknown_version_names_the_expected_one(self, factory, fmt):
        obj = factory()
        snap = dict(obj.snapshot())
        snap["format"] = "flux-capacitor/v9"
        with pytest.raises(ValueError, match=fmt):
            obj.restore(snap)

    def test_missing_version_names_the_expected_one(self, factory, fmt):
        obj = factory()
        snap = dict(obj.snapshot())
        del snap["format"]
        with pytest.raises(ValueError, match=fmt):
            obj.restore(snap)

    def test_truncated_payloads_rejected_key_by_key(self, factory, fmt):
        """Deleting any non-format key must raise, never half-restore."""
        obj = factory()
        keys = [k for k in obj.snapshot() if k != "format"]
        assert keys
        for key in keys:
            snap = dict(obj.snapshot())
            del snap[key]
            try:
                obj.restore(snap)
            except ValueError:
                continue
            # A key whose absence restores cleanly must be one with a
            # safe structural default (e.g. an optional mode flag) —
            # the object must still round-trip afterwards.
            obj.restore(obj.snapshot())

    def test_type_mangled_payloads_rejected(self, factory, fmt):
        """Replacing array/int fields with junk must raise ValueError."""
        obj = factory()
        reference = obj.snapshot()
        mangled_any = False
        for key, value in reference.items():
            if key == "format":
                continue
            snap = dict(reference)
            snap[key] = object()
            try:
                obj.restore(snap)
            except ValueError:
                mangled_any = True
            except Exception as exc:  # noqa: BLE001 - the contract is ValueError
                pytest.fail(f"{key}: raised {type(exc).__name__}, not ValueError")
        assert mangled_any

    def test_fuzzed_deletions_never_corrupt_the_survivor(self, factory, fmt):
        """Random multi-key truncations: reject, then keep working."""
        obj = factory()
        clean = obj.snapshot()
        rng = np.random.default_rng(0)
        keys = [k for k in clean if k != "format"]
        for _ in range(20):
            snap = dict(clean)
            for key in rng.choice(keys, size=rng.integers(1, len(keys)), replace=False):
                del snap[str(key)]
            try:
                obj.restore(snap)
            except ValueError:
                pass
            # Whatever happened, the object must still accept its own
            # clean checkpoint — failed restores must not wedge it.
            obj.restore(clean)


class TestEngineRoundTripEquivalence:
    def test_restore_replays_to_identical_scores(self):
        """Checkpoint → divergent tail → restore → same tail: bit-equal."""
        engine = warmed_engine()
        snap = engine.snapshot()
        tail = make_stream(30, seed=5, t0=int(snap["last_t_us"]) + 1)
        first = engine.process_stream(tail)[-1].scores
        engine.restore(snap)
        second = engine.process_stream(tail)[-1].scores
        assert np.array_equal(np.asarray(first.data), np.asarray(second.data))

    def test_shape_mismatch_rejected(self):
        engine = warmed_engine()
        snap = dict(engine.snapshot())
        snap["running_max"] = np.zeros(3)
        with pytest.raises(ValueError, match="running_max"):
            engine.restore(snap)


class TestTenantModelRoundTrip:
    def test_corrupt_then_restore_heals_the_output(self):
        model = TenantModel("GNN", seed=9)
        stream = make_stream(20, seed=6)
        clean_snapshot = model.snapshot()
        healthy = model(stream)
        model._x2[:] = np.nan
        assert np.isnan(model(stream))
        model.restore(clean_snapshot)
        assert model(stream) == healthy

    def test_inconsistent_shapes_rejected(self):
        model = TenantModel("GNN", seed=9)
        snap = model.snapshot()
        snap["running_max"] = np.zeros(snap["x2"].shape[1] + 1)
        with pytest.raises(ValueError, match="inconsistent"):
            model.restore(snap)
