"""Tests for graph conv layers, pooling and the GNN classifier."""

import numpy as np
import pytest

from repro.events import EventStream, Resolution
from repro.gnn import (
    EdgeConv,
    EventGNNClassifier,
    EventGraph,
    GCNConv,
    GraphBuildConfig,
    SplineConvLite,
    build_event_graph,
    evaluate_gnn,
    fit_gnn,
    global_max_pool,
    global_mean_pool,
    scatter_max,
    scatter_mean,
    scatter_sum,
    voxel_pool_graph,
)
from repro.datasets import make_shapes_dataset, train_test_split
from repro.nn import Adam, Tensor, cross_entropy

from .test_nn_tensor import numerical_grad


def toy_graph(n=12, seed=0, radius=6.0):
    from repro.gnn import radius_graph_kdtree

    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 10, (n, 3))
    pts = pts[np.argsort(pts[:, 2], kind="stable")]
    edges = radius_graph_kdtree(pts, radius)
    feats = rng.standard_normal((n, 2))
    return EventGraph(pts, feats, edges, 1000.0)


class TestScatterOps:
    def test_scatter_sum_values(self):
        v = Tensor(np.array([[1.0], [2.0], [3.0]]), requires_grad=True)
        out = scatter_sum(v, np.array([0, 0, 1]), 2)
        assert out.data.tolist() == [[3.0], [3.0]]
        out.sum().backward()
        np.testing.assert_allclose(v.grad, np.ones((3, 1)))

    def test_scatter_sum_gradcheck(self):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal((5, 3))
        idx = np.array([0, 1, 0, 2, 1])
        t = Tensor(arr.copy(), requires_grad=True)
        (scatter_sum(t, idx, 3) * Tensor(rng.standard_normal((3, 3)))).sum().backward()
        # numerical check
        w = rng.standard_normal((3, 3))

        def f(x):
            out = np.zeros((3, 3))
            np.add.at(out, idx, x)
            return (out * w).sum()

        t2 = Tensor(arr.copy(), requires_grad=True)
        (scatter_sum(t2, idx, 3) * Tensor(w)).sum().backward()
        num = numerical_grad(lambda x: f(x), arr.copy())
        np.testing.assert_allclose(t2.grad, num, atol=1e-6)

    def test_scatter_mean(self):
        v = Tensor(np.array([[2.0], [4.0], [5.0]]), requires_grad=True)
        out = scatter_mean(v, np.array([0, 0, 1]), 3)
        assert out.data[0, 0] == 3.0
        assert out.data[1, 0] == 5.0
        assert out.data[2, 0] == 0.0  # empty bin

    def test_scatter_max_values_and_grad(self):
        v = Tensor(np.array([[1.0], [5.0], [3.0]]), requires_grad=True)
        out = scatter_max(v, np.array([0, 0, 1]), 2)
        assert out.data.tolist() == [[5.0], [3.0]]
        out.sum().backward()
        assert v.grad.tolist() == [[0.0], [1.0], [1.0]]

    def test_scatter_max_empty_bin_zero(self):
        v = Tensor(np.array([[1.0]]))
        out = scatter_max(v, np.array([1]), 3)
        assert out.data[0, 0] == 0.0
        assert out.data[2, 0] == 0.0

    def test_scatter_max_tie_single_winner(self):
        v = Tensor(np.array([[2.0], [2.0]]), requires_grad=True)
        out = scatter_max(v, np.array([0, 0]), 1)
        out.sum().backward()
        assert v.grad.sum() == 1.0  # exactly one winner gets the gradient

    def test_scatter_validation(self):
        v = Tensor(np.zeros((3, 1)))
        with pytest.raises(ValueError):
            scatter_sum(v, np.zeros(2, dtype=np.int64), 2)
        with pytest.raises(ValueError):
            scatter_max(v, np.zeros(2, dtype=np.int64), 2)


class TestGraphConvLayers:
    def test_gcn_shapes_and_grad(self):
        g = toy_graph()
        layer = GCNConv(2, 4, rng=np.random.default_rng(0))
        out = layer(Tensor(g.features), g.edges)
        assert out.shape == (12, 4)
        out.sum().backward()
        assert layer.linear.weight.grad is not None

    def test_gcn_isolated_node_keeps_self(self):
        # A graph with no edges: GCN reduces to a per-node linear map.
        g = EventGraph(np.zeros((3, 3)), np.eye(3, 2), np.zeros((0, 2)), 1.0)
        layer = GCNConv(2, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(g.features), g.edges)
        expected = layer.linear(Tensor(g.features))
        np.testing.assert_allclose(out.data, expected.data)

    @pytest.mark.parametrize("agg", ["max", "mean"])
    def test_edgeconv_shapes(self, agg):
        g = toy_graph()
        layer = EdgeConv(2, 5, aggregation=agg, rng=np.random.default_rng(0))
        out = layer(Tensor(g.features), g.edges, g.positions)
        assert out.shape == (12, 5)

    def test_edgeconv_no_edges(self):
        g = EventGraph(np.zeros((4, 3)), np.ones((4, 2)), np.zeros((0, 2)), 1.0)
        layer = EdgeConv(2, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(g.features), g.edges, g.positions)
        assert out.shape == (4, 3)

    def test_edgeconv_uses_positions(self):
        g = toy_graph(seed=1)
        layer = EdgeConv(2, 4, rng=np.random.default_rng(0))
        out1 = layer(Tensor(g.features), g.edges, g.positions)
        out2 = layer(Tensor(g.features), g.edges, g.positions * 2.0)
        assert not np.allclose(out1.data, out2.data)

    def test_edgeconv_validation(self):
        with pytest.raises(ValueError):
            EdgeConv(2, 3, aggregation="sum")

    def test_spline_shapes_and_grad(self):
        g = toy_graph()
        layer = SplineConvLite(2, 4, num_basis=4, rng=np.random.default_rng(0))
        out = layer(Tensor(g.features), g.edges, g.positions)
        assert out.shape == (12, 4)
        out.sum().backward()
        assert layer.weights.grad is not None

    def test_spline_basis_properties(self):
        layer = SplineConvLite(2, 3, num_basis=5, offset_scale=2.0)
        b = layer.basis(np.zeros((4, 3)))
        assert b.shape == (4, 5)
        assert np.all(b > 0) and np.all(b <= 1)

    def test_spline_timing_sensitivity(self):
        # Changing only the temporal offsets must change the output:
        # this is the "precise timing deep into the network" property.
        g = toy_graph(seed=2)
        layer = SplineConvLite(2, 4, rng=np.random.default_rng(0))
        out1 = layer(Tensor(g.features), g.edges, g.positions)
        shifted = g.positions.copy()
        shifted[:, 2] *= 3.0
        out2 = layer(Tensor(g.features), g.edges, shifted)
        assert not np.allclose(out1.data, out2.data)

    def test_spline_validation(self):
        with pytest.raises(ValueError):
            SplineConvLite(2, 3, num_basis=0)
        with pytest.raises(ValueError):
            SplineConvLite(2, 3, offset_scale=0)


class TestPooling:
    def test_global_pools(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 1.0]]), requires_grad=True)
        assert global_mean_pool(x).data.tolist() == [[2.0, 3.0]]
        assert global_max_pool(x).data.tolist() == [[3.0, 5.0]]
        with pytest.raises(ValueError):
            global_mean_pool(Tensor(np.zeros(3)))
        with pytest.raises(ValueError):
            global_max_pool(Tensor(np.zeros(3)))

    def test_voxel_pool_merges(self):
        pts = np.array([[0.1, 0.1, 0.0], [0.2, 0.3, 0.1], [5.0, 5.0, 5.0]])
        feats = np.array([[1.0], [3.0], [10.0]])
        g = EventGraph(pts, feats, np.array([[0, 2], [1, 2]]), 1.0)
        pooled, cluster = voxel_pool_graph(g, (1.0, 1.0, 1.0))
        assert pooled.num_nodes == 2
        assert cluster[0] == cluster[1]
        # Mean feature of the merged voxel.
        merged = pooled.features[cluster[0]]
        assert merged[0] == pytest.approx(2.0)
        # Parallel edges dedupe to one.
        assert pooled.num_edges == 1

    def test_voxel_pool_validation(self):
        g = toy_graph()
        with pytest.raises(ValueError):
            voxel_pool_graph(g, (0.0, 1.0, 1.0))


class TestClassifier:
    def test_forward_and_opcount(self):
        g = toy_graph()
        model = EventGNNClassifier(3, hidden=8, rng=np.random.default_rng(0))
        out = model(g)
        assert out.shape == (1, 3)
        assert model.operation_count(g) > 0

    def test_opcount_scales_with_edges(self):
        model = EventGNNClassifier(3, hidden=8)
        small = toy_graph(radius=2.0)
        big = toy_graph(radius=20.0)
        assert model.operation_count(big) > model.operation_count(small)

    def test_conv_variants(self):
        g = toy_graph()
        for conv in ("edge", "spline"):
            model = EventGNNClassifier(2, hidden=4, conv=conv)
            assert model(g).shape == (1, 2)
        with pytest.raises(ValueError):
            EventGNNClassifier(2, conv="bogus")

    def test_build_event_graph_subsamples(self):
        rng = np.random.default_rng(0)
        n = 1000
        t = np.cumsum(rng.integers(1, 100, n))
        s = EventStream.from_arrays(
            t, rng.integers(0, 16, n), rng.integers(0, 16, n), rng.choice([-1, 1], n),
            Resolution(16, 16),
        )
        cfg = GraphBuildConfig(max_events=100)
        g = build_event_graph(s, cfg)
        assert g.num_nodes <= 100
        assert g.is_causal()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GraphBuildConfig(radius=0)
        with pytest.raises(ValueError):
            GraphBuildConfig(max_events=0)

    def test_learns_shapes_dataset(self):
        ds = make_shapes_dataset(
            num_per_class=6, resolution=Resolution(24, 24), duration_us=40_000, seed=0
        )
        train, test = train_test_split(ds, 0.3, np.random.default_rng(0))
        cfg = GraphBuildConfig(radius=4.0, time_scale_us=5000.0, max_events=120)
        model = EventGNNClassifier(3, hidden=12, rng=np.random.default_rng(1))
        result = fit_gnn(model, train, cfg, epochs=14, lr=5e-3)
        assert result.losses[-1] < result.losses[0]
        assert result.train_accuracy >= 0.7
        assert evaluate_gnn(model, test, cfg) >= 0.5
