"""The compact graph representation and the GraphRepresentation API.

Pins down the contracts the compact format is allowed to rely on:

* structural invariants (property-based): the in-degree cap is never
  exceeded, every edge points forward in time, and the quantization
  round-trip error is bounded by half a grid step;
* dense/compact equivalence: identical capped causal edge sets, bitwise
  identical positions/features/logits with quantization disabled, and
  prediction agreement within tolerance at 8 bits;
* the builder: per-event and batch insertion produce the same graph,
  and bounded mode holds flat state while matching the unbounded
  builder on the live window;
* the API redesign: the representation registry, the consolidated
  ``radius_graph`` entry point, and the config plumbing through
  ``GraphBuildConfig`` / ``GNNConfig``;
* the hw + Table-I wiring: :class:`GraphMemoryWorkload`,
  :meth:`GNNAccelerator.memory_report`, hierarchy multi-tenancy and
  :func:`attach_graph_memory`.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream, Resolution
from repro.gnn import (
    CompactEventGraph,
    CompactGraphBuilder,
    CompactGraphRepresentation,
    DenseGraphRepresentation,
    EventGNNClassifier,
    EventGraph,
    GraphBuildConfig,
    GraphRepresentation,
    RADIUS_GRAPH_METHODS,
    REPRESENTATIONS,
    dequantize_unit,
    get_representation,
    quantize_offsets,
    quantize_unit,
    radius_graph,
    radius_graph_kdtree,
    radius_graph_naive,
    radius_graph_spatial_hash,
)
from repro.gnn.compact import NBR_EMPTY, NBR_OVERFLOW
from repro.gnn.models import build_event_graph
from repro.nn import no_grad


def make_stream(n, width=48, height=48, max_dt=30, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


def config(n=600, bits=8, representation="compact", **kw):
    return GraphBuildConfig(
        radius=4.0,
        time_scale_us=5000.0,
        max_events=n,
        max_degree=8,
        causal=True,
        representation=representation,
        quantization_bits=bits,
        **kw,
    )


# ----------------------------------------------------------------------
# Structural invariants (property-based)
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=400),
    seed=st.integers(min_value=0, max_value=50),
    max_degree=st.integers(min_value=1, max_value=12),
)
def test_in_degree_cap_never_exceeded(n, seed, max_degree):
    stream = make_stream(n, seed=seed)
    cfg = GraphBuildConfig(
        radius=4.0,
        time_scale_us=5000.0,
        max_events=n,
        max_degree=max_degree,
        causal=True,
        representation="compact",
    )
    graph = build_event_graph(stream, cfg)
    assert graph.in_degrees().max(initial=0) <= max_degree


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=400),
    seed=st.integers(min_value=0, max_value=50),
)
def test_edges_respect_time_direction(n, seed):
    stream = make_stream(n, seed=seed)
    graph = build_event_graph(stream, config(n))
    assert graph.is_causal()
    e = graph.edges
    if e.size:
        # Stronger than is_causal: node ids are time-ordered, so every
        # compact edge must strictly increase in id.
        assert np.all(e[:, 0] < e[:, 1])


@settings(max_examples=50, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_quantize_unit_round_trip_bounded(bits, seed):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0, 64)
    err = np.abs(dequantize_unit(quantize_unit(values, bits), bits) - values)
    assert err.max() <= 0.5 / ((1 << bits) - 1) + 1e-12
    # Exact endpoints survive any width (polarity one-hots are lossless).
    ends = np.array([0.0, 1.0])
    assert np.array_equal(
        dequantize_unit(quantize_unit(ends, bits), bits), ends
    )


@settings(max_examples=50, deadline=None)
@given(
    bits=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=1000),
    radius=st.floats(min_value=0.5, max_value=16.0),
)
def test_quantize_offsets_round_trip_bounded(bits, seed, radius):
    rng = np.random.default_rng(seed)
    offsets = rng.uniform(-radius, radius, (32, 3))
    q, scale = quantize_offsets(offsets, radius, bits)
    err = np.abs(q.astype(np.float64) * scale - offsets)
    assert err.max() <= scale / 2 + 1e-12
    # The grid is symmetric: negation is exact on the grid.
    q_neg, _ = quantize_offsets(-offsets, radius, bits)
    assert np.array_equal(q_neg, -q)


# ----------------------------------------------------------------------
# Dense / compact equivalence
# ----------------------------------------------------------------------
def test_bit_identity_when_quantization_disabled():
    stream = make_stream(800, seed=3)
    dense = build_event_graph(stream, config(800, representation="dense"))
    compact = build_event_graph(stream, config(800, bits=0))
    assert np.array_equal(dense.edges, compact.edges)
    assert np.array_equal(dense.positions, compact.positions)
    assert np.array_equal(dense.features, compact.features)
    assert np.array_equal(dense.edge_attributes(), compact.edge_attributes())
    model = EventGNNClassifier(4, hidden=12, rng=np.random.default_rng(1))
    with no_grad():
        assert np.array_equal(model(dense).data, model(compact).data)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_dense_vs_compact_prediction_agreement(seed):
    stream = make_stream(500, seed=seed)
    dense = build_event_graph(stream, config(500, representation="dense"))
    compact = build_event_graph(stream, config(500, bits=8))
    assert np.array_equal(dense.edges, compact.edges)
    model = EventGNNClassifier(4, hidden=12, rng=np.random.default_rng(0))
    with no_grad():
        a = model(dense).data
        b = model(compact).data
    # 8-bit quantization tolerance: logits within 5% of the dense
    # dynamic range (documented bound of the accuracy-delta benchmark).
    tol = 0.05 * max(np.abs(a).max(), 1e-6)
    assert np.abs(a - b).max() <= tol


def test_include_position_features_match():
    stream = make_stream(300, seed=7)
    dense = build_event_graph(
        stream, config(300, representation="dense", include_position=True)
    )
    compact = build_event_graph(stream, config(300, bits=0, include_position=True))
    assert np.array_equal(dense.features, compact.features)
    assert dense.features.shape[1] == 4


def test_to_event_graph_round_trip():
    stream = make_stream(200, seed=2)
    compact = build_event_graph(stream, config(200, bits=0))
    dense = compact.to_event_graph()
    assert isinstance(dense, EventGraph)
    assert np.array_equal(dense.edges, compact.edges)
    assert np.array_equal(dense.positions, compact.positions)


def test_compact_is_smaller():
    stream = make_stream(2000, seed=0)
    dense = build_event_graph(stream, config(2000, representation="dense"))
    compact = build_event_graph(stream, config(2000))
    assert compact.nbytes() * 4 <= dense.nbytes()


def test_quantized_edge_attributes_require_quantization():
    stream = make_stream(100, seed=0)
    lossless = build_event_graph(stream, config(100, bits=0))
    with pytest.raises(ValueError, match="quantization is disabled"):
        lossless.quantized_edge_attributes()
    assert lossless.conv_rel_pos() is None
    quant = build_event_graph(stream, config(100, bits=8))
    q, scale = quant.quantized_edge_attributes()
    assert q.shape == (quant.num_edges, 3)
    rel = quant.conv_rel_pos()
    assert np.allclose(rel, q.astype(np.float64) * scale)


# ----------------------------------------------------------------------
# Builder: per-event vs batch, bounded mode
# ----------------------------------------------------------------------
def builder(**kw):
    return CompactGraphBuilder(
        radius=4.0, time_scale_us=5000.0, max_degree=8, **kw
    )


def test_per_event_matches_batch_builder():
    stream = make_stream(600, seed=5)
    soa = stream.soa()
    b1 = builder(quantization_bits=0)
    b1.extend(soa.x, soa.y, soa.t, soa.p)
    b2 = builder(quantization_bits=0)
    for i in range(len(stream)):
        b2.append(int(soa.x[i]), int(soa.y[i]), int(soa.t[i]), int(soa.p[i]))
    g1, g2 = b1.graph(), b2.graph()
    assert np.array_equal(g1.nbr, g2.nbr)
    assert np.array_equal(g1.edges, g2.edges)
    assert np.array_equal(g1.positions, g2.positions)
    assert np.array_equal(g1.features, g2.features)


def test_builder_matches_batch_pipeline():
    stream = make_stream(600, seed=9)
    batch = build_event_graph(stream, config(600, bits=0))
    soa = stream.soa()
    b = builder(quantization_bits=0)
    b.extend(soa.x, soa.y, soa.t, soa.p)
    incremental = b.graph()
    assert np.array_equal(batch.edges, incremental.edges)
    assert np.array_equal(batch.positions, incremental.positions)


def test_bounded_builder_state_is_flat():
    stream = make_stream(20_000, seed=1)
    soa = stream.soa()
    b = builder(max_live_nodes=256)
    sizes = []
    for i in range(len(stream)):
        b.append(int(soa.x[i]), int(soa.y[i]), int(soa.t[i]), int(soa.p[i]))
        if i % 1000 == 999:
            sizes.append(b.state_bytes())
    # The edge log capacity-doubles until its recycle threshold engages;
    # after warm-up the state must be exactly flat.
    tail = sizes[len(sizes) // 2 :]
    assert len(set(tail)) == 1
    assert b.num_live_nodes <= 256
    graph = b.graph()
    assert graph.num_nodes == b.num_live_nodes
    assert graph.is_causal()
    assert graph.in_degrees().max(initial=0) <= 8
    assert graph.ov_src.size == 0  # all live deltas fit uint16


def test_bounded_builder_matches_unbounded_on_live_window():
    stream = make_stream(1_500, seed=4)
    soa = stream.soa()
    bounded = builder(max_live_nodes=300, quantization_bits=0)
    unbounded = builder(quantization_bits=0)
    for i in range(len(stream)):
        args = (int(soa.x[i]), int(soa.y[i]), int(soa.t[i]), int(soa.p[i]))
        bounded.append(*args)
        unbounded.append(*args)
    gb = bounded.graph()
    gu = unbounded.graph()
    lo = bounded.live_start
    assert np.array_equal(gb.positions, gu.positions[lo:])
    # Every unbounded edge with both endpoints live is also selected by
    # the bounded builder (whose candidate set is a subset, so anything
    # the full nearest-first selection kept stays in its top-k).  The
    # bounded graph may hold MORE window edges: slots freed by evicted
    # candidates are filled with more recent ones.
    eu = gu.edges
    keep = (eu[:, 0] >= lo) & (eu[:, 1] >= lo)
    window_edges = {tuple(e) for e in eu[keep].tolist()}
    bounded_edges = {tuple(e) for e in (gb.edges + lo).tolist()}
    assert window_edges <= bounded_edges
    assert gb.in_degrees().max(initial=0) <= 8
    assert gb.is_causal()


def test_builder_rejects_bad_config():
    with pytest.raises(ValueError, match="max_live_nodes"):
        builder(max_live_nodes=NBR_OVERFLOW)
    with pytest.raises(ValueError, match="quantization_bits"):
        builder(quantization_bits=1)
    with pytest.raises(ValueError, match="resolution"):
        builder(include_position=True)


def test_from_columns_validation():
    with pytest.raises(ValueError, match="uint16"):
        CompactEventGraph.from_columns(
            np.array([70000]),
            np.array([0]),
            np.array([0]),
            np.array([1]),
            np.zeros((0, 2)),
            time_scale_us=1000.0,
            radius=3.0,
            max_degree=4,
        )
    with pytest.raises(ValueError, match="causal"):
        CompactEventGraph.from_columns(
            np.array([1, 2]),
            np.array([1, 2]),
            np.array([0, 10]),
            np.array([1, -1]),
            np.array([[1, 0]]),
            time_scale_us=1000.0,
            radius=3.0,
            max_degree=4,
        )


def test_overflow_deltas_round_trip():
    # Force a delta >= 0xFFFF through from_columns' packing.
    n = 70_000
    x = np.zeros(n, dtype=np.int64)
    y = np.zeros(n, dtype=np.int64)
    t = np.arange(n, dtype=np.int64)
    p = np.ones(n, dtype=np.int64)
    edges = np.array([[0, n - 1], [n - 2, n - 1]])
    g = CompactEventGraph.from_columns(
        x, y, t, p, edges,
        time_scale_us=1000.0, radius=3.0, max_degree=4, quantization_bits=8,
    )
    assert g.ov_src.size == 1
    assert np.array_equal(g.edges, edges)
    assert (g.nbr[n - 1] == NBR_OVERFLOW).sum() == 1
    assert g.num_edges == 2


# ----------------------------------------------------------------------
# Representation registry + config plumbing
# ----------------------------------------------------------------------
def test_representation_registry():
    assert set(REPRESENTATIONS) == {"dense", "compact"}
    assert isinstance(get_representation("dense"), DenseGraphRepresentation)
    assert isinstance(get_representation("compact"), CompactGraphRepresentation)
    for rep in REPRESENTATIONS.values():
        assert isinstance(rep, GraphRepresentation)
    with pytest.raises(ValueError, match="unknown graph representation"):
        get_representation("sparse")


def test_config_validation():
    with pytest.raises(ValueError, match="representation"):
        GraphBuildConfig(representation="ragged")
    with pytest.raises(ValueError, match="quantization_bits"):
        GraphBuildConfig(quantization_bits=1)
    with pytest.raises(ValueError, match="causal"):
        GraphBuildConfig(representation="compact", causal=False)


def test_gnn_config_threads_representation():
    from repro.core.presets import GNNConfig

    cfg = GNNConfig(representation="compact", quantization_bits=4)
    graph_cfg = cfg.graph_config()
    assert graph_cfg.representation == "compact"
    assert graph_cfg.quantization_bits == 4
    assert GNNConfig().graph_config().representation == "dense"


def test_graph_representation_tags():
    stream = make_stream(100, seed=0)
    assert build_event_graph(stream, config(100, representation="dense")).representation == "dense"
    assert build_event_graph(stream, config(100)).representation == "compact"


# ----------------------------------------------------------------------
# Consolidated radius_graph entry point
# ----------------------------------------------------------------------
def test_radius_graph_dispatcher_equivalence():
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 20, (300, 3))
    reference = radius_graph_naive(points, 3.0)
    assert np.array_equal(radius_graph(points, 3.0, method="naive"), reference)
    assert np.array_equal(radius_graph(points, 3.0, method="kdtree"), reference)
    assert np.array_equal(
        radius_graph(points, 3.0, method="spatial_hash"), reference
    )
    # Default method is the fast path.
    assert np.array_equal(radius_graph(points, 3.0), reference)
    assert set(RADIUS_GRAPH_METHODS) == {"naive", "kdtree", "spatial_hash"}


def test_radius_graph_unknown_method():
    with pytest.raises(ValueError, match="method"):
        radius_graph(np.zeros((4, 3)), 1.0, method="brute")


def test_deprecated_aliases_still_work():
    rng = np.random.default_rng(1)
    points = rng.uniform(0, 10, (100, 3))
    assert np.array_equal(
        radius_graph_kdtree(points, 2.0),
        radius_graph_spatial_hash(points, 2.0),
    )


# ----------------------------------------------------------------------
# Async engine export
# ----------------------------------------------------------------------
def test_async_engine_exports_compact_graph():
    from repro.gnn import AsyncEventGNN

    stream = make_stream(300, seed=6)
    model = EventGNNClassifier(4, hidden=12, rng=np.random.default_rng(0))
    engine = AsyncEventGNN(
        model,
        radius=4.0,
        time_scale_us=5000.0,
        window_us=1 << 62,
        max_degree=8,
    )
    for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
        engine.process_event(int(x), int(y), int(t), int(p))
    compact = engine.built_compact_graph(quantization_bits=0)
    batch = build_event_graph(stream, config(300, bits=0))
    assert np.array_equal(compact.edges, batch.edges)
    assert np.array_equal(compact.positions, batch.positions)
    assert np.array_equal(compact.features, batch.features)

    bounded = AsyncEventGNN(
        model,
        radius=4.0,
        time_scale_us=5000.0,
        window_us=1 << 62,
        max_degree=8,
        max_live_nodes=64,
    )
    with pytest.raises(RuntimeError, match="bounded"):
        bounded.built_compact_graph()


# ----------------------------------------------------------------------
# hw cost models + Table-I wiring
# ----------------------------------------------------------------------
def test_graph_memory_workload_from_graph():
    from repro.hw import GraphMemoryWorkload

    stream = make_stream(500, seed=0)
    dense = build_event_graph(stream, config(500, representation="dense"))
    compact = build_event_graph(stream, config(500))
    wd = GraphMemoryWorkload.from_graph(dense)
    wc = GraphMemoryWorkload.from_graph(compact)
    assert wd.representation == "dense" and wd.word_bits == 64
    assert wc.representation == "compact" and wc.word_bits == 8
    assert wc.max_degree == 8
    assert wd.bytes_per_event > 4 * wc.bytes_per_event
    with pytest.raises(ValueError, match="representation"):
        GraphMemoryWorkload("ragged", 10, 10, 100)


def test_memory_report_scores_compact_cheaper():
    from repro.hw import GNNAccelerator, GNNWorkload, GraphMemoryWorkload

    stream = make_stream(800, seed=0)
    dense = build_event_graph(stream, config(800, representation="dense"))
    compact = build_event_graph(stream, config(800))
    accel = GNNAccelerator(features_in_dram=False)
    workload = GNNWorkload(
        num_nodes=dense.num_nodes,
        num_edges=dense.num_edges,
        feature_dim=12,
    )
    rd = accel.memory_report(workload, GraphMemoryWorkload.from_graph(dense))
    rc = accel.memory_report(workload, GraphMemoryWorkload.from_graph(compact))
    assert rc["footprint_bytes"] * 4 <= rd["footprint_bytes"]
    assert rc["traffic_bytes_per_pass"] < rd["traffic_bytes_per_pass"]
    assert rc["streams_resident"] >= rd["streams_resident"]
    assert rc["energy_pj"] <= rd["energy_pj"]
    for key in ("level", "bytes_per_event", "traffic_bytes_per_event"):
        assert key in rd and key in rc


def test_streams_per_level():
    from repro.hw import default_hierarchy

    h = default_hierarchy()
    streams = h.streams_per_level(7000)
    assert streams["sram-8KB"] == 1
    assert streams["sram-1MB"] > streams["sram-8KB"]
    with pytest.raises(ValueError, match="positive"):
        h.streams_per_level(0)


def test_attach_graph_memory():
    from repro.core.comparison import ComparisonResult, attach_graph_memory
    from repro.core.metrics import PipelineMetrics
    from repro.core.ratings import Rating

    nan = float("nan")
    metrics = {
        "SNN": PipelineMetrics(paradigm="SNN"),
        "CNN": PipelineMetrics(paradigm="CNN"),
        "GNN": PipelineMetrics(
            paradigm="GNN", graph_memory_dense=120.0, graph_memory_compact=28.0
        ),
    }
    result = ComparisonResult(metrics=metrics)
    attach_graph_memory(result)
    assert [a.key for a in result.extra_axes] == [
        "graph_memory_dense",
        "graph_memory_compact",
    ]
    assert result.rating("graph_memory_dense", "SNN") is Rating.UNKNOWN
    assert result.rating("graph_memory_compact", "CNN") is Rating.UNKNOWN
    assert result.rating("graph_memory_compact", "GNN") is not Rating.UNKNOWN
    assert metrics["GNN"].graph_memory_dense == 120.0
    # Idempotent: re-attaching must not duplicate the axes.
    attach_graph_memory(
        result,
        dense={"SNN": nan, "CNN": nan, "GNN": 120.0},
        compact={"SNN": nan, "CNN": nan, "GNN": 28.0},
    )
    assert len(result.extra_axes) == 2
    with pytest.raises(ValueError, match="exactly"):
        attach_graph_memory(result, dense={"GNN": 1.0})


def test_dense_nbytes_accounting():
    stream = make_stream(100, seed=0)
    dense = build_event_graph(stream, config(100, representation="dense"))
    expected = (
        dense.positions.nbytes + dense.features.nbytes + dense.edges.nbytes
    )
    assert dense.nbytes() == expected
    assert dense.in_degrees().sum() == dense.num_edges
