"""Tests for repro.events.stream."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EVENT_DTYPE, EventStream, Resolution, concatenate


def make_stream(n=10, width=32, height=24, seed=0):
    rng = np.random.default_rng(seed)
    t = np.sort(rng.integers(0, 100_000, n))
    x = rng.integers(0, width, n)
    y = rng.integers(0, height, n)
    p = rng.choice([-1, 1], n)
    return EventStream.from_arrays(t, x, y, p, Resolution(width, height))


class TestResolution:
    def test_num_pixels(self):
        assert Resolution(640, 480).num_pixels == 307200

    def test_invalid(self):
        with pytest.raises(ValueError):
            Resolution(0, 10)
        with pytest.raises(ValueError):
            Resolution(10, -1)

    def test_contains(self):
        res = Resolution(4, 3)
        x = np.array([0, 3, 4, -1])
        y = np.array([0, 2, 0, 0])
        assert res.contains(x, y).tolist() == [True, True, False, False]

    def test_str(self):
        assert str(Resolution(128, 128)) == "128x128"


class TestEventStreamConstruction:
    def test_from_arrays_roundtrip(self):
        s = EventStream.from_arrays([1, 2, 3], [0, 1, 2], [0, 0, 1], [1, -1, 1], Resolution(4, 4))
        assert len(s) == 3
        assert s.t.tolist() == [1, 2, 3]
        assert s.p.dtype == np.int8

    def test_empty(self):
        s = EventStream.empty(Resolution(8, 8))
        assert len(s) == 0
        assert s.duration == 0
        assert s.event_rate() == 0.0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            EventStream.from_arrays([3, 1], [0, 0], [0, 0], [1, 1], Resolution(4, 4))

    def test_sort_flag(self):
        s = EventStream.from_arrays(
            [3, 1], [0, 1], [0, 0], [1, -1], Resolution(4, 4), sort=True
        )
        assert s.t.tolist() == [1, 3]
        assert s.x.tolist() == [1, 0]

    def test_rejects_out_of_bounds(self):
        with pytest.raises(ValueError, match="out of bounds"):
            EventStream.from_arrays([1], [5], [0], [1], Resolution(4, 4))

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError, match="polarity"):
            EventStream.from_arrays([1], [0], [0], [0], Resolution(4, 4))

    def test_rejects_2d(self):
        arr = np.zeros((2, 2), dtype=EVENT_DTYPE)
        with pytest.raises(ValueError, match="1-D"):
            EventStream(arr, Resolution(4, 4))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal lengths"):
            EventStream.from_arrays([1, 2], [0], [0], [1], Resolution(4, 4))

    def test_equal_timestamps_allowed(self):
        s = EventStream.from_arrays([5, 5, 5], [0, 1, 2], [0, 0, 0], [1, 1, -1], Resolution(4, 4))
        assert len(s) == 3


class TestEventStreamAccessors:
    def test_duration_and_rate(self):
        s = EventStream.from_arrays(
            [0, 500_000, 1_000_000], [0, 1, 2], [0, 0, 0], [1, 1, 1], Resolution(4, 4)
        )
        assert s.duration == 1_000_000
        assert s.event_rate() == pytest.approx(3.0)

    def test_polarity_counts(self):
        s = EventStream.from_arrays([0, 1, 2], [0, 0, 0], [0, 0, 0], [1, -1, 1], Resolution(2, 2))
        assert s.polarity_counts() == (2, 1)

    def test_sparsity(self):
        s = EventStream.from_arrays([0, 1], [0, 0], [0, 0], [1, 1], Resolution(2, 2))
        assert s.sparsity() == pytest.approx(0.75)
        assert EventStream.empty(Resolution(2, 2)).sparsity() == 1.0

    def test_getitem_slice(self):
        s = make_stream(20)
        sub = s[5:10]
        assert len(sub) == 5
        assert isinstance(sub, EventStream)

    def test_getitem_scalar_returns_stream(self):
        s = make_stream(5)
        sub = s[2]
        assert isinstance(sub, EventStream)
        assert len(sub) == 1

    def test_getitem_mask(self):
        s = make_stream(20)
        sub = s[s.p == 1]
        assert np.all(sub.p == 1)

    def test_equality(self):
        a = make_stream(5, seed=1)
        b = make_stream(5, seed=1)
        c = make_stream(5, seed=2)
        assert a == b
        assert a != c

    def test_repr(self):
        assert "EventStream" in repr(make_stream(3))
        assert "n=0" in repr(EventStream.empty(Resolution(2, 2)))

    def test_pixel_index(self):
        s = EventStream.from_arrays([0, 1], [1, 3], [0, 2], [1, 1], Resolution(4, 4))
        assert s.pixel_index().tolist() == [1, 11]


class TestEventStreamTransforms:
    def test_time_window(self):
        s = EventStream.from_arrays(
            [0, 10, 20, 30], [0, 1, 2, 3], [0, 0, 0, 0], [1, 1, 1, 1], Resolution(4, 4)
        )
        w = s.time_window(10, 30)
        assert w.t.tolist() == [10, 20]

    def test_time_window_invalid(self):
        with pytest.raises(ValueError):
            make_stream().time_window(10, 5)

    def test_crop(self):
        s = EventStream.from_arrays(
            [0, 1, 2], [0, 2, 3], [0, 2, 3], [1, 1, 1], Resolution(4, 4)
        )
        c = s.crop(2, 2, 4, 4)
        assert len(c) == 2
        assert c.x.tolist() == [0, 1]
        assert c.resolution == Resolution(2, 2)

    def test_crop_invalid(self):
        with pytest.raises(ValueError):
            make_stream().crop(3, 0, 2, 4)

    def test_shift_and_rezero(self):
        s = EventStream.from_arrays([100, 200], [0, 0], [0, 0], [1, 1], Resolution(2, 2))
        assert s.shift_time(50).t.tolist() == [150, 250]
        assert s.rezero_time().t.tolist() == [0, 100]

    def test_rezero_empty(self):
        s = EventStream.empty(Resolution(2, 2))
        assert len(s.rezero_time()) == 0

    def test_with_polarity(self):
        s = make_stream(50)
        on = s.with_polarity(1)
        off = s.with_polarity(-1)
        assert len(on) + len(off) == len(s)
        with pytest.raises(ValueError):
            s.with_polarity(0)

    def test_flip_polarity(self):
        s = make_stream(10)
        assert np.array_equal(s.flip_polarity().p, -s.p)

    def test_flip_x_involution(self):
        s = make_stream(10)
        assert s.flip_x().flip_x() == s

    def test_flip_y_involution(self):
        s = make_stream(10)
        assert s.flip_y().flip_y() == s

    def test_point_cloud(self):
        s = EventStream.from_arrays([0, 1000], [1, 2], [3, 4], [1, -1], Resolution(8, 8))
        pts = s.as_point_cloud(time_scale_us=1000.0)
        assert pts.shape == (2, 3)
        assert pts[1].tolist() == [2.0, 4.0, 1.0]
        with pytest.raises(ValueError):
            s.as_point_cloud(0)


class TestConcatenate:
    def test_basic(self):
        a = EventStream.from_arrays([0, 1], [0, 0], [0, 0], [1, 1], Resolution(2, 2))
        b = EventStream.from_arrays([2, 3], [1, 1], [1, 1], [-1, -1], Resolution(2, 2))
        c = concatenate([a, b])
        assert len(c) == 4
        assert c.t.tolist() == [0, 1, 2, 3]

    def test_mixed_resolution_rejected(self):
        a = EventStream.empty(Resolution(2, 2))
        b = EventStream.empty(Resolution(4, 4))
        with pytest.raises(ValueError, match="mixed"):
            concatenate([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_out_of_order_rejected(self):
        a = EventStream.from_arrays([10], [0], [0], [1], Resolution(2, 2))
        b = EventStream.from_arrays([5], [0], [0], [1], Resolution(2, 2))
        with pytest.raises(ValueError):
            concatenate([a, b])

    def test_out_of_order_rejected_despite_boundary_only_check(self):
        # concatenate only inspects cross-stream boundary timestamps
        # (each input validated its own ordering at construction); a
        # disordered boundary anywhere in a longer list must still
        # raise, even when the neighbouring boundaries are fine.
        res = Resolution(2, 2)
        a = EventStream.from_arrays([0, 10], [0, 0], [0, 0], [1, 1], res)
        b = EventStream.from_arrays([20, 30], [0, 0], [0, 0], [1, 1], res)
        c = EventStream.from_arrays([25, 40], [0, 0], [0, 0], [1, 1], res)
        with pytest.raises(ValueError, match="mutually time-ordered"):
            concatenate([a, b, c])

    def test_boundary_tie_allowed(self):
        # Equal timestamps at a boundary keep the merged stream
        # non-decreasing, so they are legal.
        res = Resolution(2, 2)
        a = EventStream.from_arrays([0, 5], [0, 0], [0, 0], [1, 1], res)
        b = EventStream.from_arrays([5, 9], [1, 1], [1, 1], [-1, -1], res)
        c = concatenate([a, b])
        assert c.t.tolist() == [0, 5, 5, 9]

    def test_empty_streams_skipped_at_boundaries(self):
        res = Resolution(2, 2)
        a = EventStream.from_arrays([0, 5], [0, 0], [0, 0], [1, 1], res)
        e = EventStream.empty(res)
        b = EventStream.from_arrays([7], [1], [1], [1], res)
        c = concatenate([e, a, e, b, e])
        assert c.t.tolist() == [0, 5, 7]


@st.composite
def stream_strategy(draw, max_events=50):
    width = draw(st.integers(2, 16))
    height = draw(st.integers(2, 16))
    n = draw(st.integers(0, max_events))
    t = sorted(draw(st.lists(st.integers(0, 10_000), min_size=n, max_size=n)))
    x = draw(st.lists(st.integers(0, width - 1), min_size=n, max_size=n))
    y = draw(st.lists(st.integers(0, height - 1), min_size=n, max_size=n))
    p = draw(st.lists(st.sampled_from([-1, 1]), min_size=n, max_size=n))
    return EventStream.from_arrays(t, x, y, p, Resolution(width, height))


class TestStreamProperties:
    @given(stream_strategy())
    @settings(max_examples=50, deadline=None)
    def test_flip_x_preserves_everything_but_x(self, s):
        f = s.flip_x()
        assert np.array_equal(f.t, s.t)
        assert np.array_equal(f.y, s.y)
        assert np.array_equal(f.p, s.p)
        assert f.flip_x() == s

    @given(stream_strategy())
    @settings(max_examples=50, deadline=None)
    def test_polarity_split_partitions(self, s):
        on, off = s.with_polarity(1), s.with_polarity(-1)
        assert len(on) + len(off) == len(s)

    @given(stream_strategy(), st.integers(1, 5000))
    @settings(max_examples=50, deadline=None)
    def test_time_window_subset(self, s, w):
        if len(s) == 0:
            return
        sub = s.time_window(int(s.t[0]), int(s.t[0]) + w)
        assert len(sub) <= len(s)
        if len(sub):
            assert sub.t[0] >= s.t[0]
            assert sub.t[-1] < s.t[0] + w

    @given(stream_strategy())
    @settings(max_examples=50, deadline=None)
    def test_sparsity_bounds(self, s):
        assert 0.0 <= s.sparsity() <= 1.0
