"""Tests for extended substrates: persistence, DAVIS dual pixels,
plane-fit optical flow and the hierarchical GNN."""

import numpy as np
import pytest

from repro.analysis import FlowEstimate, plane_fit_flow
from repro.camera import CameraConfig, DualPixelCamera, EventCamera, MovingBar, MovingDisk
from repro.events import EventStream, Resolution, load_events, save_events
from repro.gnn import GraphBuildConfig, HierarchicalEventGNN, build_event_graph

RES = Resolution(32, 32)


def make_stream(n=50, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, 500, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, RES.width, n),
        rng.integers(0, RES.height, n),
        rng.choice([-1, 1], n),
        RES,
    )


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        s = make_stream(200, seed=1)
        path = tmp_path / "rec.npz"
        save_events(s, path)
        assert load_events(path) == s

    def test_empty_roundtrip(self, tmp_path):
        s = EventStream.empty(RES)
        path = tmp_path / "empty.npz"
        save_events(s, path)
        loaded = load_events(path)
        assert len(loaded) == 0
        assert loaded.resolution == RES

    def test_rejects_non_archive(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(ValueError, match="missing"):
            load_events(path)

    def test_rejects_wrong_version(self, tmp_path):
        s = make_stream(5)
        path = tmp_path / "v.npz"
        np.savez(
            path, version=np.int64(99), events=s.raw, width=np.int64(32), height=np.int64(32)
        )
        with pytest.raises(ValueError, match="version"):
            load_events(path)


class TestDualPixelCamera:
    def test_synchronised_modalities(self):
        cam = DualPixelCamera(RES, CameraConfig(sample_period_us=500), frame_period_us=10_000)
        rec = cam.record(MovingDisk(RES, radius=4, x0=4, y0=16, vx_px_per_s=600), 40_000)
        assert len(rec.events) > 0
        assert rec.num_frames == 5  # t = 0, 10, 20, 30, 40 ms
        assert rec.frames.shape == (5, 32, 32)
        assert np.all(rec.frames > 0)

    def test_frames_track_the_stimulus(self):
        cam = DualPixelCamera(RES, frame_period_us=20_000)
        stim = MovingDisk(RES, radius=4, x0=4, y0=16, vx_px_per_s=600)
        rec = cam.record(stim, 40_000)
        # The bright centroid moves right between first and last frame.
        def centroid_x(frame):
            w = frame - frame.min()
            xs = np.arange(frame.shape[1])
            return float((w.sum(axis=0) * xs).sum() / w.sum())
        assert centroid_x(rec.frames[-1]) > centroid_x(rec.frames[0]) + 5

    def test_frame_nearest_and_intervals(self):
        cam = DualPixelCamera(RES, frame_period_us=10_000)
        rec = cam.record(MovingBar(RES, speed_px_per_s=800), 30_000)
        np.testing.assert_array_equal(rec.frame_nearest(11_000), rec.frames[1])
        ev = rec.events_between_frames(0)
        if len(ev):
            assert ev.t.min() >= 0 and ev.t.max() < 10_000
        with pytest.raises(ValueError):
            rec.events_between_frames(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            DualPixelCamera(RES, frame_period_us=0)
        cam = DualPixelCamera(RES)
        with pytest.raises(ValueError):
            cam.record(MovingBar(Resolution(8, 8)), 1000)


class TestPlaneFitFlow:
    def _bar_stream(self, speed=800.0, seed=0):
        cam = EventCamera(RES, CameraConfig(sample_period_us=250, seed=seed))
        bar = MovingBar(RES, speed_px_per_s=speed, bar_width=3.0, x0=0.0)
        events, _ = cam.record(bar, 35_000)
        return events

    FLOW_KW = dict(radius=3, dt_max_us=20_000, polarity=1, refractory_us=8000)

    def test_recovers_bar_speed(self):
        speed = 800.0
        events = self._bar_stream(speed)
        flow = plane_fit_flow(events, **self.FLOW_KW)
        assert flow.num_estimates > 30
        vx, vy = flow.median_velocity()
        assert vx == pytest.approx(speed, rel=0.15)
        assert abs(vy) < 0.2 * speed

    def test_direction_sign(self):
        rightward = self._bar_stream(600.0)
        # Mirror the stream: motion reverses.
        leftward = rightward.flip_x()
        vx_r, _ = plane_fit_flow(rightward, **self.FLOW_KW).median_velocity()
        vx_l, _ = plane_fit_flow(leftward, **self.FLOW_KW).median_velocity()
        assert vx_r > 0 > vx_l

    def test_faster_motion_larger_flow(self):
        slow = plane_fit_flow(self._bar_stream(400.0), **self.FLOW_KW).median_velocity()[0]
        fast = plane_fit_flow(self._bar_stream(1200.0), **self.FLOW_KW).median_velocity()[0]
        assert fast > 1.5 * slow

    def test_empty_and_validation(self):
        empty = plane_fit_flow(EventStream.empty(RES))
        assert empty.num_estimates == 0
        assert empty.median_velocity() == (0.0, 0.0)
        s = make_stream(10)
        with pytest.raises(ValueError):
            plane_fit_flow(s, radius=0)
        with pytest.raises(ValueError):
            plane_fit_flow(s, dt_max_us=0)
        with pytest.raises(ValueError):
            plane_fit_flow(s, min_points=2)
        with pytest.raises(ValueError):
            plane_fit_flow(s, max_events=0)

    def test_random_noise_yields_few_estimates(self):
        noise = make_stream(300, seed=5)
        flow = plane_fit_flow(noise, radius=2, dt_max_us=5_000, min_points=8)
        # Uncorrelated events rarely support a consistent local plane.
        assert flow.num_estimates < 100


class TestHierarchicalGNN:
    def _graph(self, seed=0):
        stream = make_stream(150, seed=seed)
        return build_event_graph(
            stream, GraphBuildConfig(radius=4.0, time_scale_us=2000.0, max_events=150)
        )

    def test_forward_shape(self):
        model = HierarchicalEventGNN(3, hidden=8, rng=np.random.default_rng(0))
        out = model(self._graph())
        assert out.shape == (1, 3)

    def test_pooling_reduces_nodes(self):
        model = HierarchicalEventGNN(3, hidden=8, pool_cell=(6.0, 6.0, 10.0))
        summary = model.pooling_summary(self._graph())
        assert summary["nodes_pooled"] < summary["nodes_in"]

    def test_gradients_flow_through_pooling(self):
        model = HierarchicalEventGNN(2, hidden=8, rng=np.random.default_rng(1))
        out = model(self._graph(seed=2))
        out.sum().backward()
        assert model.conv1.self_mlp.weight.grad is not None
        assert np.abs(model.conv1.self_mlp.weight.grad).max() > 0

    def test_learns_shapes(self):
        from repro.datasets import make_shapes_dataset, train_test_split
        from repro.nn import Adam, cross_entropy, no_grad

        ds = make_shapes_dataset(
            num_per_class=6, resolution=Resolution(24, 24), duration_us=40_000, seed=0
        )
        train, test = train_test_split(ds, 0.3, np.random.default_rng(0))
        cfg = GraphBuildConfig(radius=4.0, time_scale_us=5000.0, max_events=120)
        model = HierarchicalEventGNN(
            3, hidden=12, pool_cell=(4.0, 4.0, 6.0), rng=np.random.default_rng(1)
        )
        graphs = [build_event_graph(s.stream, cfg) for s in train]
        labels = train.labels()
        opt = Adam(model.parameters(), lr=5e-3)
        rng = np.random.default_rng(0)
        for _ in range(16):
            for i in rng.permutation(len(graphs)):
                opt.zero_grad()
                cross_entropy(model(graphs[i]), labels[i : i + 1]).backward()
                opt.step()
        correct = 0
        with no_grad():
            for s in test:
                g = build_event_graph(s.stream, cfg)
                correct += int(model(g).data.argmax()) == s.label
        assert correct / len(test) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalEventGNN(0)
        with pytest.raises(ValueError):
            HierarchicalEventGNN(2, pool_cell=(0.0, 1.0, 1.0))
