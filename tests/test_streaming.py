"""Unit and property tests of the streaming building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream, Resolution
from repro.streaming import (
    BoundedWindowQueue,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    ShedController,
    ShedLedger,
    ShedPolicy,
    ShedTier,
    StreamReport,
    WindowTicket,
    is_bad_output,
    spatial_shed,
    subsample_events,
)


def make_stream(n, width=32, height=32, max_dt=500, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(0, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        b = CircuitBreaker("s", BreakerPolicy(failure_threshold=3))
        for w in range(2):
            b.record_failure(w)
        assert b.state is BreakerState.CLOSED
        b.record_failure(2)
        assert b.state is BreakerState.OPEN
        assert [t.to_state for t in b.transitions] == [BreakerState.OPEN]

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("s", BreakerPolicy(failure_threshold=2))
        b.record_failure(0)
        b.record_success(1)
        b.record_failure(2)
        assert b.state is BreakerState.CLOSED

    def test_cooldown_then_half_open_then_close(self):
        policy = BreakerPolicy(
            failure_threshold=1,
            cooldown_calls=3,
            probe_probability=1.0,
            success_threshold=2,
        )
        b = CircuitBreaker("s", policy)
        b.record_failure(0)
        assert b.state is BreakerState.OPEN
        # Cooldown: the first two calls are refused outright.
        assert not b.allow(1)
        assert not b.allow(2)
        # The third exhausts the cooldown and is admitted as a probe.
        assert b.allow(3)
        assert b.state is BreakerState.HALF_OPEN
        b.record_success(3)
        assert b.state is BreakerState.HALF_OPEN
        assert b.allow(4)
        b.record_success(4)
        assert b.state is BreakerState.CLOSED
        assert b.recovered

    def test_probe_failure_reopens(self):
        policy = BreakerPolicy(
            failure_threshold=1, cooldown_calls=1, probe_probability=1.0
        )
        b = CircuitBreaker("s", policy)
        b.record_failure(0)
        assert b.allow(1)  # straight to half-open probe
        b.record_failure(1)
        assert b.state is BreakerState.OPEN
        assert not b.recovered

    def test_probe_lottery_is_deterministic(self):
        policy = BreakerPolicy(failure_threshold=1, cooldown_calls=1)
        decisions = []
        for _ in range(2):
            b = CircuitBreaker("stage", policy, seed=7)
            b.record_failure(0)
            decisions.append([b.allow(w) for w in range(1, 40)])
        assert decisions[0] == decisions[1]

    def test_distinct_stages_get_distinct_probe_streams(self):
        policy = BreakerPolicy(failure_threshold=1, cooldown_calls=1)
        seqs = {}
        for name in ("a", "b"):
            b = CircuitBreaker(name, policy, seed=0)
            b.record_failure(0)
            seqs[name] = tuple(b.allow(w) for w in range(1, 60))
        assert seqs["a"] != seqs["b"]

    def test_nan_trip_counted(self):
        b = CircuitBreaker("s", BreakerPolicy(failure_threshold=1))
        b.record_failure(0, nan_output=True)
        assert b.nan_trips == 1
        assert "non-finite" in b.transitions[0].reason

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(probe_probability=0.0)


class TestIsBadOutput:
    @pytest.mark.parametrize(
        "value,bad",
        [
            (None, True),
            (float("nan"), True),
            (float("inf"), True),
            (np.float64("nan"), True),
            (np.array([1.0, float("nan")]), True),
            (0, False),
            (3, False),
            (1.5, False),
            (np.array([1, 2]), False),
            (np.array([1.0, 2.0]), False),
            ("label", False),
        ],
    )
    def test_cases(self, value, bad):
        assert is_bad_output(value) is bad


# ----------------------------------------------------------------------
# Shedding transforms: every tier yields a valid, time-ordered substream
# ----------------------------------------------------------------------
class TestShedTransforms:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(0, 400),
        keep=st.floats(0.0, 1.0),
        seed=st.integers(0, 20),
    )
    def test_subsample_is_valid_ordered_substream(self, n, keep, seed):
        s = make_stream(n, seed=seed)
        out = subsample_events(s, keep)
        assert out.validate() == []
        assert len(out) <= len(s)
        assert np.all(np.diff(out.t) >= 0)
        # Every kept event exists in the source (it is a true substream).
        if len(out):
            source = {tuple(e) for e in s.raw.tolist()}
            assert all(tuple(e) in source for e in out.raw.tolist())

    def test_subsample_keep_fraction_proportional(self):
        s = make_stream(1000)
        out = subsample_events(s, 0.25)
        assert len(out) == pytest.approx(250, abs=2)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(0, 400),
        factor=st.integers(2, 8),
        refractory=st.integers(0, 2000),
        seed=st.integers(0, 20),
    )
    def test_spatial_shed_is_valid_and_keeps_resolution(
        self, n, factor, refractory, seed
    ):
        s = make_stream(n, seed=seed)
        out = spatial_shed(s, factor, refractory)
        assert out.resolution == s.resolution
        assert out.validate() == []
        assert len(out) <= len(s)
        assert np.all(np.diff(out.t) >= 0)
        # Re-projected coordinates sit on super-pixel corners.
        assert np.all(out.x % factor == 0)
        assert np.all(out.y % factor == 0)

    def test_spatial_shed_rejects_factor_one(self):
        with pytest.raises(ValueError):
            spatial_shed(make_stream(10), 1)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 300), seed=st.integers(0, 10))
    def test_controller_apply_every_tier_valid_and_accounted(self, n, seed):
        s = make_stream(n, seed=seed)
        for tier in (ShedTier.SUBSAMPLE, ShedTier.DOWNSAMPLE, ShedTier.DROP_OLDEST):
            controller = ShedController(
                ShedPolicy(), target_events_per_window=max(1.0, n / 4)
            )
            controller.tier = tier
            ledger = ShedLedger()
            out, applied = controller.apply(s, ledger)
            assert applied is tier
            assert out.validate() == []
            assert np.all(np.diff(out.t) >= 0)
            assert ledger.total_events_shed == len(s) - len(out)


# ----------------------------------------------------------------------
# Shed controller escalation
# ----------------------------------------------------------------------
class TestShedController:
    def test_escalates_one_tier_per_crossing(self):
        c = ShedController(ShedPolicy(high_watermark=4, low_watermark=1))
        assert c.update(4, 1.0, 0) is ShedTier.SUBSAMPLE
        assert c.update(5, 1.0, 1) is ShedTier.DOWNSAMPLE
        assert c.update(6, 1.0, 2) is ShedTier.DROP_OLDEST
        assert c.update(9, 1.0, 3) is ShedTier.DROP_OLDEST  # saturates

    def test_deescalates_below_low_watermark(self):
        c = ShedController(ShedPolicy(high_watermark=4, low_watermark=1))
        c.update(4, 1.0, 0)
        c.update(5, 1.0, 1)
        assert c.update(1, 1.0, 2) is ShedTier.SUBSAMPLE
        assert c.update(0, 1.0, 3) is ShedTier.NONE

    def test_holds_tier_between_watermarks(self):
        c = ShedController(ShedPolicy(high_watermark=4, low_watermark=1))
        c.update(4, 1.0, 0)
        assert c.update(2, 1.0, 1) is ShedTier.SUBSAMPLE

    def test_burstiness_preempts(self):
        c = ShedController(ShedPolicy(high_watermark=8, low_watermark=2))
        # Depth below high watermark, but the window itself is bursty.
        assert c.update(3, 10.0, 0) is ShedTier.SUBSAMPLE
        assert c.transitions[0].reason.startswith("burstiness")

    def test_transitions_logged(self):
        c = ShedController(ShedPolicy(high_watermark=4, low_watermark=1))
        c.update(4, 1.0, 5)
        c.update(0, 1.0, 6)
        assert [(t.from_tier, t.to_tier) for t in c.transitions] == [
            ("NONE", "SUBSAMPLE"),
            ("SUBSAMPLE", "NONE"),
        ]

    def test_ledger_rejects_added_events(self):
        ledger = ShedLedger()
        with pytest.raises(ValueError):
            ledger.record(ShedTier.SUBSAMPLE, 5, 6)


# ----------------------------------------------------------------------
# Bounded queue
# ----------------------------------------------------------------------
class TestBoundedWindowQueue:
    def _ticket(self, i):
        return WindowTicket(i, float(i), float(i) + 100.0, make_stream(5), 5)

    def test_evicts_oldest_when_full(self):
        q = BoundedWindowQueue(2)
        assert q.push(self._ticket(0)) is None
        assert q.push(self._ticket(1)) is None
        evicted = q.push(self._ticket(2))
        assert evicted is not None and evicted.index == 0
        assert [t.index for t in list(q._items)] == [1, 2]
        assert q.max_depth == 2

    def test_fifo_order(self):
        q = BoundedWindowQueue(4)
        for i in range(3):
            q.push(self._ticket(i))
        assert q.peek().index == 0
        assert q.pop().index == 0
        assert q.drop_oldest().index == 1
        assert q.depth == 1

    def test_drop_oldest_on_empty(self):
        assert BoundedWindowQueue(1).drop_oldest() is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedWindowQueue(0)


# ----------------------------------------------------------------------
# Report accounting
# ----------------------------------------------------------------------
class TestStreamReport:
    def test_balanced_report_has_no_errors(self):
        r = StreamReport(window_us=1000, offered=4, processed=2, expired=1, failed=1)
        r.offered_events = 40
        r.processed_events = 20
        r.expired_events = 10
        r.failed_events = 5
        r.ledger.record(ShedTier.SUBSAMPLE, 10, 5)
        r.served_by = {"primary": 2}
        assert r.accounting_errors() == []
        assert r.delivered_fraction == 0.5
        assert r.shed_event_fraction == pytest.approx(5 / 40)

    def test_unbalanced_windows_detected(self):
        r = StreamReport(window_us=1000, offered=3, processed=1)
        errors = r.accounting_errors()
        assert any("window accounting" in e for e in errors)

    def test_unbalanced_events_detected(self):
        r = StreamReport(window_us=1000, offered=1, processed=1)
        r.served_by = {"primary": 1}
        r.offered_events = 10
        r.processed_events = 3
        errors = r.accounting_errors()
        assert any("event accounting" in e for e in errors)

    def test_served_by_must_match_processed(self):
        r = StreamReport(window_us=1000, offered=1, processed=1)
        errors = r.accounting_errors()
        assert any("served_by" in e for e in errors)

    def test_latency_percentiles(self):
        r = StreamReport(window_us=1000)
        assert np.isnan(r.p50_latency_us)
        r.latencies_us = [10.0, 20.0, 30.0]
        assert r.p50_latency_us == 20.0
        assert r.p99_latency_us <= 30.0
        assert r.to_dict()["p50_latency_us"] == 20.0
