"""Tests for repro.events.ops and repro.events.rate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    EventStream,
    Resolution,
    drop_events,
    event_count_map,
    jitter_time,
    merge_polarities,
    neighbourhood_filter,
    peak_rate,
    rate_profile,
    refractory_filter,
    spatial_downsample,
    split_by_count,
    split_by_time,
)


def make_stream(n=100, width=16, height=16, max_dt=100, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(0, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


class TestSplitting:
    def test_split_by_time_covers_all(self):
        s = make_stream(200)
        chunks = list(split_by_time(s, 500))
        assert sum(len(c) for c in chunks) == len(s)

    def test_split_by_time_includes_empty_windows(self):
        res = Resolution(4, 4)
        s = EventStream.from_arrays([0, 2500], [0, 1], [0, 0], [1, 1], res)
        chunks = list(split_by_time(s, 1000))
        assert len(chunks) == 3
        assert [len(c) for c in chunks] == [1, 0, 1]

    def test_split_by_time_empty_stream(self):
        assert list(split_by_time(EventStream.empty(Resolution(2, 2)), 100)) == []

    def test_split_by_time_timestamps_stay_absolute(self):
        # Pins the documented contract: chunk timestamps are NOT
        # rebased to their window; callers use rezero_time for that.
        res = Resolution(4, 4)
        s = EventStream.from_arrays(
            [100, 1150, 2200], [0, 1, 2], [0, 1, 2], [1, 1, 1], res
        )
        chunks = list(split_by_time(s, 1000))
        assert [c.t.tolist() for c in chunks] == [[100], [1150], [2200]]
        # Windows are aligned to the first timestamp, not to zero.
        assert chunks[1].t[0] - s.t[0] >= 1000

    def test_split_by_time_exact_boundary_goes_to_next_window(self):
        # Window spans [start, start + window_us): an event exactly at
        # start + window_us belongs to the NEXT chunk.
        res = Resolution(4, 4)
        s = EventStream.from_arrays(
            [0, 999, 1000], [0, 0, 0], [0, 0, 0], [1, 1, 1], res
        )
        chunks = list(split_by_time(s, 1000))
        assert [c.t.tolist() for c in chunks] == [[0, 999], [1000]]

    def test_split_by_time_invalid(self):
        with pytest.raises(ValueError):
            list(split_by_time(make_stream(), 0))

    def test_split_by_count(self):
        s = make_stream(10)
        chunks = list(split_by_count(s, 3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_split_by_count_invalid(self):
        with pytest.raises(ValueError):
            list(split_by_count(make_stream(), 0))


class TestRefractoryFilter:
    def test_drops_rapid_repeats(self):
        res = Resolution(2, 2)
        s = EventStream.from_arrays(
            [0, 10, 200, 205], [0, 0, 0, 0], [0, 0, 0, 0], [1, 1, 1, -1], res
        )
        f = refractory_filter(s, refractory_us=50)
        assert f.t.tolist() == [0, 200]

    def test_different_pixels_unaffected(self):
        res = Resolution(2, 2)
        s = EventStream.from_arrays([0, 1, 2], [0, 1, 0], [0, 0, 1], [1, 1, 1], res)
        assert len(refractory_filter(s, 100)) == 3

    def test_zero_refractory_is_identity(self):
        s = make_stream(50)
        assert refractory_filter(s, 0) == s

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            refractory_filter(make_stream(), -1)

    def test_empty(self):
        s = EventStream.empty(Resolution(2, 2))
        assert len(refractory_filter(s, 10)) == 0


class TestNeighbourhoodFilter:
    def test_removes_isolated_noise(self):
        res = Resolution(10, 10)
        # A tight cluster plus one isolated event far away.
        s = EventStream.from_arrays(
            [0, 5, 10, 500],
            [2, 3, 2, 9],
            [2, 2, 3, 9],
            [1, 1, 1, 1],
            res,
        )
        f = neighbourhood_filter(s, window_us=100, radius=1)
        assert 9 not in f.x.tolist()
        # The clustered followers survive (first event has no support).
        assert len(f) == 2

    def test_support_expires(self):
        res = Resolution(4, 4)
        s = EventStream.from_arrays([0, 1000], [0, 1], [0, 0], [1, 1], res)
        f = neighbourhood_filter(s, window_us=10, radius=1)
        assert len(f) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbourhood_filter(make_stream(), 0)
        with pytest.raises(ValueError):
            neighbourhood_filter(make_stream(), 10, radius=-1)


class TestSpatialDownsample:
    def test_coordinates_divided(self):
        res = Resolution(8, 8)
        s = EventStream.from_arrays([0, 1], [7, 0], [7, 0], [1, 1], res)
        d = spatial_downsample(s, 2)
        assert d.resolution == Resolution(4, 4)
        assert d.x.tolist() == [3, 0]

    def test_duplicate_merge(self):
        res = Resolution(4, 4)
        # Two events in the same super-pixel at the same time and polarity merge.
        s = EventStream.from_arrays([5, 5, 5], [0, 1, 0], [0, 1, 0], [1, 1, -1], res)
        d = spatial_downsample(s, 2)
        assert len(d) == 2  # merged ON pair + the OFF event

    def test_factor_one_identity(self):
        s = make_stream(20)
        assert spatial_downsample(s, 1) == s

    def test_reduces_event_count(self):
        s = make_stream(500, width=32, height=32, max_dt=3)
        d = spatial_downsample(s, 4)
        assert len(d) <= len(s)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            spatial_downsample(make_stream(), 0)


class TestMiscOps:
    def test_merge_polarities(self):
        s = make_stream(30)
        m = merge_polarities(s)
        assert np.all(m.p == 1)
        assert len(m) == len(s)

    def test_jitter_preserves_count_and_order(self):
        s = make_stream(50)
        rng = np.random.default_rng(42)
        j = jitter_time(s, 10.0, rng)
        assert len(j) == len(s)
        assert np.all(np.diff(j.t) >= 0)
        assert np.all(j.t >= 0)

    def test_jitter_zero_identity(self):
        s = make_stream(10)
        assert jitter_time(s, 0.0, np.random.default_rng(0)) == s

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            jitter_time(make_stream(), -1.0, np.random.default_rng(0))

    def test_drop_events(self):
        s = make_stream(1000)
        d = drop_events(s, 0.5, np.random.default_rng(0))
        assert 300 < len(d) < 700
        assert drop_events(s, 0.0, np.random.default_rng(0)) == s
        with pytest.raises(ValueError):
            drop_events(s, 1.5, np.random.default_rng(0))

    def test_event_count_map(self):
        res = Resolution(3, 2)
        s = EventStream.from_arrays([0, 1, 2], [0, 0, 2], [0, 0, 1], [1, -1, 1], res)
        m = event_count_map(s)
        assert m.shape == (2, 3)
        assert m[0, 0] == 2
        assert m[1, 2] == 1
        signed = event_count_map(s, signed=True)
        assert signed[0, 0] == 0


class TestRate:
    def test_rate_profile_total(self):
        s = make_stream(200, max_dt=50)
        prof = rate_profile(s, bin_us=1000)
        assert prof.counts.sum() == len(s)

    def test_uniform_stream_burstiness(self):
        res = Resolution(2, 2)
        t = np.arange(0, 100_000, 100)
        s = EventStream.from_arrays(t, np.zeros_like(t), np.zeros_like(t), np.ones_like(t), res)
        prof = rate_profile(s, bin_us=10_000)
        assert prof.burstiness == pytest.approx(1.0, rel=0.05)

    def test_bursty_stream(self):
        res = Resolution(2, 2)
        # 100 events in the first ms, then silence for 99 ms, then one event.
        t = np.concatenate([np.arange(100) * 10, [100_000]])
        s = EventStream.from_arrays(
            t, np.zeros_like(t), np.zeros_like(t), np.ones_like(t), res
        )
        prof = rate_profile(s, bin_us=1000)
        assert prof.burstiness > 10

    def test_peak_rate_at_least_profile_mean(self):
        s = make_stream(100, max_dt=10)
        prof = rate_profile(s, bin_us=100)
        assert peak_rate(s, bin_us=100) >= prof.mean_rate_eps

    def test_empty_profile(self):
        prof = rate_profile(EventStream.empty(Resolution(2, 2)))
        assert prof.mean_rate_eps == 0.0
        assert prof.peak_rate_eps == 0.0
        assert prof.burstiness == 0.0

    def test_invalid_bin(self):
        with pytest.raises(ValueError):
            rate_profile(make_stream(), 0)


class TestOpsProperties:
    @given(st.integers(1, 200), st.integers(1, 8), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_downsample_bounds(self, n, factor, seed):
        s = make_stream(n, width=16, height=16, seed=seed)
        d = spatial_downsample(s, factor)
        if len(d):
            assert d.x.max() < d.resolution.width
            assert d.y.max() < d.resolution.height
        assert len(d) <= len(s)

    @given(st.integers(1, 100), st.integers(0, 500), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_refractory_monotone(self, n, refr, seed):
        s = make_stream(n, seed=seed)
        f = refractory_filter(s, refr)
        assert len(f) <= len(s)
        # Filtering is idempotent.
        assert refractory_filter(f, refr) == f
