"""Tests for event-graph construction and incremental insertion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream, Resolution
from repro.gnn import (
    EventGraph,
    HashInserter,
    KDTreeInserter,
    NaiveInserter,
    knn_graph,
    limit_in_degree,
    make_causal,
    radius_graph_kdtree,
    radius_graph_naive,
    radius_graph_spatial_hash,
    radius_graph_spatial_hash_reference,
)


def random_points(n, seed=0, scale=20.0):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, scale, (n, 3))
    pts = pts[np.argsort(pts[:, 2], kind="stable")]
    return pts


def random_stream(n=60, seed=0, width=16, height=16):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, 2000, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


class TestEventGraph:
    def test_from_stream(self):
        s = random_stream(30)
        edges = radius_graph_kdtree(s.as_point_cloud(1000.0), 5.0)
        g = EventGraph.from_stream(s, edges, 1000.0)
        assert g.num_nodes == 30
        assert g.features.shape == (30, 2)
        # Polarity one-hot sums to one per node.
        np.testing.assert_allclose(g.features.sum(axis=1), 1.0)

    def test_edge_attributes(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]])
        g = EventGraph(pts, np.zeros((2, 1)), np.array([[0, 1]]), 1000.0)
        np.testing.assert_allclose(g.edge_attributes(), [[1.0, 2.0, 3.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            EventGraph(np.zeros((3, 2)), np.zeros((3, 1)), np.zeros((0, 2)), 1.0)
        with pytest.raises(ValueError):
            EventGraph(np.zeros((3, 3)), np.zeros((2, 1)), np.zeros((0, 2)), 1.0)
        with pytest.raises(ValueError):
            EventGraph(np.zeros((3, 3)), np.zeros((3, 1)), np.array([[0, 5]]), 1.0)

    def test_mean_degree(self):
        pts = random_points(10)
        edges = radius_graph_naive(pts, 50.0)  # complete graph
        g = EventGraph(pts, np.zeros((10, 1)), edges, 1.0)
        assert g.mean_degree == pytest.approx(9.0)

    def test_subgraph(self):
        pts = random_points(20, seed=1)
        edges = radius_graph_naive(pts, 8.0)
        g = EventGraph(pts, np.zeros((20, 1)), edges, 1.0)
        sub = g.subgraph(np.arange(10))
        assert sub.num_nodes == 10
        if sub.num_edges:
            assert sub.edges.max() < 10

    def test_is_causal(self):
        pts = random_points(15, seed=2)
        edges = radius_graph_naive(pts, 10.0)
        g_all = EventGraph(pts, np.zeros((15, 1)), edges, 1.0)
        g_causal = EventGraph(pts, np.zeros((15, 1)), make_causal(edges, pts), 1.0)
        assert g_causal.is_causal()
        if g_all.num_edges:
            assert not g_all.is_causal()


class TestRadiusGraphEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("radius", [2.0, 5.0, 12.0])
    def test_three_algorithms_agree(self, seed, radius):
        pts = random_points(80, seed=seed)
        e_naive = radius_graph_naive(pts, radius)
        e_tree = radius_graph_kdtree(pts, radius)
        e_hash = radius_graph_spatial_hash(pts, radius)
        np.testing.assert_array_equal(e_naive, e_tree)
        np.testing.assert_array_equal(e_naive, e_hash)

    def test_empty_and_single(self):
        for builder in (radius_graph_naive, radius_graph_kdtree, radius_graph_spatial_hash):
            assert builder(np.zeros((0, 3)), 1.0).shape == (0, 2)
            assert builder(np.zeros((1, 3)), 1.0).shape == (0, 2)

    def test_symmetric(self):
        pts = random_points(40, seed=3)
        edges = radius_graph_kdtree(pts, 6.0)
        fwd = set(map(tuple, edges))
        assert all((b, a) in fwd for a, b in fwd)

    def test_validation(self):
        pts = random_points(5)
        for builder in (radius_graph_naive, radius_graph_kdtree, radius_graph_spatial_hash):
            with pytest.raises(ValueError):
                builder(pts, 0.0)
            with pytest.raises(ValueError):
                builder(np.zeros((4, 2)), 1.0)

    @given(st.integers(2, 40), st.integers(0, 20), st.floats(0.5, 20.0))
    @settings(max_examples=25, deadline=None)
    def test_hash_equals_naive_property(self, n, seed, radius):
        pts = random_points(n, seed=seed)
        np.testing.assert_array_equal(
            radius_graph_naive(pts, radius), radius_graph_spatial_hash(pts, radius)
        )

    def test_argsort_overflow_fallback_matches_reference(self):
        """Force the int64-overflow argsort fallback of the hash builder.

        A dense cluster plus one astronomically distant outlier keeps
        the packed *cell* keys inside int64 (so the reference fallback
        is not taken) while ``(keys.max() + 1) * n`` overflows the
        index-packing fast path — exactly the branch whose argsort must
        be stable: the clustered points share cells, so their keys tie,
        and an unstable sort would feed the bucketing a different point
        order than the fast path.
        """
        radius = 2.0
        rng = np.random.default_rng(42)
        pts = rng.uniform(0.0, 4.0, (64, 3))  # many points per cell: tied keys
        pts[-1] = (2e6, 2e6, 2e6)  # outlier blows up the key range

        # Replicate the implementation's branch conditions to prove the
        # test actually exercises the argsort fallback.
        cells = np.floor(pts / radius).astype(np.int64)
        cells = cells - cells.min(axis=0) + 1
        span = cells.max(axis=0) + 2
        assert float(span[0]) * float(span[1]) * float(span[2]) < 2**62
        keys = (cells[:, 0] * span[1] + cells[:, 1]) * span[2] + cells[:, 2]
        assert float(keys.max() + 1) * float(len(pts)) >= 2**62

        edges = radius_graph_spatial_hash(pts, radius)
        assert edges.shape[0] > 0  # the cluster forms a real graph
        np.testing.assert_array_equal(
            edges, radius_graph_spatial_hash_reference(pts, radius)
        )
        np.testing.assert_array_equal(edges, radius_graph_naive(pts, radius))


class TestKnnAndHelpers:
    def test_knn_degree(self):
        pts = random_points(30, seed=4)
        edges = knn_graph(pts, 5)
        in_deg = np.bincount(edges[:, 1], minlength=30)
        assert np.all(in_deg == 5)

    def test_knn_small_n(self):
        pts = random_points(3)
        edges = knn_graph(pts, 10)  # k clipped to n-1
        assert np.all(np.bincount(edges[:, 1], minlength=3) == 2)
        assert knn_graph(np.zeros((1, 3)), 3).shape == (0, 2)

    def test_knn_validation(self):
        with pytest.raises(ValueError):
            knn_graph(random_points(5), 0)

    def test_knn_no_self_loops_with_duplicates(self):
        # Regression: with duplicate points, cKDTree may return a
        # duplicate as the "self" hit instead of the point itself, so
        # masking by index (not distance) used to leave a genuine
        # self-loop in the edge list.
        pts = np.array(
            [[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [5.0, 5.0, 5.0]]
        )
        edges = knn_graph(pts, 2)
        assert np.all(edges[:, 0] != edges[:, 1])
        in_deg = np.bincount(edges[:, 1], minlength=4)
        assert np.all(in_deg == 2)
        # The duplicate pair must still connect to each other.
        pairs = set(map(tuple, edges))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_knn_all_points_identical(self):
        pts = np.zeros((5, 3))
        edges = knn_graph(pts, 3)
        assert np.all(edges[:, 0] != edges[:, 1])
        assert np.all(np.bincount(edges[:, 1], minlength=5) == 3)

    def test_knn_keeps_true_nearest_under_duplication(self):
        # Node 3 sits at distance 1 of the duplicated origin pair and
        # distance ~7 of node 2; its two nearest neighbours are the
        # duplicates, never itself or node 2.
        pts = np.array(
            [[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [5.0, 5.0, 5.0], [1.0, 0.0, 0.0]]
        )
        edges = knn_graph(pts, 2)
        srcs_of_3 = {int(s) for s, d in edges if d == 3}
        assert srcs_of_3 == {0, 1}

    def test_make_causal_halves_symmetric_graph(self):
        pts = random_points(30, seed=5)
        # Ensure strictly increasing time so there are no ties.
        pts[:, 2] = np.arange(30, dtype=np.float64)
        edges = radius_graph_naive(pts, 15.0)
        causal = make_causal(edges, pts)
        assert causal.shape[0] == edges.shape[0] // 2

    def test_limit_in_degree(self):
        pts = random_points(40, seed=6)
        edges = radius_graph_naive(pts, 30.0)
        capped = limit_in_degree(edges, pts, 3)
        in_deg = np.bincount(capped[:, 1], minlength=40)
        assert in_deg.max() <= 3

    def test_limit_keeps_nearest(self):
        pts = np.array(
            [[0.0, 0, 0], [1.0, 0, 0], [5.0, 0, 0], [0.1, 0, 0]], dtype=np.float64
        )
        edges = np.array([[1, 0], [2, 0], [3, 0]])
        capped = limit_in_degree(edges, pts, 2)
        assert set(map(tuple, capped)) == {(1, 0), (3, 0)}

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            limit_in_degree(np.zeros((0, 2)), random_points(3), 0)


class TestIncrementalInserters:
    def _events(self, n=150, seed=0, width=32):
        rng = np.random.default_rng(seed)
        t = np.cumsum(rng.integers(50, 500, n))
        return rng.integers(0, width, n), rng.integers(0, width, n), t

    def _make(self, cls, **kw):
        return cls(radius=3.0, time_scale_us=1000.0, window_us=20_000, max_neighbours=8, **kw)

    def test_all_strategies_same_edges(self):
        xs, ys, ts = self._events()
        results = []
        for cls, kw in ((NaiveInserter, {}), (KDTreeInserter, {"rebuild_every": 16}), (HashInserter, {})):
            ins = self._make(cls, **kw)
            ins.insert_stream(xs, ys, ts)
            results.append(set(map(tuple, ins.edges())))
        assert results[0] == results[1] == results[2]

    def test_edges_are_causal(self):
        xs, ys, ts = self._events(seed=1)
        ins = self._make(HashInserter)
        ins.insert_stream(xs, ys, ts)
        edges = ins.edges()
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_hash_beats_naive_on_cost(self):
        xs, ys, ts = self._events(n=400, seed=2)
        naive = self._make(NaiveInserter)
        hashed = self._make(HashInserter)
        naive.insert_stream(xs, ys, ts)
        hashed.insert_stream(xs, ys, ts)
        assert hashed.stats.candidates_per_event < naive.stats.candidates_per_event

    def test_naive_cost_grows_with_density(self):
        # Higher event rate within the window -> more live nodes per insert.
        rng = np.random.default_rng(3)
        n = 300
        slow_t = np.cumsum(rng.integers(400, 800, n))
        fast_t = np.cumsum(rng.integers(10, 30, n))
        xs = rng.integers(0, 32, n)
        ys = rng.integers(0, 32, n)
        slow = self._make(NaiveInserter)
        fast = self._make(NaiveInserter)
        slow.insert_stream(xs, ys, slow_t)
        fast.insert_stream(xs, ys, fast_t)
        assert fast.stats.candidates_per_event > slow.stats.candidates_per_event

    def test_degree_cap_respected(self):
        xs, ys, ts = self._events(n=200, seed=4, width=4)  # dense cluster
        ins = self._make(HashInserter)
        ins.insert_stream(xs, ys, ts)
        edges = ins.edges()
        in_deg = np.bincount(edges[:, 1], minlength=ins.num_nodes)
        assert in_deg.max() <= 8

    def test_stats_fields(self):
        xs, ys, ts = self._events(n=100)
        ins = self._make(KDTreeInserter, rebuild_every=16)
        ins.insert_stream(xs, ys, ts)
        assert ins.stats.events_inserted == 100
        assert ins.stats.tree_builds >= 5
        assert ins.stats.candidates_per_event > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            NaiveInserter(radius=0)
        with pytest.raises(ValueError):
            HashInserter(radius=1, window_us=0)
        with pytest.raises(ValueError):
            KDTreeInserter(radius=1, rebuild_every=0)
        with pytest.raises(ValueError):
            NaiveInserter(radius=1, max_neighbours=0)

    @given(st.integers(5, 60), st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_hash_equals_naive_property(self, n, seed):
        rng = np.random.default_rng(seed)
        t = np.cumsum(rng.integers(10, 1000, n))
        xs = rng.integers(0, 16, n)
        ys = rng.integers(0, 16, n)
        a = self._make(NaiveInserter)
        b = self._make(HashInserter)
        a.insert_stream(xs, ys, t)
        b.insert_stream(xs, ys, t)
        assert set(map(tuple, a.edges())) == set(map(tuple, b.edges()))
