"""Tests for the third extension round: looming stimulus, contrast
sensitivity, new tensor ops, scipy cross-validation and the CLI."""

import numpy as np
import pytest
from scipy import signal

from repro.camera import CameraConfig, EventCamera, ExpandingDisk, PixelParams
from repro.events import Resolution
from repro.nn import Tensor
from repro.nn import functional as F

from .test_nn_tensor import check_grad

RES = Resolution(32, 32)


class TestExpandingDisk:
    def test_looming_produces_on_dominated_events(self):
        cam = EventCamera(RES, CameraConfig(sample_period_us=500))
        loom = ExpandingDisk(RES, r0=2.0, growth_px_per_s=200.0)
        events, _ = cam.record(loom, 50_000)
        on, off = events.polarity_counts()
        assert len(events) > 20
        assert on > 3 * off  # expansion = brightening ring

    def test_receding_produces_off_dominated_events(self):
        cam = EventCamera(RES, CameraConfig(sample_period_us=500))
        recede = ExpandingDisk(RES, r0=12.0, growth_px_per_s=-200.0)
        events, _ = cam.record(recede, 50_000)
        on, off = events.polarity_counts()
        assert off > 3 * on

    def test_event_rate_accelerates_while_looming(self):
        # Ring circumference grows with radius: later windows hold more events.
        cam = EventCamera(RES, CameraConfig(sample_period_us=500))
        loom = ExpandingDisk(RES, r0=1.5, growth_px_per_s=250.0)
        events, _ = cam.record(loom, 50_000)
        first = events.time_window(0, 25_000)
        second = events.time_window(25_000, 50_001)
        assert len(second) > len(first)

    def test_radius_floor(self):
        stim = ExpandingDisk(RES, r0=3.0, growth_px_per_s=-1000.0, r_min=1.0)
        assert stim.radius_at(1_000_000) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExpandingDisk(RES, r0=0)
        with pytest.raises(ValueError):
            ExpandingDisk(RES, r_min=0)


class TestContrastSensitivity:
    """Section II: 'finer contrast sensitivity' as a sensor design driver."""

    def _count(self, threshold):
        cam = EventCamera(
            RES,
            CameraConfig(
                pixel=PixelParams(threshold_on=threshold, threshold_off=threshold),
                sample_period_us=500,
            ),
        )
        from repro.camera import MovingDisk

        stim = MovingDisk(RES, radius=4.0, x0=4.0, y0=16.0, vx_px_per_s=600.0)
        events, _ = cam.record(stim, 40_000)
        return len(events)

    def test_finer_threshold_more_events(self):
        counts = [self._count(th) for th in (0.1, 0.2, 0.4)]
        assert counts[0] > counts[1] > counts[2]
        # Event count scales roughly inversely with the threshold.
        assert counts[0] > 1.5 * counts[2]


class TestNewTensorOps:
    def test_min_values_and_grad(self):
        a = Tensor(np.array([3.0, 1.0, 2.0]), requires_grad=True)
        m = a.min()
        assert m.item() == 1.0
        m.backward()
        assert a.grad.tolist() == [0.0, 1.0, 0.0]

    def test_min_axis(self):
        a = Tensor(np.array([[3.0, 1.0], [0.0, 2.0]]), requires_grad=True)
        assert a.min(axis=0).data.tolist() == [0.0, 1.0]

    def test_var_matches_numpy(self):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal((4, 5))
        t = Tensor(arr)
        assert t.var().item() == pytest.approx(arr.var())
        np.testing.assert_allclose(t.var(axis=1).data, arr.var(axis=1))

    def test_var_gradcheck(self):
        check_grad(lambda a: a.var(), (3, 4))
        check_grad(lambda a: a.var(axis=0), (3, 4))

    def test_sqrt_values_and_gradcheck(self):
        rng = np.random.default_rng(0)
        arr = rng.uniform(0.5, 4.0, (3, 3))
        t = Tensor(arr, requires_grad=True)
        t.sqrt().sum().backward()
        np.testing.assert_allclose(t.grad, 0.5 / np.sqrt(arr), rtol=1e-9)


class TestConvAgainstScipy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_forward_matches_scipy_correlate(self, seed):
        """conv2d (cross-correlation) must agree with scipy exactly."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 3, 9, 9))
        w = rng.standard_normal((4, 3, 3, 3))
        ours = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.zeros_like(ours)
        for o in range(4):
            acc = np.zeros((7, 7))
            for c in range(3):
                acc += signal.correlate2d(x[0, c], w[o, c], mode="valid")
            expected[0, o] = acc
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_strided_matches_scipy_subsampled(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((1, 2, 3, 3))
        ours = F.conv2d(Tensor(x), Tensor(w), stride=2).data
        full = sum(
            signal.correlate2d(x[0, c], w[0, c], mode="valid") for c in range(2)
        )
        np.testing.assert_allclose(ours[0, 0], full[::2, ::2], atol=1e-10)


class TestCLI:
    def test_info(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "subpackages" in out

    def test_demo(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out
        assert "ok" in out

    def test_default_is_info(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        assert "subpackages" in capsys.readouterr().out


class TestApiDocsGenerator:
    def test_generates_all_subpackages(self):
        import sys
        sys.path.insert(0, "tools")
        try:
            from gen_api_docs import SUBPACKAGES, generate
        finally:
            sys.path.pop(0)
        md = generate()
        for name in SUBPACKAGES:
            assert f"## `repro.{name}`" in md
        # Every documented row carries a summary (no broad empty cells).
        rows = [l for l in md.splitlines() if l.startswith("| `")]
        assert len(rows) > 100
        documented = [r for r in rows if not r.rstrip().endswith("|  |")]
        assert len(documented) / len(rows) > 0.95

    def test_committed_docs_up_to_date(self):
        import sys
        from pathlib import Path
        sys.path.insert(0, "tools")
        try:
            from gen_api_docs import generate
        finally:
            sys.path.pop(0)
        committed = Path("docs/api.md").read_text()
        assert committed == generate()
