"""Executor, sweep and burst-demo tests for repro.streaming."""

import numpy as np
import pytest

from repro.core import (
    ComparisonResult,
    NotFittedError,
    OVERLOAD_AXIS,
    PipelineMetrics,
    SNNPipeline,
)
from repro.datasets import make_gestures_dataset
from repro.events import EVENT_DTYPE, EventStream, Resolution
from repro.streaming import (
    BreakerPolicy,
    LAST_GOOD_STAGE,
    ServiceModel,
    ShedPolicy,
    StreamingExecutor,
    TransientOutage,
    attach_to_comparison,
    calibrate_service,
    degradation_violations,
    make_bursty_stream,
    overload_scores,
    run_overload_demo,
    run_streaming_sweep,
)

RES = Resolution(32, 32)


def steady_windows(num_windows, events_per_window=20, window_us=1000, seed=0):
    stream = make_bursty_stream(
        resolution=RES,
        num_windows=num_windows,
        window_us=window_us,
        base_events_per_window=events_per_window,
        burst_factor=1.0,
        burst_windows=(0, 0),
        seed=seed,
    )
    from repro.events.ops import split_by_time

    return list(split_by_time(stream, window_us))


def count_mod(stream):
    return int(len(stream) % 4)


class TestServiceModel:
    def test_costs(self):
        m = ServiceModel(base_us=100.0, per_event_us=2.0)
        assert m.service_us(50) == 200.0
        assert m.sustainable_events_per_window(1100) == 500.0

    def test_free_events_have_no_budget(self):
        assert ServiceModel(10.0, 0.0).sustainable_events_per_window(1000) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceModel(base_us=-1.0)


class TestStreamingExecutor:
    def test_healthy_underload_processes_everything(self):
        windows = steady_windows(30)
        ex = StreamingExecutor(
            ("clf", count_mod),
            window_us=1000,
            service=ServiceModel(base_us=10.0, per_event_us=1.0),
        )
        report = ex.run(windows)
        assert report.offered == 30
        assert report.processed == 30
        assert report.expired == report.shed_windows == report.failed == 0
        assert report.accounting_errors() == []
        assert report.ledger.total_events_shed == 0
        assert report.served_by == {"clf": 30}
        assert len(report.predictions) == 30

    def test_accepts_whole_stream(self):
        stream = make_bursty_stream(
            num_windows=10, window_us=1000, base_events_per_window=10,
            burst_factor=1.0, burst_windows=(0, 0), seed=2,
        )
        ex = StreamingExecutor(
            count_mod, window_us=1000, service=ServiceModel(5.0, 0.5)
        )
        report = ex.run(stream)
        assert report.offered == 10
        assert report.accounting_errors() == []

    def test_unfitted_pipeline_raises_up_front(self):
        ex = StreamingExecutor(
            SNNPipeline(), window_us=1000, service=ServiceModel(5.0, 0.5)
        )
        with pytest.raises(NotFittedError):
            ex.run(steady_windows(3))

    def test_fitted_pipeline_streams(self):
        ds = make_gestures_dataset(num_per_class=2, duration_us=50_000, seed=3)
        pipe = SNNPipeline(seed=0)
        pipe.fit(ds)
        stream = ds.samples[0].stream
        ex = StreamingExecutor(
            pipe, window_us=10_000, service=ServiceModel(100.0, 0.1)
        )
        report = ex.run(stream)
        assert report.processed == report.offered > 0
        assert report.accounting_errors() == []
        assert all(isinstance(v, int) for v in report.predictions.values())

    def test_failing_primary_falls_back(self):
        def broken(stream):
            raise RuntimeError("boom")

        ex = StreamingExecutor(
            ("broken", broken),
            window_us=1000,
            fallbacks=[("backup", count_mod)],
            service=ServiceModel(5.0, 0.5),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_calls=3),
        )
        report = ex.run(steady_windows(20))
        assert report.processed == 20
        assert report.failed == 0
        assert report.served_by["backup"] == 20
        assert any(
            t.to_state.value == "open" for t in ex.breakers["broken"].transitions
        )
        assert report.accounting_errors() == []

    def test_nan_output_trips_breaker(self):
        ex = StreamingExecutor(
            ("nanny", lambda s: float("nan")),
            window_us=1000,
            fallbacks=[("backup", count_mod)],
            service=ServiceModel(5.0, 0.5),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_calls=8),
        )
        report = ex.run(steady_windows(10))
        assert ex.breakers["nanny"].nan_trips >= 2
        assert report.stage_stats["nanny"].nan_trips >= 2
        assert report.processed == 10

    def test_last_good_serves_when_all_stages_fail(self):
        outage = TransientOutage(count_mod, fail_from_call=3, fail_calls=100)
        ex = StreamingExecutor(
            ("flaky", outage),
            window_us=1000,
            service=ServiceModel(5.0, 0.5),
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_calls=4),
        )
        report = ex.run(steady_windows(12))
        assert report.served_by[LAST_GOOD_STAGE] > 0
        assert report.processed == 12
        assert report.failed == 0
        assert report.accounting_errors() == []

    def test_no_last_good_means_failed_windows(self):
        def broken(stream):
            raise RuntimeError("boom")

        ex = StreamingExecutor(
            broken,
            window_us=1000,
            service=ServiceModel(5.0, 0.5),
            use_last_good=False,
        )
        report = ex.run(steady_windows(6))
        assert report.failed == 6
        assert report.processed == 0
        assert report.accounting_errors() == []

    def test_overload_sheds_and_stays_balanced(self):
        windows = steady_windows(60, events_per_window=50)
        ex = StreamingExecutor(
            count_mod,
            window_us=1000,
            # ~4x overloaded: 50-event windows cost 100 + 50*60 = 3100 us.
            service=ServiceModel(base_us=100.0, per_event_us=60.0),
            queue_capacity=8,
            shed_policy=ShedPolicy(high_watermark=4, low_watermark=1),
        )
        report = ex.run(windows)
        assert report.accounting_errors() == []
        assert report.ledger.total_events_shed > 0
        assert len(report.tiers_engaged) >= 2
        assert report.processed < report.offered
        assert report.max_queue_depth >= 4
        assert report.tier_transitions  # escalations were logged

    def test_corrupt_window_is_quarantined_not_fatal(self):
        good = steady_windows(3)
        arr = np.zeros(2, dtype=EVENT_DTYPE)
        arr["t"] = [0, 2**62]
        arr["x"] = arr["y"] = 1
        arr["p"] = 1
        bad = EventStream(arr, RES)
        ex = StreamingExecutor(
            count_mod, window_us=1000, service=ServiceModel(5.0, 0.5)
        )
        report = ex.run([good[0], bad, good[1]])
        assert report.offered == 3
        assert report.processed == 2
        assert report.failed == 1
        assert report.accounting_errors() == []

    def test_run_is_deterministic(self):
        reports = [run_overload_demo(seed=5)[0].to_dict() for _ in range(2)]
        assert reports[0] == reports[1]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            StreamingExecutor(count_mod, window_us=0)
        with pytest.raises(ValueError):
            StreamingExecutor(count_mod, window_us=10, queue_capacity=0)
        ex = StreamingExecutor(count_mod, window_us=10)
        with pytest.raises(ValueError):
            ex.run([], load_factor=0.0)


class TestBurstDemo:
    """The seeded 10x burst acceptance demo."""

    def test_demo_meets_acceptance_criteria(self):
        report, ex = run_overload_demo(seed=0, burst_factor=10.0)
        # Exact conservation of windows and events.
        assert report.accounting_errors() == []
        assert report.failed == 0
        assert (
            report.processed + report.expired + report.shed_windows
            == report.offered
            == 200
        )
        # At least two shedding tiers engaged.
        assert len(report.tiers_engaged) >= 2
        # Every breaker that opened later recovered through its probes.
        opened = [
            b for b in ex.breakers.values()
            if any(t.to_state.value == "open" for t in b.transitions)
        ]
        assert opened, "the transient outage should have tripped a breaker"
        assert all(b.recovered for b in ex.breakers.values())
        assert any(b.probes > 0 for b in opened)
        # The burst actually stressed the system.
        assert report.expired > 0 or report.shed_windows > 0
        assert report.max_queue_depth >= 8

    def test_demo_report_serialises(self):
        import json

        report, _ = run_overload_demo(seed=1)
        blob = json.dumps(report.to_dict())
        assert "DROP_OLDEST" in blob


class TestStreamingSweep:
    def _small_sweep(self):
        stream = make_bursty_stream(
            num_windows=60, burst_factor=1.0, burst_windows=(0, 0), seed=1
        )
        return run_streaming_sweep(
            stream, 10_000, load_factors=(0.5, 2.0, 6.0), seed=0
        )

    def test_curves_cover_paradigms_and_balance(self):
        result = self._small_sweep()
        assert set(result.curves) == {"SNN", "CNN", "GNN"}
        assert degradation_violations(result) == []
        for name in result.curves:
            assert len(result.delivered(name)) == 3

    def test_scores_in_unit_interval_and_ordered_by_headroom(self):
        result = self._small_sweep()
        scores = overload_scores(result)
        assert all(0.0 <= s <= 1.0 for s in scores.values())
        # More capacity headroom (GNN) must not score worse than less (CNN).
        assert scores["GNN"] >= scores["CNN"]

    def test_attach_to_comparison_adds_overload_row(self):
        result = self._small_sweep()
        comparison = ComparisonResult(
            metrics={p: PipelineMetrics(paradigm=p) for p in ("SNN", "CNN", "GNN")}
        )
        attach_to_comparison(comparison, result)
        assert OVERLOAD_AXIS in comparison.extra_axes
        assert set(comparison.ratings["overload"]) == {"SNN", "CNN", "GNN"}
        assert np.isfinite(comparison.metrics["SNN"].overload)
        # Attaching twice must not duplicate the row.
        attach_to_comparison(comparison, result)
        assert comparison.extra_axes.count(OVERLOAD_AXIS) == 1

    def test_degradation_violations_flags_rising_curve(self):
        result = self._small_sweep()
        # Artificially make a curve rise.
        pts = result.curves["SNN"]
        pts[0].report.processed = 0
        pts[0].report.served_by = {}
        pts[0].report.offered = 10
        pts[0].report.expired = 10
        pts[0].report.offered_events = 0
        violations = degradation_violations(result)
        assert any("delivered fraction rises" in v for v in violations)

    def test_sweep_validates_inputs(self):
        stream = make_bursty_stream(num_windows=5, seed=0)
        with pytest.raises(ValueError):
            run_streaming_sweep(stream, 10_000, load_factors=())
        with pytest.raises(ValueError):
            run_streaming_sweep(stream, 10_000, load_factors=(2.0, 1.0))
        with pytest.raises(ValueError):
            run_streaming_sweep(stream, 10_000, predictors={"SNN": count_mod})


class TestCalibrateService:
    def test_headroom_sets_utilisation(self):
        stream = make_bursty_stream(
            num_windows=50, base_events_per_window=100,
            burst_factor=1.0, burst_windows=(0, 0), seed=0,
        )
        service = calibrate_service(stream, 10_000, headroom=2.0)
        # A mean-rate window should cost about half the window period.
        cost = service.service_us(100)
        assert cost == pytest.approx(5000.0, rel=0.05)

    def test_validation(self):
        stream = make_bursty_stream(num_windows=5, seed=0)
        with pytest.raises(ValueError):
            calibrate_service(stream, 1000, headroom=0.0)
