"""Integration tests: observability wired through streaming, core, reliability.

The tentpole acceptance story lives here: one registry is the single
source of truth, so the executor's ``StreamReport`` scalars, the trace
tree's span counts and the exported snapshot must all reconcile exactly
— and two identical seeded virtual-time runs must serialize to the
same bytes.
"""

import numpy as np
import pytest

from repro.core import NotFittedError, ParadigmPipeline
from repro.datasets import make_shapes_dataset, train_test_split
from repro.events import Resolution
from repro.observability import (
    Instrumentation,
    ProfilingHooks,
    to_json,
    validate_snapshot,
)
from repro.reliability import HardenedRunner, UniformDrop
from repro.streaming import (
    BreakerPolicy,
    ServiceModel,
    ShedPolicy,
    StreamingExecutor,
    TransientOutage,
    make_bursty_stream,
    run_overload_demo,
)


class TestStreamingEndToEnd:
    @pytest.fixture(scope="class")
    def demo(self):
        report, executor = run_overload_demo(seed=0)
        return report, executor

    def test_report_is_a_view_over_the_registry(self, demo):
        report, executor = demo
        assert report.accounting_errors() == []
        reg = executor.obs.registry

        def win(outcome):
            return reg.counter_value("stream_windows_total", {"outcome": outcome})

        assert win("offered") == report.offered
        assert win("processed") == report.processed
        assert win("expired") == report.expired
        assert win("shed") == report.shed_windows
        assert win("failed_ingest") + win("failed_serve") == report.failed
        assert (
            reg.counter_value("stream_events_total", {"outcome": "offered"})
            == report.offered_events
        )
        assert (
            reg.counter_total("stream_shed_events_total")
            == report.ledger.total_events_shed
        )
        assert reg.counter_total("stream_breaker_transitions_total") == len(
            report.breaker_transitions
        )

    def test_span_counts_reconcile_with_report(self, demo):
        report, executor = demo
        counts = executor.obs.tracer.span_counts()
        reg = executor.obs.registry
        failed_serve = reg.counter_value(
            "stream_windows_total", {"outcome": "failed_serve"}
        )
        assert counts["ingest"] == report.offered
        assert counts.get("expire", 0) == report.expired
        assert counts["serve"] == report.processed + failed_serve
        for stage in ("flaky_primary", "fallback", "shed"):
            calls = reg.counter_value("stream_stage_calls_total", {"stage": stage})
            assert counts.get(f"call:{stage}", 0) == calls

    def test_snapshot_valid_and_latency_count_matches(self, demo):
        report, executor = demo
        snap = executor.snapshot()
        assert validate_snapshot(snap) == []
        latency = [
            h for h in snap["metrics"]["histograms"] if h["name"] == "stream_latency_us"
        ]
        assert sum(h["count"] for h in latency) == report.processed

    def test_seeded_runs_byte_identical(self, demo):
        _, executor = demo
        first = to_json(executor.snapshot())
        report2, executor2 = run_overload_demo(seed=0)
        assert to_json(executor2.snapshot()) == first
        report3, executor3 = run_overload_demo(seed=1)
        assert to_json(executor3.snapshot()) != first


class TestExecutorHooks:
    def test_hooks_fire_through_the_executor(self):
        calls = {"start": 0, "end": 0, "window": [], "shed": [], "trip": []}
        hooks = ProfilingHooks(
            on_stage_start=lambda s, i: calls.__setitem__("start", calls["start"] + 1),
            on_stage_end=lambda s, i, ok: calls.__setitem__("end", calls["end"] + 1),
            on_window=lambda i, o: calls["window"].append(o),
            on_shed=lambda t, n: calls["shed"].append((t, n)),
            on_trip=lambda s, f, t: calls["trip"].append((s, f, t)),
        )
        window_us = 10_000
        stream = make_bursty_stream(
            num_windows=120,
            window_us=window_us,
            base_events_per_window=200,
            burst_factor=8.0,
            burst_windows=(40, 80),
            seed=0,
        )
        executor = StreamingExecutor(
            ("primary", TransientOutage(lambda s: 0, fail_from_call=10, fail_calls=6)),
            window_us=window_us,
            fallbacks=[("fallback", lambda s: 1)],
            service=ServiceModel(base_us=1000.0, per_event_us=45.0),
            queue_capacity=12,
            shed_policy=ShedPolicy(high_watermark=8, low_watermark=2),
            breaker_policy=BreakerPolicy(
                failure_threshold=3,
                cooldown_calls=4,
                probe_probability=0.6,
                success_threshold=2,
            ),
            seed=0,
            hooks=hooks,
        )
        report = executor.run(stream, load_factor=1.0)
        assert report.accounting_errors() == []
        # Every offered window reaches exactly one terminal outcome hook.
        assert len(calls["window"]) == report.offered
        reg = executor.obs.registry
        assert calls["start"] == calls["end"]
        assert calls["start"] == reg.counter_total("stream_stage_calls_total")
        # The outage trips the breaker; the burst engages shedding.
        assert ("primary", "closed", "open") in calls["trip"]
        assert len(calls["trip"]) == len(report.breaker_transitions)
        assert calls["shed"]
        assert sum(n for _, n in calls["shed"]) == report.ledger.total_events_shed


class TinyPipeline(ParadigmPipeline):
    """Minimal template-method subclass for instrumentation checks."""

    name = "TINY"

    def __init__(self, fail_predict=False):
        self.model = None
        self.fail_predict = fail_predict

    def _fit(self, train):
        self.model = object()

    def _predict(self, stream):
        self._require_fitted()
        if self.fail_predict:
            raise RuntimeError("scripted failure")
        return 1

    def _measure(self, test, temporal_labels=()):
        self._require_fitted()
        return {"acc": 1.0}


class TestPipelineInstrumentation:
    def test_stages_counted_timed_and_traced(self):
        obs = Instrumentation()
        pipe = TinyPipeline().instrument(obs)
        assert pipe.instrumentation is obs
        pipe.fit(None)
        assert pipe.predict(None) == 1
        pipe.predict(None)
        assert pipe.measure(None) == {"acc": 1.0}
        reg = obs.registry

        def stage_calls(stage):
            return reg.counter_value(
                "pipeline_stage_calls_total", {"paradigm": "TINY", "stage": stage}
            )

        assert stage_calls("fit") == 1
        assert stage_calls("predict") == 2
        assert stage_calls("measure") == 1
        assert reg.counter_total("pipeline_stage_failures_total") == 0
        assert obs.tracer.span_counts() == {
            "TINY.fit": 1,
            "TINY.predict": 2,
            "TINY.measure": 1,
        }
        durations = [
            h
            for h in obs.snapshot()["metrics"]["histograms"]
            if h["name"] == "pipeline_stage_duration_us"
        ]
        assert sum(h["count"] for h in durations) == 4

    def test_failures_counted_and_reraised(self):
        obs = Instrumentation()
        pipe = TinyPipeline(fail_predict=True).instrument(obs)
        pipe.fit(None)
        with pytest.raises(RuntimeError, match="scripted failure"):
            pipe.predict(None)
        labels = {"paradigm": "TINY", "stage": "predict"}
        assert obs.registry.counter_value("pipeline_stage_failures_total", labels) == 1
        # The span still closed: its duration was recorded.
        assert len(obs.tracer.find("TINY.predict")) == 1

    def test_not_fitted_still_raises_when_instrumented(self):
        obs = Instrumentation()
        pipe = TinyPipeline().instrument(obs)
        with pytest.raises(NotFittedError):
            pipe.predict(None)
        labels = {"paradigm": "TINY", "stage": "predict"}
        assert obs.registry.counter_value("pipeline_stage_failures_total", labels) == 1

    def test_uninstrumented_pipeline_untouched(self):
        pipe = TinyPipeline()
        assert pipe.instrumentation is None
        pipe.fit(None)
        assert pipe.predict(None) == 1


class TestRunnerInstrumentation:
    @pytest.fixture(scope="class")
    def shapes_split(self):
        ds = make_shapes_dataset(
            num_per_class=4,
            resolution=Resolution(24, 24),
            duration_us=30_000,
            seed=0,
        )
        return train_test_split(ds, 0.4, np.random.default_rng(0))

    def test_guard_counters_records_and_hooks_reconcile(self, shapes_split):
        train, test = shapes_split
        windows = []
        obs = Instrumentation(
            hooks=ProfilingHooks(on_window=lambda i, o: windows.append((i, o)))
        )
        runner = HardenedRunner(TinyPipeline(), instrumentation=obs)
        assert runner.fit(train).ok
        report = runner.evaluate(test, fault=UniformDrop(0.3), seed=3)
        reg = obs.registry
        # One guarded fit + one guarded predict per non-quarantined record.
        counts = report.outcome_counts()
        guarded_predicts = reg.counter_value("guard_calls_total", {"stage": "predict"})
        assert reg.counter_value("guard_calls_total", {"stage": "fit"}) == 1
        assert guarded_predicts == len(report.records) - counts["quarantined"]
        assert reg.counter_total("guard_failures_total") == 0
        # Per-outcome record counters mirror the report exactly.
        for outcome, want in counts.items():
            got = reg.counter_value("runner_records_total", {"outcome": outcome})
            assert got == want, outcome
        assert len(windows) == len(report.records)
        assert [i for i, _ in windows] == [r.index for r in report.records]
        # Guard spans exist for each guarded stage call.
        span_counts = obs.tracer.span_counts()
        assert span_counts["guard:fit"] == 1
        assert span_counts["guard:predict"] == guarded_predicts
        assert validate_snapshot(obs.snapshot()) == []

    def test_guard_failures_and_retries_counted(self, shapes_split):
        train, test = shapes_split

        class Flaky(TinyPipeline):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def _predict(self, stream):
                self._require_fitted()
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient")
                return 0

        obs = Instrumentation()
        runner = HardenedRunner(Flaky(), max_retries=1, instrumentation=obs)
        assert runner.fit(train).ok
        record = runner.predict_sample(test.samples[0], 0, test.resolution)
        assert record.outcome.value == "ok"
        reg = obs.registry
        assert reg.counter_value("guard_attempts_total", {"stage": "predict"}) == 2
        assert reg.counter_value("guard_failures_total", {"stage": "predict"}) == 0
        assert reg.counter_value("runner_records_total", {"outcome": "ok"}) == 1
