"""Per-event incremental serving: session API + executor event mode."""

import numpy as np
import pytest

from repro.core import (
    CNNPipeline,
    GNNIncrementalSession,
    GNNPipeline,
    IncrementalSession,
    NotFittedError,
    SNNPipeline,
)
from repro.datasets import make_gestures_dataset
from repro.events.ops import split_by_time
from repro.gnn import GraphBuildConfig
from repro.gnn.models import build_event_graph
from repro.nn import no_grad
from repro.observability import Instrumentation
from repro.streaming import (
    BreakerPolicy,
    ServiceModel,
    ShedPolicy,
    StreamingExecutor,
)

WINDOW_US = 10_000


@pytest.fixture(scope="module")
def dataset():
    return make_gestures_dataset(num_per_class=2, duration_us=50_000, seed=3)


@pytest.fixture(scope="module")
def gnn(dataset):
    pipe = GNNPipeline(epochs=2, seed=0)
    pipe.fit(dataset)
    return pipe


def count_mod(stream):
    return int(len(stream) % 4)


def scrubbed(report):
    """Report dict without the event-mode-only fast-path tallies."""
    d = report.to_dict()
    for key in (
        "incremental_windows",
        "incremental_events",
        "incremental_macs",
        "incremental_fallbacks",
        "incremental_refusals",
        "incremental_restores",
    ):
        d.pop(key)
    return d


class TestSessionAPI:
    def test_default_is_unsupported(self):
        for pipe in (SNNPipeline(), CNNPipeline()):
            assert pipe.supports_incremental is False
            assert pipe.incremental_capacity is None
            with pytest.raises(NotImplementedError):
                pipe.open_session()

    def test_gnn_advertises_fast_path(self, gnn):
        assert gnn.supports_incremental is True
        assert gnn.incremental_capacity == gnn.config.max_events

    def test_open_session_requires_fit(self):
        with pytest.raises(NotFittedError):
            GNNPipeline().open_session()

    def test_session_bit_equal_to_windowed_predict(self, gnn, dataset):
        """The tentpole invariant: same events, same bits, per window."""
        session = gnn.open_session()
        assert isinstance(session, IncrementalSession)
        stream = dataset.samples[0].stream
        for window in split_by_time(stream, WINDOW_US):
            if not 0 < len(window) <= gnn.incremental_capacity:
                continue
            session.reset()
            session.process_stream(window)
            graph = build_event_graph(window, gnn.config)
            with no_grad():
                batch_scores = gnn.model(graph).data[0]
            assert np.array_equal(session.scores(), batch_scores)
            assert session.predict() == gnn.predict(window)

    def test_predict_event_gives_running_decision(self, gnn, dataset):
        session = gnn.open_session()
        stream = dataset.samples[1].stream
        n = min(len(stream), 20)
        decisions = [
            session.predict_event(
                int(stream.x[i]), int(stream.y[i]), int(stream.t[i]), int(stream.p[i])
            )
            for i in range(n)
        ]
        assert session.num_events == n
        assert decisions[-1] == session.predict()

    def test_session_instrumentation(self, gnn, dataset):
        obs = Instrumentation()
        gnn.instrument(obs)
        try:
            session = gnn.open_session()
            stream = dataset.samples[0].stream[:30]
            reports = session.process_stream(stream)
        finally:
            gnn.instrument(None)
        reg = obs.registry
        labels = {"paradigm": "GNN"}
        assert reg.counter_value("incremental_events_total", labels) == 30
        macs = sum(r.macs for r in reports)
        assert reg.counter_value("incremental_macs_total", labels) == macs
        assert session.macs_total == macs
        snap = obs.snapshot()
        hist = [
            h
            for h in snap["metrics"]["histograms"]
            if h["name"] == "incremental_event_latency_us"
        ]
        assert hist and hist[0]["count"] == 30

    def test_uninstrumented_session_still_counts_macs(self, gnn, dataset):
        session = gnn.open_session()
        reports = session.process_stream(dataset.samples[0].stream[:10])
        assert session.macs_total == sum(r.macs for r in reports)
        assert session.num_events == len(reports)
        # The documented counter contract: num_events is per-window
        # (cleared by reset), macs_total is per-session (it survives).
        session.reset()
        assert session.num_events == 0
        assert session.macs_total == sum(r.macs for r in reports)  # lifetime


class TestExecutorEventMode:
    def _run(self, pipe, stream, mode, **kw):
        defaults = dict(window_us=WINDOW_US, service=ServiceModel(100.0, 0.1))
        defaults.update(kw)
        ex = StreamingExecutor(pipe, serve_mode=mode, **defaults)
        return ex.run(stream), ex

    def test_rejects_bad_mode(self, gnn):
        with pytest.raises(ValueError):
            StreamingExecutor(gnn, window_us=WINDOW_US, serve_mode="stream")

    def test_event_mode_matches_window_mode(self, gnn, dataset):
        stream = dataset.samples[0].stream
        r_win, _ = self._run(gnn, stream, "window")
        r_evt, ex = self._run(gnn, stream, "event")
        assert r_evt.predictions == r_win.predictions
        assert scrubbed(r_evt) == scrubbed(r_win)
        assert r_evt.incremental_windows == r_evt.processed > 0
        assert r_evt.incremental_events == r_evt.processed_events
        assert r_evt.incremental_macs > 0
        assert r_evt.incremental_fallbacks == 0
        assert r_evt.accounting_errors() == []
        # Window mode reports no fast-path work at all.
        assert r_win.incremental_windows == r_win.incremental_macs == 0
        # The fast path traces under its own span name.
        import json

        blob = json.dumps(ex.snapshot())
        assert "call:GNN[incremental]" in blob

    def test_equivalence_under_tiered_shedding(self, gnn):
        """Same decisions and same shed/expiry record in both modes."""
        from repro.streaming import make_bursty_stream

        stream = make_bursty_stream(
            num_windows=25,
            window_us=WINDOW_US,
            base_events_per_window=40,
            burst_factor=4.0,
            burst_windows=(5, 15),
            seed=7,
        )
        kw = dict(
            service=ServiceModel(base_us=2000.0, per_event_us=150.0),
            queue_capacity=4,
            shed_policy=ShedPolicy(high_watermark=2, low_watermark=1),
        )
        r_win, _ = self._run(gnn, stream, "window", **kw)
        r_evt, _ = self._run(gnn, stream, "event", **kw)
        assert r_win.ledger.total_events_shed > 0  # shedding really engaged
        assert len(r_win.tiers_engaged) >= 2
        assert r_evt.predictions == r_win.predictions
        assert scrubbed(r_evt) == scrubbed(r_win)
        assert r_evt.incremental_windows > 0
        assert r_evt.accounting_errors() == []

    def test_oversize_windows_fall_back_to_windowed(self, dataset):
        """Windows beyond incremental_capacity are recomputed windowed."""
        small = GNNPipeline(
            config=GraphBuildConfig(
                radius=4.0, time_scale_us=5000.0, max_events=8, max_degree=10
            ),
            epochs=1,
            seed=0,
        )
        small.fit(dataset)
        stream = dataset.samples[0].stream  # windows far larger than 8
        r_win, _ = self._run(small, stream, "window")
        r_evt, ex = self._run(small, stream, "event")
        assert r_evt.predictions == r_win.predictions
        assert r_evt.incremental_windows == 0
        assert r_evt.processed > 0
        import json

        blob = json.dumps(ex.snapshot())
        assert "call:GNN[recompute]" in blob
        assert "call:GNN[incremental]" not in blob

    def test_fast_path_trip_recomputes_windowed(self, gnn, dataset):
        """A broken fast path falls back to windowed on the same stage."""

        class BrokenFastPath(GNNPipeline):
            def open_session(self):
                raise RuntimeError("fast path down")

        broken = BrokenFastPath(epochs=1, seed=0)
        broken.model = gnn.model  # reuse the fitted weights
        broken._resolution = gnn._resolution
        stream = dataset.samples[0].stream
        r_win, _ = self._run(gnn, stream, "window")
        r_evt, _ = self._run(broken, stream, "event")
        # Every attempt trips the fast path until its probation breaker
        # opens at the policy threshold; the open breaker then refuses
        # the remaining eligible windows.  Either way each window is
        # served by the GNN stage through windowed recompute.
        threshold = BreakerPolicy().failure_threshold
        assert r_evt.incremental_fallbacks == threshold
        assert r_evt.incremental_refusals == r_evt.processed - threshold
        assert r_evt.incremental_windows == 0
        assert r_evt.predictions == r_win.predictions
        assert r_evt.served_by == {"GNN": r_evt.processed}
        assert r_evt.accounting_errors() == []

    def test_breaker_forces_fallback_to_windowed_stage(self, gnn, dataset):
        """When the whole stage dies, the breaker routes to the fallback."""

        class DeadStage(GNNPipeline):
            def open_session(self):
                raise RuntimeError("down")

            def _predict(self, stream):
                raise RuntimeError("down")

        dead = DeadStage(epochs=1, seed=0)
        dead.model = gnn.model
        dead._resolution = gnn._resolution
        stream = dataset.samples[0].stream
        report, ex = self._run(
            dead,
            stream,
            "event",
            fallbacks=[("backup", count_mod)],
            breaker_policy=BreakerPolicy(failure_threshold=2, cooldown_calls=50),
        )
        # The fast path trips until its probation breaker opens at the
        # shared threshold; by then the stage breaker (fed by the failing
        # windowed recomputes) is open too, so later windows never reach
        # the fast-path gate — no refusals are charged.
        assert report.incremental_fallbacks == 2
        assert report.incremental_refusals == 0
        assert report.served_by == {"backup": report.processed}
        assert report.processed == report.offered
        assert any(
            t.to_state.value == "open" for t in ex.breakers["GNN"].transitions
        )
        assert report.accounting_errors() == []
