"""Tests for functional ops, layers, losses and optimizers."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor
from repro.nn import functional as F

from .test_nn_tensor import check_grad, numerical_grad


class TestConv2d:
    def test_forward_matches_direct(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 1, 5, 5))
        w = rng.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        # Direct cross-correlation at one location.
        expected = (x[0, 0, 1:4, 1:4] * w[0, 0]).sum()
        assert out[0, 0, 1, 1] == pytest.approx(expected)
        assert out.shape == (1, 1, 3, 3)

    def test_padding_and_stride_shapes(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        assert F.conv2d(x, w, padding=1).shape == (2, 4, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 4, 4, 4)

    def test_gradcheck(self):
        check_grad(
            lambda x, w: F.conv2d(x, w, stride=1, padding=1),
            (2, 2, 4, 4),
            (3, 2, 3, 3),
            tol=1e-4,
        )

    def test_gradcheck_with_bias(self):
        check_grad(
            lambda x, w, b: F.conv2d(x, w, b, stride=2, padding=1),
            (1, 2, 5, 5),
            (2, 2, 3, 3),
            (2,),
            tol=1e-4,
        )

    def test_channel_mismatch(self):
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_kernel_too_big(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 5, 5))))

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((4, 4))), Tensor(np.zeros((1, 1, 3, 3))))


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        assert out.data[0, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_max_pool_gradcheck(self):
        # Use distinct values so argmax is unambiguous for finite differences.
        rng = np.random.default_rng(3)
        arr = rng.permutation(32).astype(np.float64).reshape(1, 2, 4, 4)
        t = Tensor(arr, requires_grad=True)
        F.max_pool2d(t, 2).sum().backward()
        num = numerical_grad(
            lambda x: F.max_pool2d(Tensor(x), 2).sum().item(), arr.copy()
        )
        np.testing.assert_allclose(t.grad, num, atol=1e-5)

    def test_avg_pool_values(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        out = F.avg_pool2d(x, 2)
        assert np.allclose(out.data, 1.0)

    def test_avg_pool_gradcheck(self):
        check_grad(lambda x: F.avg_pool2d(x, 2), (1, 2, 4, 4), tol=1e-5)

    def test_pool_wrong_ndim(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((4, 4))), 2)
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(np.zeros((4, 4))), 2)


class TestSoftmaxFamily:
    def test_softmax_normalises(self):
        x = Tensor(np.random.default_rng(0).standard_normal((3, 5)))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), 1.0)
        assert np.all(s.data > 0)

    def test_log_softmax_consistent(self):
        x = Tensor(np.random.default_rng(0).standard_normal((3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x, axis=1).data, np.log(F.softmax(x, axis=1).data)
        )

    def test_softmax_stable_large_values(self):
        x = Tensor(np.array([[1000.0, 1001.0]]))
        s = F.softmax(x, axis=1)
        assert np.isfinite(s.data).all()

    def test_softmax_gradcheck(self):
        check_grad(lambda x: F.softmax(x, axis=1) * Tensor(np.arange(8.0).reshape(2, 4)), (2, 4))


class TestStructuralOps:
    def test_stack_gradcheck(self):
        check_grad(lambda a, b: F.stack([a, b], axis=0), (3,), (3,))

    def test_concat_gradcheck(self):
        check_grad(lambda a, b: F.concatenate([a, b], axis=1), (2, 3), (2, 2))

    def test_stack_empty(self):
        with pytest.raises(ValueError):
            F.stack([])
        with pytest.raises(ValueError):
            F.concatenate([])

    def test_where_routes_gradient(self):
        cond = np.array([True, False])
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        F.where(cond, a, b).sum().backward()
        assert a.grad.tolist() == [1.0, 0.0]
        assert b.grad.tolist() == [0.0, 1.0]

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = F.pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))
        assert F.pad2d(x, 0) is x
        with pytest.raises(ValueError):
            F.pad2d(x, -1)

    def test_dropout_train_eval(self):
        x = Tensor(np.ones((100,)), requires_grad=True)
        rng = np.random.default_rng(0)
        out = F.dropout(x, 0.5, rng, training=True)
        assert (out.data == 0).sum() > 20
        assert F.dropout(x, 0.5, rng, training=False) is x
        with pytest.raises(ValueError):
            F.dropout(x, 1.0, rng)


class TestLayers:
    def test_linear_shapes_and_grad(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((5, 4)))
        out = layer(x)
        assert out.shape == (5, 3)
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_conv_layer(self):
        layer = nn.Conv2d(2, 4, 3, padding=1)
        out = layer(Tensor(np.zeros((1, 2, 8, 8))))
        assert out.shape == (1, 4, 8, 8)

    def test_conv_validation(self):
        with pytest.raises(ValueError):
            nn.Conv2d(1, 1, 0)

    def test_sequential(self):
        model = nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(2 * 4 * 4, 3),
        )
        out = model(Tensor(np.random.default_rng(0).standard_normal((2, 1, 8, 8))))
        assert out.shape == (2, 3)
        assert len(model) == 5
        assert isinstance(model[1], nn.ReLU)

    def test_parameters_recursion(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.Linear(3, 4))
        assert len(model.parameters()) == 4
        assert model.num_parameters() == 2 * 3 + 3 + 3 * 4 + 4

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_dropout_layer_eval_identity(self):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones(50))
        assert np.array_equal(layer(x).data, x.data)

    def test_batchnorm_2d_normalises(self):
        bn = nn.BatchNorm(4)
        x = Tensor(np.random.default_rng(0).standard_normal((64, 4)) * 5 + 3)
        out = bn(x)
        assert abs(out.data.mean()) < 0.1
        assert abs(out.data.std() - 1.0) < 0.1

    def test_batchnorm_4d(self):
        bn = nn.BatchNorm(3)
        x = Tensor(np.random.default_rng(0).standard_normal((8, 3, 4, 4)))
        assert bn(x).shape == (8, 3, 4, 4)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm(2, momentum=0.5)
        x = Tensor(np.random.default_rng(0).standard_normal((32, 2)) + 10)
        bn(x)
        bn.eval()
        out_eval = bn(Tensor(np.full((4, 2), 10.0)))
        # Running mean has moved halfway to ~10; output should be small-ish.
        assert np.all(np.abs(out_eval.data) < 10)

    def test_batchnorm_wrong_ndim(self):
        with pytest.raises(ValueError):
            nn.BatchNorm(2)(Tensor(np.zeros((2, 2, 2))))

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        state = model.state_dict()
        assert len(state) == 4
        # Perturb, reload, verify restoration.
        for p in model.parameters():
            p.data += 1.0
        model.load_state_dict(state)
        for key, arr in model.state_dict().items():
            np.testing.assert_array_equal(arr, state[key])

    def test_load_state_dict_missing_key(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        model = nn.Linear(2, 2)
        state = {k: np.zeros((9, 9)) for k in model.state_dict()}
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(10))

    def test_cross_entropy_perfect(self):
        logits = Tensor(np.eye(3) * 100, requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_grad_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        nn.cross_entropy(logits, np.array([1])).backward()
        # Gradient should push class 1 up (negative grad) and others down.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = nn.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert nn.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestOptimizers:
    def _quadratic_descent(self, make_opt, steps=200):
        target = np.array([3.0, -2.0])
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = make_opt([p])
        for _ in range(steps):
            opt.zero_grad()
            loss = ((p - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        return p.data, target

    def test_sgd_converges(self):
        got, target = self._quadratic_descent(lambda ps: nn.SGD(ps, lr=0.1))
        np.testing.assert_allclose(got, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        got, target = self._quadratic_descent(lambda ps: nn.SGD(ps, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(got, target, atol=1e-3)

    def test_adam_converges(self):
        got, target = self._quadratic_descent(lambda ps: nn.Adam(ps, lr=0.1), steps=500)
        np.testing.assert_allclose(got, target, atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (p * 0.0).sum().backward()  # zero task gradient
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_skip_params_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.Adam([p], lr=0.1)
        opt.step()  # no grad accumulated: must be a no-op
        assert p.data[0] == 1.0

    def test_validation(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            nn.SGD([p], lr=0)
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)
        with pytest.raises(ValueError):
            nn.SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            nn.Adam([p], betas=(1.0, 0.9))


class TestEndToEndTraining:
    def test_mlp_learns_xor(self):
        rng = np.random.default_rng(0)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float64)
        y = np.array([0, 1, 1, 0])
        model = nn.Sequential(
            nn.Linear(2, 8, rng=rng), nn.Tanh(), nn.Linear(8, 2, rng=rng)
        )
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = nn.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert nn.accuracy(model(Tensor(x)), y) == 1.0

    def test_small_cnn_overfits(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 1, 8, 8))
        y = np.arange(8) % 2
        model = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 2, rng=rng),
        )
        opt = nn.Adam(model.parameters(), lr=0.01)
        for _ in range(60):
            opt.zero_grad()
            loss = nn.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert nn.accuracy(model(Tensor(x)), y) == 1.0
