"""Tests for the composable fault models (repro.reliability.faults)."""

import numpy as np
import pytest

from repro.events import AERCodec, EventStream, Resolution
from repro.reliability import (
    AERBitFlips,
    BurstyDrop,
    DeadPixels,
    FaultChain,
    HotPixels,
    OutOfOrderCorruption,
    PolarityFlip,
    StuckPixels,
    TimestampJitter,
    UniformDrop,
    apply_fault,
    default_fault_profile,
)

RES = Resolution(24, 20)


def make_stream(n=3000, width=24, height=20, max_dt=40, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


class TestDeterminism:
    @pytest.mark.parametrize(
        "fault",
        [
            DeadPixels(0.2),
            StuckPixels(0.2, polarity=-1),
            HotPixels(0.02, rate_hz=400.0),
            UniformDrop(0.4),
            BurstyDrop(0.4, burst_us=2000),
            TimestampJitter(500.0),
            OutOfOrderCorruption(0.1),
            PolarityFlip(0.3),
            AERBitFlips(0.01),
        ],
    )
    def test_same_seed_same_stream(self, fault):
        s = make_stream()
        assert fault(s, seed=7) == fault(s, seed=7)

    def test_different_seed_differs(self):
        s = make_stream()
        fault = UniformDrop(0.4)
        assert not (fault(s, seed=1) == fault(s, seed=2))

    def test_chain_determinism(self):
        s = make_stream()
        chain = default_fault_profile(0.7)
        assert chain(s, seed=3) == chain(s, seed=3)

    def test_input_never_mutated(self):
        s = make_stream()
        before = s.raw.copy()
        for fault in (StuckPixels(0.5), PolarityFlip(0.5), OutOfOrderCorruption(0.5)):
            fault(s, seed=0)
        assert np.array_equal(s.raw, before)


class TestPixelFaults:
    def test_dead_pixels_silence_pixels(self):
        s = make_stream()
        out = DeadPixels(0.5)(s, seed=0)
        assert len(out) < len(s)
        # The surviving events cover at most half the array.
        active = np.unique(out.pixel_index())
        assert active.size <= RES.num_pixels // 2

    def test_dead_pixels_zero_fraction_identity(self):
        s = make_stream()
        assert DeadPixels(0.0)(s, seed=0) == s

    def test_dead_pixels_full_fraction_empties(self):
        s = make_stream()
        assert len(DeadPixels(1.0)(s, seed=0)) == 0

    def test_stuck_pixels_latch_polarity(self):
        s = make_stream()
        out = StuckPixels(1.0, polarity=-1)(s, seed=0)
        assert len(out) == len(s)
        assert np.all(out.p == -1)

    def test_hot_pixels_add_concentrated_events(self):
        s = make_stream()
        out = HotPixels(0.05, rate_hz=2000.0)(s, seed=0)
        assert len(out) > len(s)
        assert out.validate() == []  # merged stream stays time-ordered

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            DeadPixels(1.5)
        with pytest.raises(ValueError, match="polarity"):
            StuckPixels(0.1, polarity=0)


class TestDrops:
    def test_uniform_drop_rate(self):
        s = make_stream(n=20_000)
        out = UniformDrop(0.5)(s, seed=0)
        assert 0.45 < 1 - len(out) / len(s) < 0.55

    def test_bursty_drop_is_bursty(self):
        s = make_stream(n=20_000)
        burst_us = 2000
        out = BurstyDrop(0.5, burst_us=burst_us)(s, seed=0)
        assert 0.3 < 1 - len(out) / len(s) < 0.7
        # Losses are whole windows: every surviving window is complete.
        t0 = int(s.t[0])
        in_bins = np.unique((s.t - t0) // burst_us)
        out_bins, out_counts = np.unique(
            (out.t - t0) // burst_us, return_counts=True
        )
        in_counts = {
            int(b): int(c)
            for b, c in zip(*np.unique((s.t - t0) // burst_us, return_counts=True))
        }
        assert out_bins.size < in_bins.size
        for b, c in zip(out_bins, out_counts):
            assert in_counts[int(b)] == int(c)


class TestTimingFaults:
    def test_jitter_keeps_stream_valid(self):
        s = make_stream()
        out = TimestampJitter(300.0)(s, seed=0)
        assert len(out) == len(s)
        assert out.validate() == []
        assert not np.array_equal(out.t, s.t)

    def test_out_of_order_invalidates(self):
        s = make_stream()
        out = OutOfOrderCorruption(0.1, shift_us=10_000)(s, seed=0)
        problems = out.validate()
        assert problems and "out-of-order" in problems[0]

    def test_out_of_order_zero_fraction_identity(self):
        s = make_stream()
        assert OutOfOrderCorruption(0.0)(s, seed=0) == s


class TestPolarityAndLink:
    def test_polarity_flip_rate(self):
        s = make_stream(n=20_000)
        out = PolarityFlip(0.5)(s, seed=0)
        flipped = np.mean(out.p != s.p)
        assert 0.45 < flipped < 0.55

    def test_aer_bitflips_quarantine_out_of_range(self):
        # 24x20 needs 5 bits each, covering 32/32 — flips can push x to
        # 24..31 or y to 20..31, which the decoder must drop.
        s = make_stream(n=5000)
        fault = AERBitFlips(0.02)
        out = fault(s, seed=0)
        stats = fault.last_decode_stats
        assert stats is not None
        assert stats.dropped_out_of_range > 0
        assert stats.num_events == len(out)
        assert out.validate() == []  # never an invalid stream

    def test_aer_bitflips_zero_probability_roundtrips(self):
        s = make_stream()
        fault = AERBitFlips(0.0)
        assert fault(s, seed=0) == s
        assert fault.last_decode_stats.num_dropped == 0

    def test_aer_bitflips_empty_stream(self):
        fault = AERBitFlips(0.1)
        out = fault(EventStream.empty(RES), seed=0)
        assert len(out) == 0
        assert fault.last_decode_stats.num_words == 0


class TestComposition:
    def test_then_builds_chain(self):
        chain = UniformDrop(0.2).then(PolarityFlip(0.1)).then(TimestampJitter(100.0))
        assert isinstance(chain, FaultChain)
        assert len(chain.models) == 3

    def test_chain_applies_in_order(self):
        s = make_stream()
        # Stuck-then-flip differs from flip-then-stuck on the stuck pixels.
        a = FaultChain([StuckPixels(1.0, polarity=1), PolarityFlip(1.0)])(s, seed=0)
        b = FaultChain([PolarityFlip(1.0), StuckPixels(1.0, polarity=1)])(s, seed=0)
        assert np.all(a.p == -1)
        assert np.all(b.p == 1)

    def test_apply_fault_none_is_identity(self):
        s = make_stream()
        assert apply_fault(None, s, seed=0) is s

    def test_default_profile_severity_zero_is_none(self):
        assert default_fault_profile(0.0) is None
        assert default_fault_profile(0.5) is not None
        with pytest.raises(ValueError, match="severity"):
            default_fault_profile(1.5)
