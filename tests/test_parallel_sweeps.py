"""End-to-end tests of the unified sweep API (repro.parallel.api).

The acceptance criterion of the sharded executor: for every sweep kind
(comparison, robustness, streaming) the results AND the merged
observability snapshot are byte-identical across worker counts
{1, 2, 4}; the legacy entry points are equivalent shims; the frozen
config dataclasses construct pipelines identical to the positional
keyword API.
"""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    CNNPipeline,
    GNNConfig,
    GNNPipeline,
    SNNConfig,
    SNNPipeline,
    make_pipeline,
    run_comparison,
)
from repro.datasets import make_shapes_dataset, train_test_split
from repro.events import Resolution
from repro.observability import Instrumentation, to_json
from repro.parallel import (
    CacheConfig,
    ParallelConfig,
    SweepSpec,
    reconcile_shards,
    run_sweep,
)
from repro.reliability import run_robustness_sweep
from repro.streaming import run_streaming_sweep
from repro.streaming.sweep import make_bursty_stream

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def split():
    ds = make_shapes_dataset(num_per_class=3, resolution=Resolution(16, 16), seed=3)
    return train_test_split(ds, 0.4, np.random.default_rng(0))


@pytest.fixture(scope="module")
def configs():
    return {
        "SNN": SNNConfig(num_steps=6, hidden=8, epochs=2),
        "CNN": CNNConfig(base_width=4, epochs=2),
        "GNN": GNNConfig(max_events=60, hidden=6, epochs=2),
    }


@pytest.fixture(scope="module")
def stream():
    return make_bursty_stream(
        resolution=Resolution(16, 16), num_windows=30, seed=5
    )


@pytest.fixture(scope="module")
def comparison_runs(split, configs):
    train, test = split
    runs = {}
    for n in WORKER_COUNTS:
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines=configs,
            parallel=ParallelConfig(n_workers=n),
        )
        runs[n] = run_sweep(spec)
    return runs


@pytest.fixture(scope="module")
def robustness_runs(split, configs):
    train, test = split
    runs = {}
    for n in WORKER_COUNTS:
        spec = SweepSpec(
            kind="robustness",
            train=train,
            test=test,
            conditions=(0.0, 0.4),
            pipelines=configs,
            seed=0,
            parallel=ParallelConfig(n_workers=n),
        )
        runs[n] = run_sweep(spec)
    return runs


@pytest.fixture(scope="module")
def streaming_runs(stream):
    runs = {}
    for n in WORKER_COUNTS:
        spec = SweepSpec(
            kind="streaming",
            stream=stream,
            window_us=10_000,
            conditions=(0.5, 2.0),
            seed=0,
            parallel=ParallelConfig(n_workers=n),
        )
        runs[n] = run_sweep(spec)
    return runs


def _comparison_bytes(result):
    return repr({name: vars(m) for name, m in sorted(result.metrics.items())})


def _curve_bytes(result):
    return repr(
        {k: [p.to_dict() for p in v] for k, v in sorted(result.curves.items())}
    )


class TestComparisonBitIdentity:
    def test_results_identical_across_worker_counts(self, comparison_runs):
        reference = _comparison_bytes(comparison_runs[1].result)
        for n in WORKER_COUNTS[1:]:
            assert _comparison_bytes(comparison_runs[n].result) == reference

    def test_snapshots_byte_identical(self, comparison_runs):
        reference = to_json(comparison_runs[1].snapshot)
        for n in WORKER_COUNTS[1:]:
            assert to_json(comparison_runs[n].snapshot) == reference

    def test_merged_snapshot_reconciles(self, comparison_runs):
        for res in comparison_runs.values():
            assert (
                reconcile_shards(res.snapshot, res.num_shards, res.num_cells) == []
            )

    def test_cache_counters_in_snapshot(self, comparison_runs):
        res = comparison_runs[2]
        names = {s["name"] for s in res.snapshot["metrics"]["counters"]}
        assert "repr_cache_misses_total" in names
        assert res.cache_stats["misses"] > 0

    def test_shard_plan_shape(self, comparison_runs):
        res = comparison_runs[1]
        assert res.num_shards == 3
        assert res.num_cells == 3

    def test_condition_replication_over_seeds(self, split, configs):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            conditions=(0, 1),
            pipelines=configs,
            parallel=ParallelConfig(n_workers=2),
        )
        res = run_sweep(spec)
        assert isinstance(res.result, list) and len(res.result) == 2
        assert res.num_cells == 6


class TestRobustnessBitIdentity:
    def test_curves_identical_across_worker_counts(self, robustness_runs):
        reference = _curve_bytes(robustness_runs[1].result)
        for n in WORKER_COUNTS[1:]:
            assert _curve_bytes(robustness_runs[n].result) == reference

    def test_snapshots_byte_identical(self, robustness_runs):
        reference = to_json(robustness_runs[1].snapshot)
        for n in WORKER_COUNTS[1:]:
            assert to_json(robustness_runs[n].snapshot) == reference

    def test_merged_snapshot_reconciles(self, robustness_runs):
        for res in robustness_runs.values():
            assert (
                reconcile_shards(res.snapshot, res.num_shards, res.num_cells) == []
            )


class TestStreamingBitIdentity:
    def test_curves_identical_across_worker_counts(self, streaming_runs):
        reference = _curve_bytes(streaming_runs[1].result)
        for n in WORKER_COUNTS[1:]:
            assert _curve_bytes(streaming_runs[n].result) == reference

    def test_snapshots_byte_identical(self, streaming_runs):
        reference = to_json(streaming_runs[1].snapshot)
        for n in WORKER_COUNTS[1:]:
            assert to_json(streaming_runs[n].snapshot) == reference


class TestThreadBackend:
    """Explicit thread-backend coverage: results and snapshots must be
    byte-identical to serial at every worker count (auto only exercises
    threads on single-CPU hosts)."""

    def _run(self, split, configs, n, backend, cache=None):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines=configs,
            cache=cache if cache is not None else CacheConfig(),
            parallel=ParallelConfig(n_workers=n, backend=backend),
        )
        return run_sweep(spec)

    @pytest.mark.parametrize("n", WORKER_COUNTS)
    def test_thread_matches_serial(self, split, configs, comparison_runs, n):
        serial = comparison_runs[1]
        threaded = self._run(split, configs, n, "thread")
        assert _comparison_bytes(threaded.result) == _comparison_bytes(serial.result)
        assert to_json(threaded.snapshot) == to_json(serial.snapshot)


class TestSharedCache:
    def _spec(self, split, configs, shared, n_workers=4):
        train, test = split
        return SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            conditions=(0, 1),
            pipelines=configs,
            cache=CacheConfig(shared=shared),
            parallel=ParallelConfig(n_workers=n_workers, backend="thread"),
        )

    def test_shared_cache_same_results_fewer_misses(self, split, configs):
        unshared = run_sweep(self._spec(split, configs, shared=False))
        shared = run_sweep(self._spec(split, configs, shared=True))
        a = [_comparison_bytes(r) for r in unshared.result]
        b = [_comparison_bytes(r) for r in shared.result]
        assert a == b
        # Seed-replicated cells share encodings (encoder configs exclude
        # the training seed), so one sweep-wide cache must strictly beat
        # per-shard caches on misses.
        assert shared.cache_stats["misses"] < unshared.cache_stats["misses"]
        assert shared.cache_stats["hits"] > unshared.cache_stats["hits"]

    def test_shared_cache_keeps_snapshot_scheduling_free(self, split, configs):
        # Cache counters depend on shard scheduling when the cache is
        # shared, so they must stay out of the merged snapshot …
        one = run_sweep(self._spec(split, configs, shared=True, n_workers=1))
        four = run_sweep(self._spec(split, configs, shared=True, n_workers=4))
        names = {c["name"] for c in four.snapshot["metrics"]["counters"]}
        assert not any(name.startswith("repr_cache") for name in names)
        # … which keeps the snapshot byte-identical across worker counts.
        assert to_json(one.snapshot) == to_json(four.snapshot)


class TestResumeCrashSafety:
    def _spec(self, split, configs, checkpoint_dir):
        train, test = split
        return SweepSpec(
            kind="robustness",
            train=train,
            test=test,
            conditions=(0.0, 0.4),
            pipelines=configs,
            seed=0,
            options={"checkpoint_dir": checkpoint_dir},
            parallel=ParallelConfig(n_workers=1),
        )

    def test_truncated_state_file_resumes_cleanly(self, split, configs, tmp_path):
        first = run_sweep(self._spec(split, configs, tmp_path))
        state = tmp_path / "sweep_state.json"
        assert state.exists()
        payload = state.read_text()
        # Simulate a writer killed mid-write: a truncated JSON document.
        state.write_text(payload[: len(payload) // 2])
        second = run_sweep(self._spec(split, configs, tmp_path))  # must not raise
        # Model checkpoints still resume (from_checkpoint flips), but the
        # measured curves are unchanged.
        for name in first.result.curves:
            assert first.result.accuracies(name) == second.result.accuracies(name)
        # State writes are tmp+rename; no stray temp files may survive.
        assert not list(tmp_path.glob("*.tmp"))

    def test_garbage_state_file_resumes_cleanly(self, split, configs, tmp_path):
        state = tmp_path / "sweep_state.json"
        state.parent.mkdir(parents=True, exist_ok=True)
        state.write_text("[1, 2, 3]")  # valid JSON, wrong shape
        result = run_sweep(self._spec(split, configs, tmp_path))
        assert set(result.result.curves) == {"SNN", "CNN", "GNN"}


class TestShimEquivalence:
    def test_run_robustness_sweep_shim(self, split, configs, robustness_runs):
        train, test = split
        with pytest.warns(DeprecationWarning, match="run_robustness_sweep"):
            legacy = run_robustness_sweep(
                train, test, severities=(0.0, 0.4), pipelines=dict(configs), seed=0
            )
        assert _curve_bytes(legacy) == _curve_bytes(robustness_runs[1].result)

    def test_run_streaming_sweep_shim(self, stream, streaming_runs):
        with pytest.warns(DeprecationWarning, match="run_streaming_sweep"):
            legacy = run_streaming_sweep(
                stream, 10_000, load_factors=(0.5, 2.0), seed=0
            )
        assert _curve_bytes(legacy) == _curve_bytes(streaming_runs[1].result)

    def test_run_comparison_parallel_knob(self, split, configs, comparison_runs):
        train, test = split
        legacy = run_comparison(train, test, pipelines=dict(configs))
        routed = run_comparison(
            train,
            test,
            pipelines=dict(configs),
            parallel=ParallelConfig(n_workers=2),
        )
        assert _comparison_bytes(legacy) == _comparison_bytes(routed)
        assert _comparison_bytes(routed) == _comparison_bytes(
            comparison_runs[1].result
        )


class TestConfigConstructors:
    @pytest.mark.parametrize(
        "config,cls",
        [
            (SNNConfig(num_steps=6, hidden=8, epochs=2), SNNPipeline),
            (CNNConfig(base_width=4, epochs=2), CNNPipeline),
            (GNNConfig(max_events=60, hidden=6, epochs=2), GNNPipeline),
        ],
    )
    def test_from_config_matches_kwargs(self, config, cls):
        built = cls.from_config(config)
        direct = cls(**config.kwargs())
        assert type(built) is cls
        for key, value in config.kwargs().items():
            assert getattr(direct, key) == getattr(built, key)

    def test_make_pipeline_dispatch(self):
        assert isinstance(make_pipeline(SNNConfig()), SNNPipeline)
        assert isinstance(make_pipeline(CNNConfig()), CNNPipeline)
        assert isinstance(make_pipeline(GNNConfig()), GNNPipeline)
        with pytest.raises(ValueError, match="not a pipeline config"):
            make_pipeline(object())

    def test_existing_kwargs_keep_working(self):
        legacy = SNNPipeline(num_steps=6, hidden=8, epochs=2, seed=4)
        assert legacy.num_steps == 6 and legacy.seed == 4


class TestValidation:
    def test_shared_instrumentation_requires_serial(self, split, configs):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines=configs,
            instrumentation=Instrumentation(),
            parallel=ParallelConfig(n_workers=2),
        )
        with pytest.raises(ValueError, match="serial backend"):
            run_sweep(spec)

    def test_instances_rejected_on_process_backend(self, split):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines={
                "SNN": SNNPipeline(epochs=1),
                "CNN": CNNPipeline(epochs=1),
                "GNN": GNNPipeline(epochs=1),
            },
            parallel=ParallelConfig(n_workers=2, backend="process"),
        )
        with pytest.raises(ValueError, match="config dataclasses"):
            run_sweep(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            run_sweep(SweepSpec(kind="ablation"))

    def test_cache_knob_reaches_the_shards(self, split, configs):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines=configs,
            cache=CacheConfig(enabled=False),
            parallel=ParallelConfig(n_workers=1),
        )
        res = run_sweep(spec)
        assert res.cache_stats == {}
