"""End-to-end tests of the unified sweep API (repro.parallel.api).

The acceptance criterion of the sharded executor: for every sweep kind
(comparison, robustness, streaming) the results AND the merged
observability snapshot are byte-identical across worker counts
{1, 2, 4}; the legacy entry points are equivalent shims; the frozen
config dataclasses construct pipelines identical to the positional
keyword API.
"""

import numpy as np
import pytest

from repro.core import (
    CNNConfig,
    CNNPipeline,
    GNNConfig,
    GNNPipeline,
    SNNConfig,
    SNNPipeline,
    make_pipeline,
    run_comparison,
)
from repro.datasets import make_shapes_dataset, train_test_split
from repro.events import Resolution
from repro.observability import Instrumentation, to_json
from repro.parallel import (
    CacheConfig,
    ParallelConfig,
    SweepSpec,
    reconcile_shards,
    run_sweep,
)
from repro.reliability import run_robustness_sweep
from repro.streaming import run_streaming_sweep
from repro.streaming.sweep import make_bursty_stream

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def split():
    ds = make_shapes_dataset(num_per_class=3, resolution=Resolution(16, 16), seed=3)
    return train_test_split(ds, 0.4, np.random.default_rng(0))


@pytest.fixture(scope="module")
def configs():
    return {
        "SNN": SNNConfig(num_steps=6, hidden=8, epochs=2),
        "CNN": CNNConfig(base_width=4, epochs=2),
        "GNN": GNNConfig(max_events=60, hidden=6, epochs=2),
    }


@pytest.fixture(scope="module")
def stream():
    return make_bursty_stream(
        resolution=Resolution(16, 16), num_windows=30, seed=5
    )


@pytest.fixture(scope="module")
def comparison_runs(split, configs):
    train, test = split
    runs = {}
    for n in WORKER_COUNTS:
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines=configs,
            parallel=ParallelConfig(n_workers=n),
        )
        runs[n] = run_sweep(spec)
    return runs


@pytest.fixture(scope="module")
def robustness_runs(split, configs):
    train, test = split
    runs = {}
    for n in WORKER_COUNTS:
        spec = SweepSpec(
            kind="robustness",
            train=train,
            test=test,
            conditions=(0.0, 0.4),
            pipelines=configs,
            seed=0,
            parallel=ParallelConfig(n_workers=n),
        )
        runs[n] = run_sweep(spec)
    return runs


@pytest.fixture(scope="module")
def streaming_runs(stream):
    runs = {}
    for n in WORKER_COUNTS:
        spec = SweepSpec(
            kind="streaming",
            stream=stream,
            window_us=10_000,
            conditions=(0.5, 2.0),
            seed=0,
            parallel=ParallelConfig(n_workers=n),
        )
        runs[n] = run_sweep(spec)
    return runs


def _comparison_bytes(result):
    return repr({name: vars(m) for name, m in sorted(result.metrics.items())})


def _curve_bytes(result):
    return repr(
        {k: [p.to_dict() for p in v] for k, v in sorted(result.curves.items())}
    )


class TestComparisonBitIdentity:
    def test_results_identical_across_worker_counts(self, comparison_runs):
        reference = _comparison_bytes(comparison_runs[1].result)
        for n in WORKER_COUNTS[1:]:
            assert _comparison_bytes(comparison_runs[n].result) == reference

    def test_snapshots_byte_identical(self, comparison_runs):
        reference = to_json(comparison_runs[1].snapshot)
        for n in WORKER_COUNTS[1:]:
            assert to_json(comparison_runs[n].snapshot) == reference

    def test_merged_snapshot_reconciles(self, comparison_runs):
        for res in comparison_runs.values():
            assert (
                reconcile_shards(res.snapshot, res.num_shards, res.num_cells) == []
            )

    def test_cache_counters_in_snapshot(self, comparison_runs):
        res = comparison_runs[2]
        names = {s["name"] for s in res.snapshot["metrics"]["counters"]}
        assert "repr_cache_misses_total" in names
        assert res.cache_stats["misses"] > 0

    def test_shard_plan_shape(self, comparison_runs):
        res = comparison_runs[1]
        assert res.num_shards == 3
        assert res.num_cells == 3

    def test_condition_replication_over_seeds(self, split, configs):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            conditions=(0, 1),
            pipelines=configs,
            parallel=ParallelConfig(n_workers=2),
        )
        res = run_sweep(spec)
        assert isinstance(res.result, list) and len(res.result) == 2
        assert res.num_cells == 6


class TestRobustnessBitIdentity:
    def test_curves_identical_across_worker_counts(self, robustness_runs):
        reference = _curve_bytes(robustness_runs[1].result)
        for n in WORKER_COUNTS[1:]:
            assert _curve_bytes(robustness_runs[n].result) == reference

    def test_snapshots_byte_identical(self, robustness_runs):
        reference = to_json(robustness_runs[1].snapshot)
        for n in WORKER_COUNTS[1:]:
            assert to_json(robustness_runs[n].snapshot) == reference

    def test_merged_snapshot_reconciles(self, robustness_runs):
        for res in robustness_runs.values():
            assert (
                reconcile_shards(res.snapshot, res.num_shards, res.num_cells) == []
            )


class TestStreamingBitIdentity:
    def test_curves_identical_across_worker_counts(self, streaming_runs):
        reference = _curve_bytes(streaming_runs[1].result)
        for n in WORKER_COUNTS[1:]:
            assert _curve_bytes(streaming_runs[n].result) == reference

    def test_snapshots_byte_identical(self, streaming_runs):
        reference = to_json(streaming_runs[1].snapshot)
        for n in WORKER_COUNTS[1:]:
            assert to_json(streaming_runs[n].snapshot) == reference


class TestShimEquivalence:
    def test_run_robustness_sweep_shim(self, split, configs, robustness_runs):
        train, test = split
        with pytest.warns(DeprecationWarning, match="run_robustness_sweep"):
            legacy = run_robustness_sweep(
                train, test, severities=(0.0, 0.4), pipelines=dict(configs), seed=0
            )
        assert _curve_bytes(legacy) == _curve_bytes(robustness_runs[1].result)

    def test_run_streaming_sweep_shim(self, stream, streaming_runs):
        with pytest.warns(DeprecationWarning, match="run_streaming_sweep"):
            legacy = run_streaming_sweep(
                stream, 10_000, load_factors=(0.5, 2.0), seed=0
            )
        assert _curve_bytes(legacy) == _curve_bytes(streaming_runs[1].result)

    def test_run_comparison_parallel_knob(self, split, configs, comparison_runs):
        train, test = split
        legacy = run_comparison(train, test, pipelines=dict(configs))
        routed = run_comparison(
            train,
            test,
            pipelines=dict(configs),
            parallel=ParallelConfig(n_workers=2),
        )
        assert _comparison_bytes(legacy) == _comparison_bytes(routed)
        assert _comparison_bytes(routed) == _comparison_bytes(
            comparison_runs[1].result
        )


class TestConfigConstructors:
    @pytest.mark.parametrize(
        "config,cls",
        [
            (SNNConfig(num_steps=6, hidden=8, epochs=2), SNNPipeline),
            (CNNConfig(base_width=4, epochs=2), CNNPipeline),
            (GNNConfig(max_events=60, hidden=6, epochs=2), GNNPipeline),
        ],
    )
    def test_from_config_matches_kwargs(self, config, cls):
        built = cls.from_config(config)
        direct = cls(**config.kwargs())
        assert type(built) is cls
        for key, value in config.kwargs().items():
            assert getattr(direct, key) == getattr(built, key)

    def test_make_pipeline_dispatch(self):
        assert isinstance(make_pipeline(SNNConfig()), SNNPipeline)
        assert isinstance(make_pipeline(CNNConfig()), CNNPipeline)
        assert isinstance(make_pipeline(GNNConfig()), GNNPipeline)
        with pytest.raises(ValueError, match="not a pipeline config"):
            make_pipeline(object())

    def test_existing_kwargs_keep_working(self):
        legacy = SNNPipeline(num_steps=6, hidden=8, epochs=2, seed=4)
        assert legacy.num_steps == 6 and legacy.seed == 4


class TestValidation:
    def test_shared_instrumentation_requires_serial(self, split, configs):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines=configs,
            instrumentation=Instrumentation(),
            parallel=ParallelConfig(n_workers=2),
        )
        with pytest.raises(ValueError, match="serial backend"):
            run_sweep(spec)

    def test_instances_rejected_on_process_backend(self, split):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines={
                "SNN": SNNPipeline(epochs=1),
                "CNN": CNNPipeline(epochs=1),
                "GNN": GNNPipeline(epochs=1),
            },
            parallel=ParallelConfig(n_workers=2),
        )
        with pytest.raises(ValueError, match="config dataclasses"):
            run_sweep(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            run_sweep(SweepSpec(kind="ablation"))

    def test_cache_knob_reaches_the_shards(self, split, configs):
        train, test = split
        spec = SweepSpec(
            kind="comparison",
            train=train,
            test=test,
            pipelines=configs,
            cache=CacheConfig(enabled=False),
            parallel=ParallelConfig(n_workers=1),
        )
        res = run_sweep(spec)
        assert res.cache_stats == {}
