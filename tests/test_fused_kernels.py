"""Equivalence suite: every fused kernel against its unfused reference.

The performance work in ``repro.nn`` (fused affine / affine+activation /
log-softmax / cross-entropy nodes), ``repro.events.aer`` (zero-copy
decode) and the ``Sequential`` pair-fusion rewrite all carry the same
contract: **bitwise** identity with the reference composition, forward
and gradients, including reduction tie-handling.  This suite is the
oracle check; the timed comparison lives in
``benchmarks/bench_hotpath_regression.py``.
"""

import threading

import numpy as np
import pytest

from repro.events import EventStream, Resolution
import contextlib

from repro.events.aer import AERCodec
from repro.nn import (
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    affine,
    affine_act,
    affine_act_reference,
    affine_reference,
    cross_entropy,
    cross_entropy_reference,
    log_softmax,
    log_softmax_reference,
    no_grad,
    stable_matmul,
)

RNG = np.random.default_rng(42)
SHAPES = [(5, 4), (1, 4), (3, 2, 4)]


def _null_ctx():
    return contextlib.nullcontext()


def _leaves(shape, out_features=6, bias=True):
    x = Tensor(RNG.normal(size=shape), requires_grad=True)
    w = Tensor(RNG.normal(size=(out_features, shape[-1])), requires_grad=True)
    b = Tensor(RNG.normal(size=(out_features,)), requires_grad=True) if bias else None
    return x, w, b


def _clone(t):
    if t is None:
        return None
    return Tensor(t.data.copy(), requires_grad=t.requires_grad)


def _grad_bits_equal(a, b):
    assert a is not None and b is not None
    assert a.dtype == b.dtype and a.shape == b.shape
    np.testing.assert_array_equal(a, b)


class TestAffine:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("bias", [True, False])
    @pytest.mark.parametrize("stable", [False, True])
    def test_forward_and_grads_bitwise(self, shape, bias, stable):
        x, w, b = _leaves(shape, bias=bias)
        xr, wr, br = _clone(x), _clone(w), _clone(b)
        ctx = stable_matmul() if stable else _null_ctx()
        with ctx:
            fused = affine(x, w, b)
            ref = affine_reference(xr, wr, br)
            np.testing.assert_array_equal(fused.data, ref.data)
            seed = RNG.normal(size=fused.shape)
            fused.backward(seed)
            ref.backward(seed.copy())
        _grad_bits_equal(x.grad, xr.grad)
        _grad_bits_equal(w.grad, wr.grad)
        if bias:
            _grad_bits_equal(b.grad, br.grad)


class TestAffineAct:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid"])
    def test_forward_and_grads_bitwise(self, shape, activation):
        x, w, b = _leaves(shape)
        xr, wr, br = _clone(x), _clone(w), _clone(b)
        fused = affine_act(x, w, b, activation)
        ref = affine_act_reference(xr, wr, br, activation)
        np.testing.assert_array_equal(fused.data, ref.data)
        seed = RNG.normal(size=fused.shape)
        fused.backward(seed)
        ref.backward(seed.copy())
        _grad_bits_equal(x.grad, xr.grad)
        _grad_bits_equal(w.grad, wr.grad)
        _grad_bits_equal(b.grad, br.grad)

    def test_relu_dead_zone_gets_zero_grad(self):
        x = Tensor([[-5.0, 5.0]], requires_grad=True)
        w = Tensor(np.eye(2), requires_grad=True)
        out = affine_act(x, w, None, "relu")
        out.backward(np.ones_like(out.data))
        assert x.grad[0, 0] == 0.0 and x.grad[0, 1] != 0.0

    def test_unknown_activation_rejected(self):
        x, w, b = _leaves((2, 4))
        with pytest.raises(ValueError, match="activation"):
            affine_act(x, w, b, "gelu")


class TestSequentialFusion:
    @pytest.mark.parametrize("act_cls", [ReLU, Tanh, Sigmoid])
    def test_fused_pairs_match_layerwise_execution(self, act_cls):
        rng = np.random.default_rng(0)
        model = Sequential(
            Linear(4, 8, rng=np.random.default_rng(1)),
            act_cls(),
            Linear(8, 3, rng=np.random.default_rng(2)),
        )
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        fused = model(x)
        # Reference: run each layer individually (no pair fusion).
        xr = Tensor(x.data.copy(), requires_grad=True)
        out = xr
        for layer in model.layers:
            out = layer(out)
        np.testing.assert_array_equal(fused.data, out.data)
        seed = rng.normal(size=fused.shape)
        fused.backward(seed)
        out.backward(seed.copy())
        _grad_bits_equal(x.grad, xr.grad)
        for p_f, p_r in zip(model.parameters(), model.parameters()):
            assert p_f.grad is not None


class TestLogSoftmaxAndCrossEntropy:
    @pytest.mark.parametrize("axis", [0, 1, -1])
    def test_log_softmax_bitwise(self, axis):
        x = Tensor(RNG.normal(size=(6, 5)), requires_grad=True)
        xr = _clone(x)
        fused = log_softmax(x, axis=axis)
        ref = log_softmax_reference(xr, axis=axis)
        np.testing.assert_array_equal(fused.data, ref.data)
        seed = RNG.normal(size=fused.shape)
        fused.backward(seed)
        ref.backward(seed.copy())
        _grad_bits_equal(x.grad, xr.grad)

    def test_cross_entropy_bitwise(self):
        logits = Tensor(RNG.normal(size=(7, 4)) * 10.0, requires_grad=True)
        ref_logits = _clone(logits)
        targets = np.array([0, 1, 2, 3, 0, 1, 2])
        fused = cross_entropy(logits, targets)
        ref = cross_entropy_reference(ref_logits, targets)
        np.testing.assert_array_equal(fused.data, ref.data)
        fused.backward()
        ref.backward()
        _grad_bits_equal(logits.grad, ref_logits.grad)

    def test_cross_entropy_extreme_logits_stay_finite(self):
        logits = Tensor(
            np.array([[1e4, -1e4, 0.0], [-1e4, 1e4, 0.0]]), requires_grad=True
        )
        loss = cross_entropy(logits, np.array([0, 1]))
        loss.backward()
        assert np.isfinite(loss.data)
        assert np.isfinite(logits.grad).all()


class TestReductionTies:
    """max/min backward split the gradient evenly among tied elements,
    and the direct min node must match the -max(-x) composition
    bit-for-bit (negation is an exact sign flip, so masks and splits
    coincide)."""

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max_ties_split_gradient_evenly(self, axis):
        data = np.array([[1.0, 2.0, 2.0], [2.0, 2.0, 0.0]])
        t = Tensor(data.copy(), requires_grad=True)
        out = t.max(axis=axis)
        out.backward(np.ones_like(out.data))
        mask = (data == data.max(axis=axis, keepdims=True)).astype(float)
        mask /= mask.sum(axis=axis, keepdims=True)
        np.testing.assert_array_equal(t.grad, mask)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_min_matches_negated_max_composition(self, axis):
        data = np.array([[1.0, 1.0, 3.0], [1.0, 2.0, 2.0]])
        t = Tensor(data.copy(), requires_grad=True)
        out = t.min(axis=axis)
        tr = Tensor(data.copy(), requires_grad=True)
        ref = -((-tr).max(axis=axis))
        np.testing.assert_array_equal(out.data, ref.data)
        seed = np.full(out.shape, 0.5)
        out.backward(seed)
        ref.backward(seed.copy())
        _grad_bits_equal(t.grad, tr.grad)


class TestZeroCopyAerDecode:
    def _stream(self, n=400, seed=9):
        rng = np.random.default_rng(seed)
        res = Resolution(32, 24)
        t = np.cumsum(rng.integers(0, 50, size=n)).astype(np.int64)
        x = rng.integers(0, res.width, size=n).astype(np.int32)
        y = rng.integers(0, res.height, size=n).astype(np.int32)
        p = rng.choice(np.array([-1, 1], dtype=np.int8), size=n)
        return EventStream.from_arrays(t, x, y, p, res)

    def test_fast_decode_matches_reference(self):
        enc = AERCodec(Resolution(32, 24))
        packet = enc.encode(self._stream())
        fast, fast_stats = enc.decode_with_stats(packet)
        ref, ref_stats = enc.decode_with_stats_reference(packet)
        assert fast.raw.dtype == ref.raw.dtype
        np.testing.assert_array_equal(fast.raw, ref.raw)
        assert fast.resolution == ref.resolution
        assert fast_stats == ref_stats

    def test_fast_decode_matches_reference_with_corruption(self):
        enc = AERCodec(Resolution(32, 24))
        words = enc.encode(self._stream(seed=11)).copy()
        # Garble address fields mid-packet: both decoders must drop the
        # same out-of-range words and report identical stats.
        words[20:200:13] ^= np.uint64((1 << enc.x_bits) - 1)
        words[25:200:17] ^= np.uint64(((1 << enc.y_bits) - 1) << enc.y_bits)
        fast, fast_stats = enc.decode_with_stats(words)
        ref, ref_stats = enc.decode_with_stats_reference(words)
        np.testing.assert_array_equal(fast.raw, ref.raw)
        assert fast_stats == ref_stats


class TestThreadLocalAutogradState:
    def test_no_grad_is_per_thread(self):
        inside = threading.Event()
        release = threading.Event()
        other_result = {}

        def other_thread():
            inside.wait(timeout=5)
            # This thread never entered no_grad: graphs must build.
            t = Tensor(np.ones(3), requires_grad=True)
            other_result["requires_grad"] = (t * 2).requires_grad
            release.set()

        worker = threading.Thread(target=other_thread)
        worker.start()
        with no_grad():
            inside.set()
            assert release.wait(timeout=5)
            t = Tensor(np.ones(3), requires_grad=True)
            assert not (t * 2).requires_grad
        worker.join()
        assert other_result["requires_grad"] is True

    def test_stable_matmul_is_per_thread(self):
        results = {}

        def worker():
            # Flag set on the main thread must not leak here.
            from repro.nn.tensor import is_stable_matmul

            results["stable"] = is_stable_matmul()

        with stable_matmul():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert results["stable"] is False
