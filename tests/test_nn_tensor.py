"""Tests for the autograd Tensor core, with numerical gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, custom_gradient, is_grad_enabled, no_grad


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f at x."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return g


def check_grad(op, *shapes, seed=0, tol=1e-5):
    """Compare autograd and numerical gradients of scalar sum(op(inputs))."""
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(s) + 0.5 for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = op(*tensors)
    loss = out.sum()
    loss.backward()
    for i, (arr, t) in enumerate(zip(arrays, tensors)):
        def f(x, i=i):
            args = [Tensor(a) for a in arrays]
            args[i] = Tensor(x)
            return op(*args).sum().item()

        num = numerical_grad(f, arr.copy())
        assert t.grad is not None, f"no grad for input {i}"
        np.testing.assert_allclose(t.grad, num, rtol=tol, atol=tol)


class TestBasicOps:
    def test_add(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))

    def test_add_scalar_broadcast(self):
        check_grad(lambda a, b: a + b, (2, 3, 4), (1, 4))

    def test_sub(self):
        check_grad(lambda a, b: a - b, (5,), (5,))

    def test_rsub(self):
        check_grad(lambda a: 3.0 - a, (4,))

    def test_mul(self):
        check_grad(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast(self):
        check_grad(lambda a, b: a * b, (3, 4), (3, 1))

    def test_div(self):
        check_grad(lambda a, b: a / b, (3,), (3,))

    def test_rdiv(self):
        check_grad(lambda a: 2.0 / a, (3,))

    def test_neg(self):
        check_grad(lambda a: -a, (3, 2))

    def test_pow(self):
        check_grad(lambda a: a**3, (4,))

    def test_pow_type_error(self):
        with pytest.raises(TypeError):
            Tensor([1.0], requires_grad=True) ** Tensor([2.0])

    def test_matmul_2d(self):
        check_grad(lambda a, b: a @ b, (3, 4), (4, 5))

    def test_matmul_vec_vec(self):
        check_grad(lambda a, b: a @ b, (4,), (4,))

    def test_matmul_vec_mat(self):
        check_grad(lambda a, b: a @ b, (4,), (4, 3))

    def test_matmul_mat_vec(self):
        check_grad(lambda a, b: a @ b, (3, 4), (4,))

    def test_matmul_batched(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5))

    def test_matmul_batched_broadcast(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (4, 5))


class TestReductions:
    def test_sum_all(self):
        check_grad(lambda a: a.sum() * 2.0, (3, 4))

    def test_sum_axis(self):
        check_grad(lambda a: a.sum(axis=1), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda a: a.sum(axis=0, keepdims=True), (3, 4))

    def test_mean(self):
        check_grad(lambda a: a.mean(), (3, 4))

    def test_mean_axis(self):
        check_grad(lambda a: a.mean(axis=1), (3, 4))

    def test_max_all(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        a.max().backward()
        assert a.grad.sum() == pytest.approx(1.0)

    def test_max_axis(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert a.grad.sum() == pytest.approx(3.0)
        assert np.count_nonzero(a.grad) == 3


class TestShapeOps:
    def test_reshape(self):
        check_grad(lambda a: a.reshape(6, 2) @ Tensor(np.ones((2, 3))), (3, 4))

    def test_reshape_minus_one(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = t.reshape(-1)
        assert out.shape == (12,)

    def test_transpose(self):
        check_grad(lambda a: (a.T @ Tensor(np.ones((3, 2)))), (3, 4))

    def test_transpose_axes(self):
        t = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        assert t.transpose(2, 0, 1).shape == (4, 2, 3)

    def test_getitem_int_rows(self):
        check_grad(lambda a: a[1], (3, 4))

    def test_getitem_slice(self):
        check_grad(lambda a: a[1:3], (5, 2))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])

        def op(a):
            return a[idx]

        rng = np.random.default_rng(0)
        arr = rng.standard_normal((4, 2))
        t = Tensor(arr, requires_grad=True)
        op(t).sum().backward()
        # Row 2 picked twice must receive gradient 2 in each element.
        assert np.allclose(t.grad[2], 2.0)
        assert np.allclose(t.grad[0], 1.0)
        assert np.allclose(t.grad[1], 0.0)


class TestNonlinearities:
    def test_exp(self):
        check_grad(lambda a: a.exp(), (3, 3))

    def test_log(self):
        rng = np.random.default_rng(0)
        arr = rng.uniform(0.5, 2.0, (3, 3))
        t = Tensor(arr, requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, 1.0 / arr, rtol=1e-9)

    def test_tanh(self):
        check_grad(lambda a: a.tanh(), (4,))

    def test_sigmoid(self):
        check_grad(lambda a: a.sigmoid(), (4,))

    def test_relu(self):
        a = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        a.relu().sum().backward()
        assert a.grad.tolist() == [0.0, 1.0, 1.0]

    def test_abs(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        assert a.grad.tolist() == [-1.0, 1.0]

    def test_clip(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert a.grad.tolist() == [0.0, 1.0, 0.0]


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a = 4
        assert a.grad.tolist() == [4.0]

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2.0
        c = a * 4.0
        (b + c).backward()
        assert a.grad.tolist() == [6.0]

    def test_deep_chain(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(100):
            x = x * 1.01
        x.backward()
        assert a.grad[0] == pytest.approx(1.01**100)

    def test_backward_without_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_context(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 2
        assert is_grad_enabled()
        assert not b.requires_grad

    def test_detach(self):
        a = Tensor([2.0], requires_grad=True)
        b = a.detach() * 3
        assert not b.requires_grad

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_item(self):
        assert Tensor([5.0]).item() == 5.0
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_numpy_is_copy(self):
        a = Tensor([1.0])
        arr = a.numpy()
        arr[0] = 99.0
        assert a.data[0] == 1.0

    def test_repr(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_comparisons_return_arrays(self):
        a = Tensor([1.0, 3.0])
        assert (a > 2.0).tolist() == [False, True]
        assert (a >= 3.0).tolist() == [False, True]
        assert (a < 2.0).tolist() == [True, False]
        assert (a <= 1.0).tolist() == [True, False]


class TestCustomGradient:
    def test_straight_through(self):
        a = Tensor(np.array([0.3, 0.7]), requires_grad=True)
        rounded = custom_gradient(np.round(a.data), [a], lambda g: [g])
        rounded.sum().backward()
        assert rounded.data.tolist() == [0.0, 1.0]
        assert a.grad.tolist() == [1.0, 1.0]

    def test_wrong_grad_count_raises(self):
        a = Tensor([1.0], requires_grad=True)
        out = custom_gradient(a.data * 2, [a], lambda g: [])
        with pytest.raises(ValueError):
            out.backward()

    def test_none_grad_skipped(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        out = custom_gradient(a.data + b.data, [a, b], lambda g: [g, None])
        out.backward()
        assert a.grad is not None
        assert b.grad is None


class TestGradProperties:
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_linear_combination_gradient(self, n, m, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((n, m))
        a = Tensor(rng.standard_normal((n, m)), requires_grad=True)
        (a * Tensor(w)).sum().backward()
        np.testing.assert_allclose(a.grad, w)

    @given(st.integers(1, 4), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, n, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((n, n)), requires_grad=True)
        a.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((n, n)))
