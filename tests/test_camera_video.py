"""Tests for repro.camera.video stimuli."""

import numpy as np
import pytest

from repro.camera import (
    CompositeStimulus,
    DriftingGrating,
    MovingBar,
    MovingBox,
    MovingDisk,
    RotatingBar,
    TexturePan,
)
from repro.camera.video import BACKGROUND, FOREGROUND
from repro.events import Resolution

RES = Resolution(32, 24)

ALL_STIMULI = [
    MovingBar(RES, speed_px_per_s=1000, bar_width=3, x0=5),
    MovingBox(RES, side=6, x0=8, y0=8, vx_px_per_s=500),
    MovingDisk(RES, radius=4, x0=10, y0=10, vx_px_per_s=500),
    DriftingGrating(RES, spatial_period_px=8, temporal_freq_hz=20),
    RotatingBar(RES),
    TexturePan(RES, vx_px_per_s=300, seed=3),
]


@pytest.mark.parametrize("stim", ALL_STIMULI, ids=lambda s: type(s).__name__)
class TestStimulusContract:
    def test_frame_shape(self, stim):
        f = stim.frame(0.0)
        assert f.shape == (RES.height, RES.width)

    def test_frame_positive(self, stim):
        for t in (0.0, 12_345.0, 500_000.0):
            assert np.all(stim.frame(t) > 0)

    def test_frame_bounded(self, stim):
        f = stim.frame(10_000.0)
        assert f.min() >= BACKGROUND - 1e-9
        assert f.max() <= FOREGROUND + 1e-9

    def test_deterministic(self, stim):
        assert np.array_equal(stim.frame(777.0), stim.frame(777.0))

    def test_log_frame_consistent(self, stim):
        assert np.allclose(stim.log_frame(100.0), np.log(stim.frame(100.0)))

    def test_motion_changes_frame(self, stim):
        # 23.7 ms is not a multiple of any stimulus period used here.
        f0 = stim.frame(0.0)
        f1 = stim.frame(23_700.0)
        assert not np.allclose(f0, f1)


class TestSpecificStimuli:
    def test_moving_bar_position(self):
        bar = MovingBar(RES, speed_px_per_s=1000, bar_width=2, x0=0)
        # After 10_000 us at 1000 px/s the bar centre is at x = 10.
        f = bar.frame(10_000)
        bright_cols = np.nonzero(f.max(axis=0) > 0.9)[0]
        assert 10 in bright_cols

    def test_bar_invalid_width(self):
        with pytest.raises(ValueError):
            MovingBar(RES, bar_width=0)

    def test_box_moves_diagonally(self):
        box = MovingBox(RES, side=4, x0=4, y0=4, vx_px_per_s=1000, vy_px_per_s=1000)
        f = box.frame(8_000)  # centre should be near (12, 12)
        yy, xx = np.unravel_index(np.argmax(f), f.shape)
        assert abs(xx - 12) <= 2 and abs(yy - 12) <= 2

    def test_disk_radius_scaling(self):
        small = MovingDisk(RES, radius=2, x0=16, y0=12, vx_px_per_s=0)
        big = MovingDisk(RES, radius=6, x0=16, y0=12, vx_px_per_s=0)
        assert big.frame(0).sum() > small.frame(0).sum()

    def test_grating_period(self):
        g = DriftingGrating(RES, spatial_period_px=8, temporal_freq_hz=0)
        f = g.frame(0)
        # One row should repeat with period 8 pixels.
        row = f[0]
        assert np.allclose(row[:8], row[8:16], atol=1e-6)

    def test_grating_validation(self):
        with pytest.raises(ValueError):
            DriftingGrating(RES, spatial_period_px=0)
        with pytest.raises(ValueError):
            DriftingGrating(RES, contrast=0)

    def test_rotating_bar_period(self):
        rb = RotatingBar(RES, angular_speed_rad_per_s=2 * np.pi)  # 1 rev/s
        assert np.allclose(rb.frame(0), rb.frame(1_000_000), atol=1e-6)

    def test_rotation_direction_matters(self):
        cw = RotatingBar(RES, angular_speed_rad_per_s=2 * np.pi)
        ccw = RotatingBar(RES, angular_speed_rad_per_s=-2 * np.pi)
        assert not np.allclose(cw.frame(100_000), ccw.frame(100_000))

    def test_texture_pan_seed(self):
        a = TexturePan(RES, seed=1)
        b = TexturePan(RES, seed=1)
        c = TexturePan(RES, seed=2)
        assert np.array_equal(a.frame(0), b.frame(0))
        assert not np.array_equal(a.frame(0), c.frame(0))

    def test_texture_validation(self):
        with pytest.raises(ValueError):
            TexturePan(RES, texture_scale_px=0)

    def test_composite_max(self):
        bar = MovingBar(RES, x0=5)
        disk = MovingDisk(RES, x0=20, y0=12, vx_px_per_s=0)
        comp = CompositeStimulus([bar, disk])
        f = comp.frame(0)
        assert np.allclose(f, np.maximum(bar.frame(0), disk.frame(0)))

    def test_composite_validation(self):
        with pytest.raises(ValueError):
            CompositeStimulus([])
        with pytest.raises(ValueError):
            CompositeStimulus([MovingBar(RES), MovingBar(Resolution(8, 8))])
