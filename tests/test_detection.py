"""Tests for the object-localisation (detection) substrate."""

import numpy as np
import pytest

from repro.camera import NoiseParams
from repro.datasets import DetectionSample, centroid_baseline, make_detection_dataset
from repro.events import EventStream, Resolution

RES = Resolution(32, 32)


class TestDetectionDataset:
    @pytest.fixture(scope="class")
    def samples(self):
        return make_detection_dataset(
            num_samples=10, resolution=RES, duration_us=40_000, seed=0
        )

    def test_structure(self, samples):
        assert len(samples) == 10
        for s in samples:
            assert len(s.stream) > 10
            assert 2.0 < s.radius < 5.0

    def test_labels_consistent_with_events(self, samples):
        # The ground-truth end position must be near the latest events.
        for s in samples:
            cx, cy = centroid_baseline(s, window_us=8000)
            err = np.hypot(cx - s.cx, cy - s.cy)
            assert err < 4.0 + s.radius

    def test_deterministic(self):
        a = make_detection_dataset(num_samples=3, resolution=RES, seed=5)
        b = make_detection_dataset(num_samples=3, resolution=RES, seed=5)
        for sa, sb in zip(a, b):
            assert sa.stream == sb.stream
            assert sa.cx == sb.cx

    def test_validation(self):
        with pytest.raises(ValueError):
            make_detection_dataset(num_samples=0)


class TestCentroidBaseline:
    def test_localises_clean_disk(self):
        samples = make_detection_dataset(num_samples=8, resolution=RES, seed=1)
        errors = []
        for s in samples:
            cx, cy = centroid_baseline(s)
            errors.append(np.hypot(cx - s.cx, cy - s.cy))
        # The event centroid trails the leading edge slightly; a few
        # pixels of error is the expected regime.
        assert np.mean(errors) < 4.0

    def test_noise_degrades_baseline(self):
        clean = make_detection_dataset(num_samples=6, resolution=RES, seed=2)
        noisy = make_detection_dataset(
            num_samples=6,
            resolution=RES,
            noise=NoiseParams(ba_rate_hz=300.0),
            seed=2,
        )

        def mean_err(samples):
            return float(
                np.mean(
                    [np.hypot(*(np.array(centroid_baseline(s)) - (s.cx, s.cy))) for s in samples]
                )
            )

        assert mean_err(noisy) > mean_err(clean)

    def test_denoising_recovers_baseline(self):
        from repro.events import neighbourhood_filter

        noisy = make_detection_dataset(
            num_samples=5,
            resolution=RES,
            noise=NoiseParams(ba_rate_hz=50.0),
            seed=3,
        )

        def err(sample):
            cx, cy = centroid_baseline(sample)
            return np.hypot(cx - sample.cx, cy - sample.cy)

        raw_err = np.mean([err(s) for s in noisy])
        filtered = [
            DetectionSample(
                neighbourhood_filter(s.stream, window_us=5000, radius=1),
                s.cx,
                s.cy,
                s.radius,
            )
            for s in noisy
        ]
        filt_err = np.mean([err(s) for s in filtered])
        assert filt_err < raw_err

    def test_empty_stream_fallback(self):
        s = DetectionSample(EventStream.empty(RES), 10.0, 10.0, 3.0)
        cx, cy = centroid_baseline(s)
        assert (cx, cy) == (16.0, 16.0)

    def test_validation(self):
        s = DetectionSample(EventStream.empty(RES), 10.0, 10.0, 3.0)
        with pytest.raises(ValueError):
            centroid_baseline(s, window_us=0)


class TestLearnedLocalizer:
    def test_cnn_regressor_beats_noisy_baseline(self):
        """A small CNN regression head localises under noise better than
        the raw centroid (the learned-detector story of ref [35]/[70])."""
        import repro.nn as nn
        from repro.cnn import two_channel_frame
        from repro.nn import Tensor

        noise = NoiseParams(ba_rate_hz=100.0)
        train = make_detection_dataset(num_samples=60, resolution=RES, noise=noise, seed=10)
        test = make_detection_dataset(num_samples=12, resolution=RES, noise=noise, seed=99)

        def encode(sample):
            frame = two_channel_frame(sample.stream)
            peak = frame.max()
            return frame / peak if peak > 0 else frame

        def targets(samples):
            return np.array([[s.cx / RES.width, s.cy / RES.height] for s in samples])

        x_train = np.stack([encode(s) for s in train])
        y_train = targets(train)
        model = nn.Sequential(
            nn.Conv2d(2, 6, 3, padding=1, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 8, 3, padding=1, rng=np.random.default_rng(1)),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.Linear(8 * 8 * 8, 2, rng=np.random.default_rng(2)),
        )
        opt = nn.Adam(model.parameters(), lr=2e-3)
        for _ in range(100):
            opt.zero_grad()
            nn.mse_loss(model(Tensor(x_train)), y_train).backward()
            opt.step()

        def cnn_error(sample):
            pred = model(Tensor(encode(sample)[None])).data[0]
            return np.hypot(pred[0] * RES.width - sample.cx, pred[1] * RES.height - sample.cy)

        def base_error(sample):
            cx, cy = centroid_baseline(sample)
            return np.hypot(cx - sample.cx, cy - sample.cy)

        cnn_err = float(np.mean([cnn_error(s) for s in test]))
        base_err = float(np.mean([base_error(s) for s in test]))
        assert cnn_err < base_err
        assert cnn_err < 8.0


class TestGNNLocalizer:
    """AEGNN-style graph-native detection (ref [70])."""

    CFG = None  # set lazily to avoid import order issues

    @classmethod
    def _config(cls):
        from repro.gnn import GraphBuildConfig

        return GraphBuildConfig(
            radius=4.0, time_scale_us=3000.0, max_events=200, max_degree=8
        )

    def test_gnn_localizer_beats_noisy_baseline(self):
        from repro.gnn import EventGNNLocalizer, fit_localizer, localisation_error

        noise = NoiseParams(ba_rate_hz=100.0)
        train = make_detection_dataset(num_samples=30, resolution=RES, noise=noise, seed=10)
        test = make_detection_dataset(num_samples=10, resolution=RES, noise=noise, seed=99)
        cfg = self._config()
        model = EventGNNLocalizer(hidden=10, rng=np.random.default_rng(1))
        result = fit_localizer(model, train, cfg, epochs=15, lr=5e-3)
        assert result.losses[-1] < result.losses[0] / 3  # converges
        gnn_err = localisation_error(model, test, cfg)
        base_err = float(
            np.mean(
                [np.hypot(*(np.array(centroid_baseline(s)) - (s.cx, s.cy))) for s in test]
            )
        )
        assert gnn_err < base_err
        assert gnn_err < 8.0

    def test_attention_sums_to_one(self):
        from repro.gnn import EventGNNLocalizer, build_event_graph

        samples = make_detection_dataset(num_samples=1, resolution=RES, seed=0)
        graph = build_event_graph(samples[0].stream, self._config())
        model = EventGNNLocalizer(hidden=6)
        w = model.attention_weights(graph)
        assert w.shape == (graph.num_nodes,)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)

    def test_prediction_inside_position_hull(self):
        # A convex combination of node positions stays inside their bbox.
        from repro.gnn import EventGNNLocalizer, build_event_graph
        from repro.nn import no_grad

        samples = make_detection_dataset(num_samples=1, resolution=RES, seed=2)
        graph = build_event_graph(samples[0].stream, self._config())
        model = EventGNNLocalizer(hidden=6, rng=np.random.default_rng(3))
        with no_grad():
            pred = model(graph).data[0]
        assert graph.positions[:, 0].min() <= pred[0] <= graph.positions[:, 0].max()
        assert graph.positions[:, 1].min() <= pred[1] <= graph.positions[:, 1].max()

    def test_validation(self):
        from repro.gnn import EventGNNLocalizer, fit_localizer, localisation_error

        model = EventGNNLocalizer(hidden=4)
        cfg = self._config()
        with pytest.raises(ValueError):
            fit_localizer(model, [], cfg)
        with pytest.raises(ValueError):
            fit_localizer(model, make_detection_dataset(1, resolution=RES), cfg, epochs=0)
        with pytest.raises(ValueError):
            localisation_error(model, [], cfg)
