"""Tests for the hardened runner (repro.reliability.runner)."""

import json
import time

import numpy as np
import pytest

from repro.core import (
    CNNPipeline,
    GNNPipeline,
    NotFittedError,
    ParadigmPipeline,
    SNNPipeline,
)
from repro.datasets import make_shapes_dataset, train_test_split
from repro.datasets.base import EventDataset, EventSample
from repro.events import EventStream, Resolution
from repro.gnn import GraphBuildConfig
from repro.reliability import (
    HardenedRunner,
    OutOfOrderCorruption,
    RecordingOutcome,
    UniformDrop,
    validate_sample,
)

RES = Resolution(24, 24)


@pytest.fixture(scope="module")
def shapes_split():
    ds = make_shapes_dataset(
        num_per_class=6, resolution=RES, duration_us=40_000, seed=0
    )
    return train_test_split(ds, 0.3, np.random.default_rng(0))


def corrupt_dataset(test, index=1, seed=7):
    """Copy of ``test`` with one recording made structurally invalid."""
    broken = OutOfOrderCorruption(0.2)(test.samples[index].stream, seed=seed)
    samples = list(test.samples)
    samples[index] = EventSample(broken, samples[index].label)
    return EventDataset(samples, test.class_names, "corrupted")


class StubPipeline(ParadigmPipeline):
    """Scriptable pipeline for exercising the runner's failure paths."""

    name = "SNN"

    def __init__(self, fail_first=0, predict_delay_s=0.0, prediction=0):
        self.fail_first = fail_first
        self.predict_delay_s = predict_delay_s
        self.prediction = prediction
        self.calls = 0
        self.model = None

    def fit(self, train):
        self.model = object()

    def predict(self, stream):
        self._require_fitted()
        self.calls += 1
        if self.predict_delay_s:
            time.sleep(self.predict_delay_s)
        if self.calls <= self.fail_first:
            raise RuntimeError(f"transient failure {self.calls}")
        return self.prediction

    def measure(self, test, temporal_labels=()):
        self._require_fitted()
        raise RuntimeError("not used")


class TestNotFittedError:
    """Satellite: all three pipelines raise NotFittedError before fit."""

    @pytest.mark.parametrize(
        "pipeline",
        [
            SNNPipeline(num_steps=4, hidden=4),
            CNNPipeline(base_width=2),
            GNNPipeline(hidden=4),
        ],
        ids=["SNN", "CNN", "GNN"],
    )
    def test_predict_and_measure_raise(self, pipeline, shapes_split):
        _, test = shapes_split
        with pytest.raises(NotFittedError, match="not fitted"):
            pipeline.predict(test.samples[0].stream)
        with pytest.raises(NotFittedError, match="not fitted"):
            pipeline.measure(test)

    def test_not_fitted_is_a_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_evaluate_propagates_not_fitted(self, shapes_split):
        _, test = shapes_split
        runner = HardenedRunner(StubPipeline())
        with pytest.raises(NotFittedError):
            runner.evaluate(test)


class TestValidateSample:
    def test_clean_sample_passes(self, shapes_split):
        _, test = shapes_split
        assert validate_sample(test.samples[0], test.resolution) == []

    def test_out_of_order_flagged(self, shapes_split):
        _, test = shapes_split
        bad = corrupt_dataset(test)
        problems = validate_sample(bad.samples[1], test.resolution)
        assert problems and "out-of-order" in problems[0]

    def test_resolution_mismatch_flagged(self):
        stream = EventStream.empty(Resolution(8, 8))
        problems = validate_sample(EventSample(stream, 0), Resolution(16, 16))
        assert problems and "resolution" in problems[0]


class TestQuarantine:
    def test_corrupted_recording_quarantined_not_fatal(self, shapes_split):
        _, test = shapes_split
        bad = corrupt_dataset(test, index=1)
        runner = HardenedRunner(StubPipeline())
        runner.fit(bad)
        report = runner.evaluate(bad)
        assert report.quarantined_indices == [1]
        counts = report.outcome_counts()
        assert counts["quarantined"] == 1
        assert counts["ok"] == len(bad) - 1
        assert report.records[1].problems

    def test_quarantine_survives_resorting_faults(self, shapes_split):
        # TimestampJitter-style faults re-sort events; pre-existing
        # corruption must still be quarantined at every severity.
        _, test = shapes_split
        bad = corrupt_dataset(test, index=2)
        runner = HardenedRunner(StubPipeline())
        runner.fit(bad)
        report = runner.evaluate(bad, fault=UniformDrop(0.3), seed=5)
        assert report.quarantined_indices == [2]

    def test_fit_excludes_invalid_recordings(self, shapes_split):
        train, _ = shapes_split
        bad = corrupt_dataset(train, index=0)

        seen = {}

        class CountingStub(StubPipeline):
            def fit(self, ds):
                seen["n"] = len(ds)
                super().fit(ds)

        runner = HardenedRunner(CountingStub())
        result = runner.fit(bad)
        assert result.ok
        assert seen["n"] == len(bad) - 1


class TestRetryAndTimeout:
    def test_transient_failure_retried(self, shapes_split):
        _, test = shapes_split
        runner = HardenedRunner(StubPipeline(fail_first=1), max_retries=2)
        runner.fit(test)
        report = runner.evaluate(test.subset([0]))
        assert report.records[0].outcome is RecordingOutcome.OK
        assert report.records[0].attempts == 2

    def test_persistent_failure_recorded(self, shapes_split):
        _, test = shapes_split
        runner = HardenedRunner(StubPipeline(fail_first=10**9), max_retries=1)
        runner.fit(test)
        report = runner.evaluate(test.subset([0, 1]))
        for record in report.records:
            assert record.outcome is RecordingOutcome.FAILED
            assert record.error_type == "RuntimeError"
            assert record.attempts == 2
        assert np.isnan(report.accuracy())

    def test_stage_timeout_skips_and_records(self, shapes_split):
        _, test = shapes_split
        runner = HardenedRunner(
            StubPipeline(predict_delay_s=2.0), stage_timeout_s=0.05
        )
        runner.fit(test)
        start = time.monotonic()
        report = runner.evaluate(test.subset([0]))
        assert time.monotonic() - start < 1.5  # did not wait out the sleep
        assert report.records[0].outcome is RecordingOutcome.TIMEOUT
        assert report.records[0].attempts == 1  # timeouts are not retried

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HardenedRunner(StubPipeline(), max_retries=-1)
        with pytest.raises(ValueError):
            HardenedRunner(StubPipeline(), backoff_s=-0.1)
        with pytest.raises(ValueError):
            HardenedRunner(StubPipeline(), stage_timeout_s=0)


class TestRunReport:
    def test_accuracy_over_evaluated_records(self, shapes_split):
        _, test = shapes_split
        label0 = test.samples[0].label
        runner = HardenedRunner(StubPipeline(prediction=label0))
        runner.fit(test)
        report = runner.evaluate(test)
        expected = float(np.mean(test.labels() == label0))
        assert report.accuracy() == pytest.approx(expected)

    def test_to_dict_is_json_serialisable(self, shapes_split):
        _, test = shapes_split
        bad = corrupt_dataset(test, index=0)
        runner = HardenedRunner(StubPipeline())
        runner.fit(bad)
        report = runner.evaluate(bad, fault=UniformDrop(0.2), seed=3)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["pipeline"] == "SNN"
        assert payload["seed"] == 3
        assert "UniformDrop" in payload["fault"]
        assert payload["outcome_counts"]["quarantined"] == 1

    def test_fault_injection_is_deterministic(self, shapes_split):
        _, test = shapes_split
        runner = HardenedRunner(StubPipeline())
        runner.fit(test)
        a = runner.evaluate(test, fault=UniformDrop(0.5), seed=11)
        b = runner.evaluate(test, fault=UniformDrop(0.5), seed=11)
        def strip_timing(report):
            return [{**r.to_dict(), "elapsed_s": None} for r in report.records]

        assert strip_timing(a) == strip_timing(b)


class TestCheckpointResume:
    def test_fit_checkpoints_and_resumes(self, shapes_split, tmp_path):
        train, test = shapes_split
        path = tmp_path / "snn.npz"

        def make():
            return SNNPipeline(num_steps=6, pool=4, hidden=8, epochs=2, seed=0)

        first = HardenedRunner(make(), checkpoint_path=path)
        assert first.fit(train).ok
        assert path.exists()
        preds_first = [first.pipeline.predict(s.stream) for s in test]

        second = HardenedRunner(make(), checkpoint_path=path)
        result = second.fit(train)
        assert result.ok
        assert second.resumed_from_checkpoint
        preds_second = [second.pipeline.predict(s.stream) for s in test]
        assert preds_first == preds_second

    def test_resume_works_for_gnn(self, shapes_split, tmp_path):
        train, test = shapes_split
        path = tmp_path / "gnn.npz"
        cfg = GraphBuildConfig(
            radius=4.0, time_scale_us=3000.0, max_events=100, max_degree=6
        )

        def make():
            return GNNPipeline(config=cfg, hidden=4, epochs=1, seed=0)

        first = HardenedRunner(make(), checkpoint_path=path)
        assert first.fit(train).ok
        second = HardenedRunner(make(), checkpoint_path=path)
        assert second.fit(train).ok
        assert second.resumed_from_checkpoint
        assert [first.pipeline.predict(s.stream) for s in test] == [
            second.pipeline.predict(s.stream) for s in test
        ]

    def test_corrupt_checkpoint_falls_back_to_training(self, shapes_split, tmp_path):
        train, _ = shapes_split
        path = tmp_path / "snn.npz"
        path.write_bytes(b"not a checkpoint")
        runner = HardenedRunner(
            SNNPipeline(num_steps=6, pool=4, hidden=8, epochs=2, seed=0),
            checkpoint_path=path,
        )
        result = runner.fit(train)
        assert result.ok
        assert not runner.resumed_from_checkpoint

    def test_resume_false_retrains(self, shapes_split, tmp_path):
        train, _ = shapes_split
        path = tmp_path / "snn.npz"
        runner = HardenedRunner(
            SNNPipeline(num_steps=6, pool=4, hidden=8, epochs=2, seed=0),
            checkpoint_path=path,
        )
        runner.fit(train)
        runner2 = HardenedRunner(
            SNNPipeline(num_steps=6, pool=4, hidden=8, epochs=2, seed=0),
            checkpoint_path=path,
        )
        result = runner2.fit(train, resume=False)
        assert result.ok
        assert not runner2.resumed_from_checkpoint
