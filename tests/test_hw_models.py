"""Tests for the hardware cost models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    ENERGY_45NM,
    AnalogNeuromorphicProcessor,
    ConvLayerWorkload,
    CostReport,
    EnergyTable,
    GNNAccelerator,
    GNNWorkload,
    NeuromorphicCore,
    SNNLayerWorkload,
    SystolicArray,
    ZeroSkipAccelerator,
    analytic_snn_counters,
    apply_mismatch,
    compression_ratio,
    nullhop_compressed_bits,
    rle_compressed_bits,
)
from repro.snn import LIFParams, clock_driven_sim, event_driven_sim


LAYER = ConvLayerWorkload(
    c_in=16, c_out=32, kernel=3, out_h=16, out_w=16,
    activation_sparsity=0.6, weight_sparsity=0.5,
)


class TestEnergyTable:
    def test_add_vs_mult_ratio(self):
        # Paper (ref [40]): additions ~4x cheaper than multiplications.
        assert 3.0 < ENERGY_45NM.add_vs_mult_ratio < 5.0

    def test_memory_dominates_ops(self):
        assert ENERGY_45NM.sram_large_pj > 10 * ENERGY_45NM.add_int_pj
        assert ENERGY_45NM.dram_pj > ENERGY_45NM.sram_large_pj

    def test_scaled(self):
        half = ENERGY_45NM.scaled(0.5)
        assert half.mac_pj == pytest.approx(ENERGY_45NM.mac_pj / 2)
        with pytest.raises(ValueError):
            ENERGY_45NM.scaled(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyTable(add_int_pj=0)


class TestCostReport:
    def test_power_and_fraction(self):
        r = CostReport("x", energy_pj=1e6, latency_us=10.0,
                       breakdown={"mem_a": 9e5, "alu": 1e5})
        assert r.energy_uj == pytest.approx(1.0)
        assert r.memory_energy_fraction == pytest.approx(0.9)
        # 1 uJ every 1000 us -> 1 mW.
        assert r.power_mw(1000.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            r.power_mw(0)

    def test_summary(self):
        assert "uJ" in CostReport("x").summary()


class TestWorkloads:
    def test_conv_derived(self):
        assert LAYER.dense_macs == 16 * 32 * 9 * 256
        assert LAYER.num_weights == 16 * 32 * 9
        with pytest.raises(ValueError):
            ConvLayerWorkload(0, 1, 3, 4, 4)
        with pytest.raises(ValueError):
            ConvLayerWorkload(1, 1, 3, 4, 4, activation_sparsity=1.5)

    def test_snn_workload(self):
        w = SNNLayerWorkload(100, 50, 20, 0.1)
        assert w.input_spikes == 100
        with pytest.raises(ValueError):
            SNNLayerWorkload(0, 1, 1, 0.5)
        with pytest.raises(ValueError):
            SNNLayerWorkload(1, 1, 1, 2.0)

    def test_gnn_workload(self):
        with pytest.raises(ValueError):
            GNNWorkload(0, 1, 4)
        with pytest.raises(ValueError):
            GNNWorkload(1, -1, 4)


class TestSystolic:
    def test_dense_macs_always_executed(self):
        arr = SystolicArray()
        sparse = arr.run_layer(LAYER)
        dense_layer = ConvLayerWorkload(16, 32, 3, 16, 16)
        dense = arr.run_layer(dense_layer)
        assert sparse.macs == dense.macs  # no zero skipping

    def test_bigger_array_faster(self):
        small = SystolicArray(rows=8, cols=8)
        big = SystolicArray(rows=32, cols=32)
        assert big.run_layer(LAYER).latency_us < small.run_layer(LAYER).latency_us

    def test_utilization_bounds(self):
        arr = SystolicArray(rows=16, cols=16)
        u = arr.utilization(LAYER)
        assert 0 < u <= 1
        # Perfectly fitting layer: utilization 1.
        fit = ConvLayerWorkload(16, 16, 1, 8, 8)
        assert arr.utilization(fit) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SystolicArray(rows=0)
        with pytest.raises(ValueError):
            SystolicArray(clock_mhz=0)


class TestCompression:
    def test_nullhop_size(self):
        arr = np.array([0, 5, 0, 0, 7], dtype=np.int64)
        # 5 mask bits + 2 values * 16 bits.
        assert nullhop_compressed_bits(arr, 16) == 5 + 32

    def test_rle_size(self):
        arr = np.array([0, 0, 0, 9], dtype=np.int64)
        # One run token (5 bits) + one value (16 bits).
        assert rle_compressed_bits(arr, 16, run_bits=5) == 21

    def test_rle_long_run_continuation(self):
        arr = np.zeros(100, dtype=np.int64)
        arr[-1] = 1
        bits = rle_compressed_bits(arr, 16, run_bits=5)
        # 99 zeros need ceil(99/31)=3 continuation fields + final run+value.
        assert bits > 21

    def test_trailing_zeros_counted(self):
        assert rle_compressed_bits(np.zeros(10), 16, run_bits=5) == 5

    def test_compression_improves_with_sparsity(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal(1000)
        sparse = dense * (rng.random(1000) < 0.1)
        for scheme in ("nullhop", "rle"):
            assert compression_ratio(sparse, scheme) > compression_ratio(dense, scheme)
            assert compression_ratio(sparse, scheme) > 3.0

    def test_dense_data_barely_compresses(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal(500) + 10  # no zeros
        assert compression_ratio(dense, "nullhop") < 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            compression_ratio(np.ones(4), "bogus")
        with pytest.raises(ValueError):
            rle_compressed_bits(np.ones(4), 0)
        with pytest.raises(ValueError):
            nullhop_compressed_bits(np.ones(4), 0)
        assert compression_ratio(np.zeros(0)) == 1.0


class TestZeroSkip:
    def test_savings_grow_with_sparsity(self):
        acc = ZeroSkipAccelerator()
        costs = []
        for s in (0.0, 0.5, 0.9):
            layer = ConvLayerWorkload(16, 32, 3, 16, 16, activation_sparsity=s)
            costs.append(acc.run_layer(layer).energy_pj)
        assert costs[0] > costs[1] > costs[2]

    def test_beats_systolic_on_sparse_layers(self):
        sys_cost = SystolicArray(rows=16, cols=16).run_layer(LAYER)
        zs_cost = ZeroSkipAccelerator(num_macs=256).run_layer(LAYER)
        assert zs_cost.energy_pj < sys_cost.energy_pj
        assert zs_cost.macs < sys_cost.macs

    def test_weight_skipping_helps_more(self):
        plain = ZeroSkipAccelerator(skip_weights=False).run_layer(LAYER)
        both = ZeroSkipAccelerator(skip_weights=True).run_layer(LAYER)
        assert both.macs < plain.macs

    def test_structured_removes_overhead(self):
        layer = ConvLayerWorkload(16, 32, 3, 16, 16, activation_sparsity=0.8)
        unstructured = ZeroSkipAccelerator(structured=False).run_layer(layer)
        structured = ZeroSkipAccelerator(structured=True).run_layer(layer)
        assert structured.latency_us < unstructured.latency_us
        assert structured.breakdown["control"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZeroSkipAccelerator(num_macs=0)
        with pytest.raises(ValueError):
            ZeroSkipAccelerator(control_overhead=-1)


class TestNeuromorphicCore:
    def test_memory_dominates(self):
        # The ref [42] claim: memory access energy dominates (>90%).
        core = NeuromorphicCore()
        w = SNNLayerWorkload(256, 256, 100, 0.05)
        report = core.run_layer(w, update="clock")
        assert report.memory_energy_fraction > 0.9

    def test_event_beats_clock_at_low_activity(self):
        core = NeuromorphicCore()
        w = SNNLayerWorkload(128, 64, 200, 0.0005)
        clock = core.run_layer(w, update="clock")
        event = core.run_layer(w, update="event")
        assert event.energy_pj < clock.energy_pj

    def test_clock_beats_event_at_high_activity(self):
        core = NeuromorphicCore()
        w = SNNLayerWorkload(128, 64, 200, 0.9)
        clock = core.run_layer(w, update="clock")
        event = core.run_layer(w, update="event")
        assert clock.energy_pj < event.energy_pj

    def test_counters_agree_with_simulation(self):
        # The analytic counters reproduce simulated counts on a matched workload.
        rng = np.random.default_rng(0)
        n, f, t, a = 40, 30, 100, 0.2
        weights = rng.normal(0, 0.3, (n, f))
        spikes = (rng.random((t, f)) < a).astype(np.float64)
        sim = clock_driven_sim(weights, spikes, LIFParams())
        analytic = analytic_snn_counters(SNNLayerWorkload(n, f, t, a), "clock")
        assert analytic.neuron_state_reads == sim.counters.neuron_state_reads
        ratio = analytic.synapse_reads / max(sim.counters.synapse_reads, 1)
        assert 0.8 < ratio < 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            NeuromorphicCore(clock_mhz=0)
        with pytest.raises(ValueError):
            analytic_snn_counters(SNNLayerWorkload(4, 4, 4, 0.5), "bogus")


class TestGNNAccel:
    WORK = GNNWorkload(num_nodes=500, num_edges=4000, feature_dim=16)

    def test_dram_vs_sram_gathers(self):
        dc = GNNAccelerator(features_in_dram=True).run_graph(self.WORK)
        edge = GNNAccelerator(features_in_dram=False).run_graph(self.WORK)
        assert dc.energy_pj > edge.energy_pj
        assert dc.breakdown["mem_gather"] > 5 * edge.breakdown["mem_gather"]

    def test_cost_scales_with_edges(self):
        acc = GNNAccelerator()
        sparse = GNNWorkload(500, 1000, 16)
        dense = GNNWorkload(500, 10_000, 16)
        assert acc.run_graph(dense).energy_pj > acc.run_graph(sparse).energy_pj

    def test_per_event_much_cheaper_than_full(self):
        acc = GNNAccelerator(features_in_dram=False)
        full = acc.run_graph(self.WORK)
        event = acc.per_event_update(self.WORK, degree=12, insertion_candidates=30)
        assert event.energy_pj < full.energy_pj / 50
        assert event.latency_us < full.latency_us

    def test_insertion_cost_visible(self):
        acc = GNNAccelerator()
        cheap = acc.per_event_update(self.WORK, degree=8, insertion_candidates=10)
        costly = acc.per_event_update(self.WORK, degree=8, insertion_candidates=10_000)
        assert costly.latency_us > 10 * cheap.latency_us

    def test_validation(self):
        acc = GNNAccelerator()
        with pytest.raises(ValueError):
            acc.per_event_update(self.WORK, degree=-1, insertion_candidates=0)
        with pytest.raises(ValueError):
            GNNAccelerator(num_macs=0)


class TestAnalog:
    def _counters(self, syn=10_000, spikes=100):
        from repro.snn import SimCounters

        c = SimCounters()
        c.synapse_reads = syn
        c.spikes = spikes
        c.neuron_state_reads = syn * 2
        c.neuron_state_writes = syn * 2
        c.alu_simple = syn
        return c

    def test_order_of_magnitude_below_digital(self):
        # Discussion section: analog ~10x less power than digital SNN.
        c = self._counters(syn=100_000, spikes=1000)
        digital = NeuromorphicCore().cost_from_counters(c)
        analog = AnalogNeuromorphicProcessor().cost_from_counters(c, duration_us=1000)
        assert analog.energy_pj < digital.energy_pj / 10

    def test_static_floor(self):
        c = self._counters(syn=1, spikes=0)
        proc = AnalogNeuromorphicProcessor(static_power_uw=100.0)
        # Static floor dominates a near-idle second.
        r = proc.cost_from_counters(c, duration_us=1_000_000)
        assert r.breakdown["static"] > 0.99 * r.energy_pj
        assert proc.power_mw(c, 1_000_000) == pytest.approx(0.1, rel=0.01)

    def test_mismatch_perturbs(self):
        rng = np.random.default_rng(0)
        w = np.ones((50, 50))
        w2 = apply_mismatch(w, 0.2, rng)
        assert not np.allclose(w, w2)
        assert np.all(w2 > 0)  # multiplicative, sign-preserving
        assert apply_mismatch(w, 0.0, rng) is not w  # copy returned
        np.testing.assert_array_equal(apply_mismatch(w, 0.0, rng), w)

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalogNeuromorphicProcessor(synaptic_event_pj=0)
        with pytest.raises(ValueError):
            apply_mismatch(np.ones(3), -1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            AnalogNeuromorphicProcessor().cost_from_counters(self._counters(), 0)


class TestCrossModelProperties:
    @given(st.floats(0.0, 0.95), st.floats(0.0, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_zeroskip_monotone_in_sparsity(self, s1, s2):
        lo, hi = sorted([s1, s2])
        acc = ZeroSkipAccelerator()
        c_lo = acc.run_layer(ConvLayerWorkload(8, 8, 3, 8, 8, activation_sparsity=hi))
        c_hi = acc.run_layer(ConvLayerWorkload(8, 8, 3, 8, 8, activation_sparsity=lo))
        assert c_lo.energy_pj <= c_hi.energy_pj + 1e-9

    @given(st.integers(1, 400), st.integers(1, 50))
    @settings(max_examples=25, deadline=None)
    def test_snn_energy_positive(self, steps, neurons):
        core = NeuromorphicCore()
        w = SNNLayerWorkload(neurons, 8, steps, 0.1)
        for update in ("clock", "event"):
            assert core.run_layer(w, update).energy_pj >= 0
