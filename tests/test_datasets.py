"""Tests for the synthetic event datasets."""

import numpy as np
import pytest

from repro.camera import NoiseParams
from repro.datasets import (
    DIGIT_BITMAPS,
    EventDataset,
    EventSample,
    SaccadeDigit,
    make_digits_dataset,
    make_gestures_dataset,
    make_shapes_dataset,
    train_test_split,
)
from repro.events import EventStream, Resolution

RES = Resolution(24, 24)


def tiny_dataset(n_per_class=4, num_classes=3):
    rng = np.random.default_rng(0)
    samples = []
    for cls in range(num_classes):
        for _ in range(n_per_class):
            n = int(rng.integers(5, 20))
            t = np.sort(rng.integers(0, 10_000, n))
            s = EventStream.from_arrays(
                t,
                rng.integers(0, RES.width, n),
                rng.integers(0, RES.height, n),
                rng.choice([-1, 1], n),
                RES,
            )
            samples.append(EventSample(s, cls))
    return EventDataset(samples, [f"c{i}" for i in range(num_classes)])


class TestEventDataset:
    def test_basic_accessors(self):
        ds = tiny_dataset()
        assert len(ds) == 12
        assert ds.num_classes == 3
        assert ds.resolution == RES
        assert ds.class_counts().tolist() == [4, 4, 4]
        assert ds.mean_events_per_sample() > 0

    def test_label_validation(self):
        s = EventStream.empty(RES)
        with pytest.raises(ValueError, match="label"):
            EventDataset([EventSample(s, 5)], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EventDataset([], ["a"])

    def test_subset_and_shuffle(self):
        ds = tiny_dataset()
        sub = ds.subset([0, 5, 11])
        assert len(sub) == 3
        shuf = ds.shuffled(np.random.default_rng(1))
        assert len(shuf) == len(ds)
        assert sorted(shuf.labels().tolist()) == sorted(ds.labels().tolist())

    def test_split_stratified(self):
        ds = tiny_dataset(n_per_class=8)
        train, test = train_test_split(ds, 0.25, np.random.default_rng(0))
        assert len(train) + len(test) == len(ds)
        assert test.class_counts().tolist() == [2, 2, 2]

    def test_split_validation(self):
        ds = tiny_dataset()
        with pytest.raises(ValueError):
            train_test_split(ds, 0.0)
        with pytest.raises(ValueError):
            train_test_split(ds, 1.0)


class TestShapesDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_shapes_dataset(num_per_class=3, resolution=RES, duration_us=40_000, seed=1)

    def test_structure(self, ds):
        assert len(ds) == 9
        assert ds.num_classes == 3
        assert ds.class_counts().tolist() == [3, 3, 3]

    def test_samples_nonempty(self, ds):
        for s in ds:
            assert len(s.stream) > 5, f"sample of class {s.label} nearly empty"

    def test_deterministic(self, ds):
        ds2 = make_shapes_dataset(num_per_class=3, resolution=RES, duration_us=40_000, seed=1)
        for a, b in zip(ds, ds2):
            assert a.stream == b.stream

    def test_seed_changes_data(self, ds):
        ds2 = make_shapes_dataset(num_per_class=3, resolution=RES, duration_us=40_000, seed=2)
        assert any(a.stream != b.stream for a, b in zip(ds, ds2))

    def test_noise_increases_events(self):
        clean = make_shapes_dataset(num_per_class=2, resolution=RES, duration_us=30_000, seed=3)
        noisy = make_shapes_dataset(
            num_per_class=2,
            resolution=RES,
            duration_us=30_000,
            noise=NoiseParams(ba_rate_hz=50.0),
            seed=3,
        )
        assert noisy.mean_events_per_sample() > clean.mean_events_per_sample()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_shapes_dataset(num_per_class=0)


class TestGesturesDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_gestures_dataset(
            num_per_class=2, resolution=RES, duration_us=60_000, seed=1
        )

    def test_structure(self, ds):
        assert len(ds) == 8
        assert ds.num_classes == 4

    def test_rotations_similar_event_counts(self, ds):
        # CW and CCW are mirror processes: their event counts should be
        # the same order of magnitude.
        cw = [len(s.stream) for s in ds if s.label == 0]
        ccw = [len(s.stream) for s in ds if s.label == 1]
        assert 0.3 < np.mean(cw) / np.mean(ccw) < 3.0

    def test_all_nonempty(self, ds):
        for s in ds:
            assert len(s.stream) > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            make_gestures_dataset(num_per_class=-1)


class TestSaccadeDigit:
    def test_bitmaps_complete(self):
        assert set(DIGIT_BITMAPS) == set(range(10))
        for bm in DIGIT_BITMAPS.values():
            assert bm.shape == (7, 5)
            assert bm.max() == 1.0

    def test_stimulus_contract(self):
        stim = SaccadeDigit(RES, 3)
        f = stim.frame(0.0)
        assert f.shape == (RES.height, RES.width)
        assert np.all(f > 0)
        assert f.max() > 0.9  # glyph visible

    def test_saccade_is_periodic(self):
        stim = SaccadeDigit(RES, 7, saccade_period_us=30_000)
        np.testing.assert_allclose(stim.frame(1000.0), stim.frame(31_000.0), atol=1e-9)

    def test_saccade_moves_glyph(self):
        stim = SaccadeDigit(RES, 7, saccade_period_us=30_000, amplitude_px=4.0)
        assert not np.allclose(stim.frame(0.0), stim.frame(10_000.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            SaccadeDigit(RES, 11)
        with pytest.raises(ValueError):
            SaccadeDigit(RES, 1, scale=0)
        with pytest.raises(ValueError):
            SaccadeDigit(RES, 1, saccade_period_us=0)

    def test_digits_dataset(self):
        ds = make_digits_dataset(
            num_per_class=2, digits=(0, 1), resolution=RES, duration_us=30_000, seed=5
        )
        assert len(ds) == 4
        assert ds.num_classes == 2
        assert ds.class_names == ["0", "1"]
        for s in ds:
            assert len(s.stream) > 10

    def test_digits_validation(self):
        with pytest.raises(ValueError):
            make_digits_dataset(num_per_class=0)
        with pytest.raises(ValueError):
            make_digits_dataset(digits=())
