"""Property-style equivalence tests: vectorized hot paths vs loop oracles.

Every vectorized hot path keeps its original loop implementation as a
reference oracle (``*_reference`` functions, per-event ``insert``).
These tests drive both sides over randomized workloads engineered for
the known failure modes — negative coordinates, points exactly at the
connection radius, duplicate points, heavy timestamp ties — and require
byte-identical outputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventStream, Resolution
from repro.events.ops import (
    neighbourhood_filter,
    neighbourhood_filter_reference,
    refractory_filter,
    refractory_filter_reference,
    spatial_downsample,
    spatial_downsample_reference,
)
from repro.gnn import (
    HashInserter,
    KDTreeInserter,
    NaiveInserter,
    radius_graph_kdtree,
    radius_graph_naive,
    radius_graph_spatial_hash,
    radius_graph_spatial_hash_reference,
)


def awkward_points(n, seed, scale=10.0):
    """Point clouds stressing the radius-graph edge cases.

    Mixes negative coordinates, exact duplicates, and pairs placed at
    exactly the test radius (distance comparisons must be inclusive on
    both sides of every implementation).
    """
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-scale, scale, (n, 3))
    if n >= 4:
        pts[1] = pts[0]  # exact duplicate
        pts[3] = pts[2] + np.array([3.0, 0.0, 0.0])  # exactly radius apart
    pts = pts[np.argsort(pts[:, 2], kind="stable")]
    return pts


class TestRadiusGraphFourWay:
    """naive == kdtree == hash oracle == vectorized hash, everywhere."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("radius", [0.5, 3.0, 8.0])
    def test_all_four_agree(self, seed, radius):
        pts = awkward_points(50, seed)
        e_naive = radius_graph_naive(pts, radius)
        np.testing.assert_array_equal(e_naive, radius_graph_kdtree(pts, radius))
        np.testing.assert_array_equal(
            e_naive, radius_graph_spatial_hash_reference(pts, radius)
        )
        np.testing.assert_array_equal(
            e_naive, radius_graph_spatial_hash(pts, radius)
        )

    def test_exact_radius_pair_connects(self):
        pts = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        for builder in (
            radius_graph_naive,
            radius_graph_kdtree,
            radius_graph_spatial_hash_reference,
            radius_graph_spatial_hash,
        ):
            np.testing.assert_array_equal(builder(pts, 3.0), [[0, 1], [1, 0]])

    def test_all_duplicates(self):
        pts = np.zeros((6, 3))
        expected = radius_graph_naive(pts, 1.0)
        assert expected.shape[0] == 30  # complete digraph, no self-loops
        np.testing.assert_array_equal(
            expected, radius_graph_spatial_hash(pts, 1.0)
        )
        np.testing.assert_array_equal(
            expected, radius_graph_spatial_hash_reference(pts, 1.0)
        )

    @given(
        st.integers(2, 60),
        st.integers(0, 50),
        st.floats(0.5, 12.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_hash_equals_naive_property(self, n, seed, radius):
        pts = awkward_points(n, seed)
        np.testing.assert_array_equal(
            radius_graph_naive(pts, radius), radius_graph_spatial_hash(pts, radius)
        )


def awkward_stream(n, seed, width=16, height=16):
    """Streams with heavy timestamp ties and full-sensor coverage."""
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(0, 4, n))  # ~25% exact ties
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


class TestFilterOracles:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("refractory_us", [0, 1, 3, 25])
    def test_refractory_matches_reference(self, seed, refractory_us):
        s = awkward_stream(300, seed)
        assert refractory_filter(s, refractory_us) == refractory_filter_reference(
            s, refractory_us
        )

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("radius", [0, 1, 2])
    def test_neighbourhood_matches_reference(self, seed, radius):
        s = awkward_stream(300, seed)
        assert neighbourhood_filter(s, 20, radius) == neighbourhood_filter_reference(
            s, 20, radius
        )

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("factor,refractory_us", [(2, 0), (3, 5), (4, 40)])
    def test_downsample_matches_reference(self, seed, factor, refractory_us):
        s = awkward_stream(300, seed)
        assert spatial_downsample(s, factor, refractory_us) == (
            spatial_downsample_reference(s, factor, refractory_us)
        )

    @given(st.integers(0, 200), st.integers(0, 30), st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_refractory_property(self, n, seed, refractory_us):
        s = awkward_stream(n, seed) if n else EventStream.empty(Resolution(16, 16))
        assert refractory_filter(s, refractory_us) == refractory_filter_reference(
            s, refractory_us
        )


class TestInserterEquivalence:
    """All insertion strategies build the same graph, by the same rules.

    The batched HashInserter path must also match its own per-event
    path exactly — including :class:`InsertionStats` — and the
    KDTreeInserter must agree across its tree-rebuild boundaries.
    """

    KW = dict(radius=3.0, time_scale_us=1000.0, window_us=30_000, max_neighbours=6)

    def _workload(self, n, seed):
        rng = np.random.default_rng(seed)
        xs = rng.uniform(-8.0, 24.0, n)  # negative coords included
        ys = rng.uniform(-8.0, 24.0, n)
        ts = np.cumsum(rng.integers(0, 2000, n))  # includes exact ties
        return xs, ys, ts

    def _run_sequential(self, cls, xs, ys, ts, **extra):
        ins = cls(**self.KW, **extra)
        for x, y, t in zip(xs, ys, ts):
            ins.insert(float(x), float(y), int(t))
        return ins

    @pytest.mark.parametrize("seed", range(4))
    def test_insert_many_matches_per_event(self, seed):
        xs, ys, ts = self._workload(250, seed)
        seq = self._run_sequential(HashInserter, xs, ys, ts)
        bat = HashInserter(**self.KW)
        idx = bat.insert_many(xs, ys, ts)
        np.testing.assert_array_equal(idx, np.arange(250))
        np.testing.assert_array_equal(seq.edges(), bat.edges())
        assert seq.stats == bat.stats

    @pytest.mark.parametrize("seed", range(4))
    def test_three_strategies_identical_edges(self, seed):
        xs, ys, ts = self._workload(200, seed)
        naive = self._run_sequential(NaiveInserter, xs, ys, ts)
        hashed = HashInserter(**self.KW)
        hashed.insert_many(xs, ys, ts)
        np.testing.assert_array_equal(naive.edges(), hashed.edges())

    @pytest.mark.parametrize("rebuild_every", [1, 7, 64, 1000])
    def test_kdtree_agrees_across_rebuild_boundaries(self, rebuild_every):
        # Edges must not depend on where the periodic rebuild lands:
        # candidates are split between the tree and the linear pending
        # scan differently for each setting.
        xs, ys, ts = self._workload(150, seed=9)
        naive = self._run_sequential(NaiveInserter, xs, ys, ts)
        tree = self._run_sequential(
            KDTreeInserter, xs, ys, ts, rebuild_every=rebuild_every
        )
        np.testing.assert_array_equal(naive.edges(), tree.edges())

    def test_mixed_insert_and_insert_many(self):
        xs, ys, ts = self._workload(240, seed=11)
        seq = self._run_sequential(HashInserter, xs, ys, ts)
        mix = HashInserter(**self.KW)
        rng = np.random.default_rng(0)
        i = 0
        while i < 240:
            if rng.random() < 0.4:
                mix.insert(float(xs[i]), float(ys[i]), int(ts[i]))
                i += 1
            else:
                j = min(240, i + int(rng.integers(1, 50)))
                mix.insert_many(xs[i:j], ys[i:j], ts[i:j])
                i = j
        np.testing.assert_array_equal(seq.edges(), mix.edges())
        assert seq.stats == mix.stats

    def test_insert_many_rejects_unordered(self):
        ins = HashInserter(**self.KW)
        with pytest.raises(ValueError):
            ins.insert_many([0.0, 1.0], [0.0, 1.0], [10, 5])

    def test_insert_many_split_path_equivalent(self):
        # Force the memory-bounded split/recursion path and check it
        # still matches the per-event oracle exactly.
        xs, ys, ts = self._workload(200, seed=13)
        seq = self._run_sequential(HashInserter, xs, ys, ts)
        bat = HashInserter(**self.KW)
        bat._MAX_BATCH_PAIRS = 8
        bat.insert_many(xs, ys, ts)
        np.testing.assert_array_equal(seq.edges(), bat.edges())
        assert seq.stats == bat.stats

    @given(st.integers(1, 80), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_insert_many_property(self, n, seed):
        xs, ys, ts = self._workload(n, seed)
        seq = self._run_sequential(HashInserter, xs, ys, ts)
        bat = HashInserter(**self.KW)
        bat.insert_many(xs, ys, ts)
        np.testing.assert_array_equal(seq.edges(), bat.edges())
        assert seq.stats == bat.stats
