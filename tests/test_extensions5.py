"""Tests for the fifth extension round: dataflow reuse analysis and the
continual-learning (on-chip adaptation) scenario of Section V."""

import numpy as np
import pytest

from repro.hw import ConvLayerWorkload, ReuseFactors, dataflow_reuse
from repro.snn import STDPNetwork


class TestDataflowReuse:
    LAYER = ConvLayerWorkload(16, 32, 3, 28, 28)

    def test_weight_stationary_reuses_weights(self):
        r = dataflow_reuse(self.LAYER, "weight_stationary")
        assert r.weight_reuse == 28 * 28
        assert r.psum_reuse == 16 * 9
        assert r.activation_reuse == 32

    def test_output_stationary_trades_weight_for_psum(self):
        ws = dataflow_reuse(self.LAYER, "weight_stationary")
        os_ = dataflow_reuse(self.LAYER, "output_stationary")
        assert os_.weight_reuse < ws.weight_reuse
        assert os_.psum_reuse == ws.psum_reuse

    def test_arithmetic_intensity(self):
        r = ReuseFactors(weight_reuse=10.0, activation_reuse=10.0, psum_reuse=10.0)
        # Three streams at reuse 10 => 10/3 MACs per word moved.
        assert r.arithmetic_intensity == pytest.approx(10.0 / 3.0)

    def test_reuse_grows_with_output_plane(self):
        small = dataflow_reuse(ConvLayerWorkload(8, 8, 3, 8, 8))
        big = dataflow_reuse(ConvLayerWorkload(8, 8, 3, 64, 64))
        assert big.weight_reuse > 50 * small.weight_reuse
        assert big.arithmetic_intensity > small.arithmetic_intensity

    def test_validation(self):
        with pytest.raises(ValueError):
            dataflow_reuse(self.LAYER, "bogus")


class TestContinualLearning:
    """Section V: SNNs with local learning 'may be best suited for
    scenarios where the system will be required to continually learn and
    update its operation over time without … off-chip retraining.'

    The scenario: an STDP network deployed on two pattern classes; the
    input distribution then drifts to two NEW classes.  Continued
    unsupervised exposure plus a cheap re-assignment pass (no gradient
    training, no weight transport) recovers performance on the new
    distribution.
    """

    @staticmethod
    def _patterns(channel_groups, rng, n_per_class=8, t=40, f=16):
        trains, labels = [], []
        for cls, group in enumerate(channel_groups):
            rates = np.full(f, 0.02)
            rates[list(group)] = 0.6
            for _ in range(n_per_class):
                trains.append((rng.random((t, f)) < rates).astype(np.float64))
                labels.append(cls)
        return trains, np.array(labels)

    def test_stdp_adapts_to_distribution_shift(self):
        rng = np.random.default_rng(0)
        old_groups = [range(0, 4), range(4, 8)]
        new_groups = [range(8, 12), range(12, 16)]

        net = STDPNetwork(16, 12, rng=np.random.default_rng(1))

        # Phase 1: learn the original distribution.
        old_train, old_labels = self._patterns(old_groups, rng)
        net.fit(old_train, old_labels, num_classes=2, epochs=3)
        old_test, old_test_labels = self._patterns(old_groups, np.random.default_rng(50))
        assert net.accuracy(old_test, old_test_labels) >= 0.7

        # The deployed network sees the NEW distribution: before any
        # adaptation its assignments are stale.
        new_test, new_test_labels = self._patterns(new_groups, np.random.default_rng(60))

        # Phase 2: continual unsupervised exposure + re-assignment (the
        # cheap, local, backprop-free update loop).
        new_train, new_labels = self._patterns(new_groups, rng)
        net.fit(new_train, new_labels, num_classes=2, epochs=3)
        adapted_acc = net.accuracy(new_test, new_test_labels)
        assert adapted_acc >= 0.7

    def test_weights_track_the_new_inputs(self):
        rng = np.random.default_rng(0)
        net = STDPNetwork(16, 8, rng=np.random.default_rng(2))
        old_train, old_labels = self._patterns([range(0, 4), range(4, 8)], rng)
        net.fit(old_train, old_labels, num_classes=2, epochs=3)
        mass_old = net.weights[:, :8].sum()
        mass_new = net.weights[:, 8:].sum()
        assert mass_old > mass_new  # tuned to the first distribution

        new_train, new_labels = self._patterns([range(8, 12), range(12, 16)], rng)
        net.fit(new_train, new_labels, num_classes=2, epochs=4)
        mass_new_after = net.weights[:, 8:].sum()
        assert mass_new_after > mass_new  # synapses migrated to the new inputs
