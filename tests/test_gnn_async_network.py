"""Tests for the fully asynchronous event-graph inference engine."""

import numpy as np
import pytest

from repro.events import EventStream, Resolution
from repro.gnn import AsyncEventGNN, EventGNNClassifier
from repro.nn import Tensor, no_grad

RES = Resolution(24, 24)


def make_stream(n=80, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(100, 1500, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, RES.width, n),
        rng.integers(0, RES.height, n),
        rng.choice([-1, 1], n),
        Resolution(RES.width, RES.height),
    )


def make_async(model=None, include_position=False, **kw):
    if model is None:
        model = EventGNNClassifier(
            3, hidden=8, in_features=4 if include_position else 2,
            rng=np.random.default_rng(1),
        )
    return AsyncEventGNN(
        model,
        radius=4.0,
        time_scale_us=2000.0,
        window_us=1_000_000,
        max_degree=8,
        resolution=RES if include_position else None,
        include_position=include_position,
    )


class TestAsyncEquivalence:
    @pytest.mark.parametrize("include_position", [False, True])
    def test_matches_batch_forward(self, include_position):
        """Per-event streaming scores are bit-equal to a batch pass.

        Exact equality (not allclose): both paths run their matmuls
        under ``stable_matmul``, so the per-event computation produces
        the same bits as the windowed forward over the final graph.
        """
        stream = make_stream(60, seed=2)
        engine = make_async(include_position=include_position)
        reports = engine.process_stream(stream)
        async_scores = reports[-1].scores

        # built_graph() carries whatever node features the engine used
        # (including positions when configured), so it feeds the batch
        # model directly.
        graph = engine.built_graph()
        with no_grad():
            batch_scores = engine.model(graph).data[0]
        assert np.array_equal(async_scores, batch_scores)

    @pytest.mark.parametrize("include_position", [False, True])
    def test_bit_equal_to_windowed_builder(self, include_position):
        """Scores are bit-equal to a forward over build_event_graph's graph.

        Unlike ``test_matches_batch_forward`` this goes through the
        *batch* graph construction pipeline (the one windowed
        ``GNNPipeline.predict`` uses), so it pins the full serving
        invariant: same edges, same features, same bits.
        """
        from repro.gnn import GraphBuildConfig
        from repro.gnn.models import build_event_graph

        stream = make_stream(70, seed=9)
        engine = make_async(include_position=include_position)
        reports = engine.process_stream(stream)
        config = GraphBuildConfig(
            radius=4.0,
            time_scale_us=2000.0,
            max_events=10**9,
            max_degree=8,
            include_position=include_position,
        )
        graph = build_event_graph(stream, config)
        with no_grad():
            batch_scores = engine.model(graph).data[0]
        assert np.array_equal(reports[-1].scores, batch_scores)

    def test_node_features_match_batch(self):
        stream = make_stream(40, seed=3)
        engine = make_async()
        engine.process_stream(stream)
        graph = engine.built_graph()
        model = engine.model
        with no_grad():
            x = Tensor(graph.features)
            x = model.conv1(x, graph.edges, graph.positions).relu()
            x = model.conv2(x, graph.edges, graph.positions).relu()
        np.testing.assert_allclose(engine.node_features(), x.data, atol=1e-9)

    def test_prediction_matches(self):
        stream = make_stream(50, seed=4)
        engine = make_async()
        engine.process_stream(stream)
        graph = engine.built_graph()
        with no_grad():
            batch_pred = int(engine.model(graph).data.argmax())
        assert engine.predict() == batch_pred


class TestAsyncMechanics:
    def test_empty_scores(self):
        engine = make_async()
        assert np.allclose(engine.scores(), 0.0)
        assert engine.num_events == 0

    def test_per_event_work_bounded(self):
        stream = make_stream(100, seed=5)
        engine = make_async()
        reports = engine.process_stream(stream)
        for r in reports:
            assert r.num_neighbours <= 8  # degree cap
            assert r.macs > 0
        # Work per event does not grow with the number of processed events.
        early = np.mean([r.macs for r in reports[5:20]])
        late = np.mean([r.macs for r in reports[-15:]])
        assert late < 5 * early

    def test_scores_evolve(self):
        stream = make_stream(60, seed=6)
        engine = make_async()
        reports = engine.process_stream(stream)
        first = reports[0].scores
        last = reports[-1].scores
        assert not np.allclose(first, last)

    def test_causal_graph_built(self):
        stream = make_stream(40, seed=7)
        engine = make_async()
        engine.process_stream(stream)
        assert engine.built_graph().is_causal()

    def test_polarity_validation(self):
        engine = make_async()
        with pytest.raises(ValueError):
            engine.process_event(0, 0, 0, 0)

    def test_requires_edgeconv(self):
        model = EventGNNClassifier(2, hidden=4, conv="spline")
        with pytest.raises(TypeError):
            AsyncEventGNN(model)

    def test_position_requires_resolution(self):
        model = EventGNNClassifier(2, hidden=4, in_features=4)
        with pytest.raises(ValueError):
            AsyncEventGNN(model, include_position=True)

    def test_report_fields(self):
        engine = make_async()
        r = engine.process_event(5, 5, 100, 1)
        assert r.node_index == 0
        assert r.num_neighbours == 0
        assert r.scores.shape == (3,)

    @pytest.mark.parametrize(
        "include_position,width", [(False, 2), (True, 4)]
    )
    def test_empty_graph_feature_width(self, include_position, width):
        """Regression: the empty graph follows the configured layout.

        The width used to be hard-coded to 2, which broke downstream
        consumers of ``built_graph()`` before the first event whenever
        the engine ran with position features (width 4).
        """
        engine = make_async(include_position=include_position)
        graph = engine.built_graph()
        assert graph.features.shape == (0, width)
        assert graph.positions.shape == (0, 3)

    def test_out_of_order_timestamp_raises(self):
        """Regression: a timestamp before the last insertion must raise.

        Silent acceptance used to corrupt the causal-edge invariant the
        batch-equivalence guarantee rests on.
        """
        engine = make_async()
        engine.process_event(5, 5, 1000, 1)
        with pytest.raises(ValueError, match="out-of-order"):
            engine.process_event(6, 6, 500, 1)
        # Equal timestamps are legal (insertion order breaks the tie,
        # exactly as the batch builder's causal tie-break does).
        engine.process_event(6, 6, 1000, -1)
        assert engine.num_events == 2

    def test_one_head_eval_per_event(self):
        """Regression: the head runs once per event, matching the MACs.

        ``process_event`` used to charge head MACs into the report and
        then ``scores()`` re-ran the head to fill the report's scores —
        double the work, half of it unaccounted.
        """
        stream = make_stream(30, seed=8)
        engine = make_async()
        head = engine.model.head
        calls = {"n": 0}
        orig = head.forward

        def counting(x):
            calls["n"] += 1
            return orig(x)

        head.forward = counting
        reports = engine.process_stream(stream)
        assert calls["n"] == len(stream)
        # Reads between events are served from the cache, not the head.
        engine.scores()
        engine.predict()
        assert calls["n"] == len(stream)
        head_macs = head.in_features * head.out_features
        assert all(r.macs >= head_macs for r in reports)

    def test_reset_restores_fresh_state(self):
        stream = make_stream(40, seed=10)
        engine = make_async()
        first = engine.process_stream(stream)[-1].scores.copy()
        assert engine.num_events == len(stream)
        engine.reset()
        assert engine.num_events == 0
        assert np.allclose(engine.scores(), 0.0)
        assert engine.built_graph().num_edges == 0
        # Replaying the same stream reproduces the same bits.
        second = engine.process_stream(stream)[-1].scores
        assert np.array_equal(first, second)
        # And the reset clears the last-timestamp causality watermark.
        engine.reset()
        engine.process_event(1, 1, 5, 1)
