"""Tests for the fully asynchronous event-graph inference engine."""

import numpy as np
import pytest

from repro.events import EventStream, Resolution
from repro.gnn import AsyncEventGNN, EventGNNClassifier
from repro.nn import Tensor, no_grad

RES = Resolution(24, 24)


def make_stream(n=80, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(100, 1500, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, RES.width, n),
        rng.integers(0, RES.height, n),
        rng.choice([-1, 1], n),
        Resolution(RES.width, RES.height),
    )


def make_async(model=None, include_position=False, **kw):
    if model is None:
        model = EventGNNClassifier(
            3, hidden=8, in_features=4 if include_position else 2,
            rng=np.random.default_rng(1),
        )
    return AsyncEventGNN(
        model,
        radius=4.0,
        time_scale_us=2000.0,
        window_us=1_000_000,
        max_degree=8,
        resolution=RES if include_position else None,
        include_position=include_position,
    )


class TestAsyncEquivalence:
    @pytest.mark.parametrize("include_position", [False, True])
    def test_matches_batch_forward(self, include_position):
        """Per-event streaming scores equal a batch pass over the final graph."""
        stream = make_stream(60, seed=2)
        engine = make_async(include_position=include_position)
        reports = engine.process_stream(stream)
        async_scores = reports[-1].scores

        # built_graph() carries whatever node features the engine used
        # (including positions when configured), so it feeds the batch
        # model directly.
        graph = engine.built_graph()
        with no_grad():
            batch_scores = engine.model(graph).data[0]
        np.testing.assert_allclose(async_scores, batch_scores, atol=1e-9)

    def test_node_features_match_batch(self):
        stream = make_stream(40, seed=3)
        engine = make_async()
        engine.process_stream(stream)
        graph = engine.built_graph()
        model = engine.model
        with no_grad():
            x = Tensor(graph.features)
            x = model.conv1(x, graph.edges, graph.positions).relu()
            x = model.conv2(x, graph.edges, graph.positions).relu()
        np.testing.assert_allclose(engine.node_features(), x.data, atol=1e-9)

    def test_prediction_matches(self):
        stream = make_stream(50, seed=4)
        engine = make_async()
        engine.process_stream(stream)
        graph = engine.built_graph()
        with no_grad():
            batch_pred = int(engine.model(graph).data.argmax())
        assert engine.predict() == batch_pred


class TestAsyncMechanics:
    def test_empty_scores(self):
        engine = make_async()
        assert np.allclose(engine.scores(), 0.0)
        assert engine.num_events == 0

    def test_per_event_work_bounded(self):
        stream = make_stream(100, seed=5)
        engine = make_async()
        reports = engine.process_stream(stream)
        for r in reports:
            assert r.num_neighbours <= 8  # degree cap
            assert r.macs > 0
        # Work per event does not grow with the number of processed events.
        early = np.mean([r.macs for r in reports[5:20]])
        late = np.mean([r.macs for r in reports[-15:]])
        assert late < 5 * early

    def test_scores_evolve(self):
        stream = make_stream(60, seed=6)
        engine = make_async()
        reports = engine.process_stream(stream)
        first = reports[0].scores
        last = reports[-1].scores
        assert not np.allclose(first, last)

    def test_causal_graph_built(self):
        stream = make_stream(40, seed=7)
        engine = make_async()
        engine.process_stream(stream)
        assert engine.built_graph().is_causal()

    def test_polarity_validation(self):
        engine = make_async()
        with pytest.raises(ValueError):
            engine.process_event(0, 0, 0, 0)

    def test_requires_edgeconv(self):
        model = EventGNNClassifier(2, hidden=4, conv="spline")
        with pytest.raises(TypeError):
            AsyncEventGNN(model)

    def test_position_requires_resolution(self):
        model = EventGNNClassifier(2, hidden=4, in_features=4)
        with pytest.raises(ValueError):
            AsyncEventGNN(model, include_position=True)

    def test_report_fields(self):
        engine = make_async()
        r = engine.process_event(5, 5, 100, 1)
        assert r.node_index == 0
        assert r.num_neighbours == 0
        assert r.scores.shape == (3,)
