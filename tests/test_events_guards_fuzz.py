"""Span guards and AER round-trip fuzzing under injected bit flips.

Two defences added alongside the streaming executor are covered here:

* the span guards of :func:`repro.events.rate.rate_profile` and
  :func:`repro.events.ops.split_by_time`, which must reject a stream
  carrying one corrupted far-future timestamp with a clear ValueError in
  O(len(stream)) instead of allocating a span-proportional histogram or
  yielding windows forever;
* the AER decode path, which must quarantine corrupted bus words into
  exact counters and never emit an invalid stream, no matter which bits
  flip on the link.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    AERCodec,
    EventStream,
    MAX_RATE_BINS,
    MAX_SPLIT_WINDOWS,
    Resolution,
)
from repro.events.ops import split_by_time
from repro.events.rate import peak_rate, rate_profile


def corrupt_stream(n=1000, far=2**62):
    arr_t = np.arange(n, dtype=np.int64)
    arr_t[-1] = far
    rng = np.random.default_rng(0)
    return EventStream.from_arrays(
        arr_t,
        rng.integers(0, 32, n),
        rng.integers(0, 32, n),
        rng.choice([-1, 1], n),
        Resolution(32, 32),
    )


def make_stream(n, width=64, height=48, max_dt=3000, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(0, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


# ----------------------------------------------------------------------
# Span guards
# ----------------------------------------------------------------------
class TestSpanGuards:
    def test_rate_profile_rejects_far_future_timestamp(self):
        s = corrupt_stream()
        with pytest.raises(ValueError, match="spans") as exc:
            rate_profile(s)
        assert str(MAX_RATE_BINS) in str(exc.value)

    def test_split_by_time_rejects_far_future_timestamp(self):
        s = corrupt_stream()
        with pytest.raises(ValueError, match="spans") as exc:
            split_by_time(s, 1000)
        assert str(MAX_SPLIT_WINDOWS) in str(exc.value)

    def test_split_by_time_raises_eagerly_not_on_first_next(self):
        # The error must fire at call time, before any iteration.
        with pytest.raises(ValueError, match="spans"):
            split_by_time(corrupt_stream(), 1000)

    def test_guards_fire_fast(self):
        # O(len(stream)), never O(span): a 2**62-us span must be
        # rejected in well under a second even on a slow machine.
        s = corrupt_stream(n=100_000)
        for fn in (lambda: rate_profile(s), lambda: split_by_time(s, 1000)):
            start = time.perf_counter()
            with pytest.raises(ValueError):
                fn()
            assert time.perf_counter() - start < 1.0

    def test_peak_rate_forwards_max_bins(self):
        with pytest.raises(ValueError, match="spans"):
            peak_rate(corrupt_stream())

    def test_raising_max_bins_unblocks_wide_streams(self):
        s = corrupt_stream(far=10_000_000)
        with pytest.raises(ValueError):
            rate_profile(s, bin_us=1, max_bins=1000)
        profile = rate_profile(s, bin_us=1000, max_bins=20_000)
        assert profile.counts.sum() == len(s)

    def test_split_by_time_custom_max_windows(self):
        s = make_stream(100, max_dt=100)
        with pytest.raises(ValueError, match="max_windows"):
            split_by_time(s, 1, max_windows=10)

    def test_clean_streams_unaffected(self):
        s = make_stream(500)
        profile = rate_profile(s)
        assert int(profile.counts.sum()) == len(s)
        windows = list(split_by_time(s, 10_000))
        assert sum(len(w) for w in windows) == len(s)


# ----------------------------------------------------------------------
# AER round-trip fuzzing
# ----------------------------------------------------------------------
class TestAERFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 300),
        seed=st.integers(0, 1000),
        num_flips=st.integers(0, 40),
        flip_seed=st.integers(0, 1000),
    )
    def test_decoded_stream_always_validates(self, n, seed, num_flips, flip_seed):
        res = Resolution(64, 48)
        codec = AERCodec(res, timestamp_bits=12)
        original = make_stream(n, seed=seed)
        assert original.validate() == []
        words = codec.encode(original)

        rng = np.random.default_rng(flip_seed)
        corrupted = words.copy()
        for _ in range(num_flips):
            i = int(rng.integers(0, len(corrupted)))
            bit = int(rng.integers(0, 64))
            corrupted[i] ^= np.uint64(1) << np.uint64(bit)

        decoded, stats = codec.decode_with_stats(corrupted, t_origin=0)
        # Whatever the flips did, the decoder never emits invalid data.
        assert decoded.validate() == []
        assert decoded.resolution == res
        # Quarantine accounting is exact: every word is an emitted
        # event, a timer wrap, or a counted drop.
        assert stats.num_words == len(corrupted)
        assert stats.num_events == len(decoded)
        assert (
            stats.num_events + stats.num_wrap_words + stats.num_dropped
            == stats.num_words
        )
        assert stats.dropped_out_of_range >= 0
        assert stats.dropped_rollover >= 0

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 300), seed=st.integers(0, 1000))
    def test_clean_roundtrip_is_lossless(self, n, seed):
        res = Resolution(64, 48)
        codec = AERCodec(res, timestamp_bits=12)
        original = make_stream(n, seed=seed)
        decoded, stats = codec.decode_with_stats(
            codec.encode(original), t_origin=int(original.t[0])
        )
        assert decoded == original
        assert stats.num_dropped == 0
        assert stats.num_events == n

    def test_targeted_address_flip_is_quarantined(self):
        # Flip the top x-address bit of one word on a 48-wide array:
        # the decoded x lands outside the sensor and must be dropped.
        res = Resolution(48, 48)
        codec = AERCodec(res)
        # x = 21 with the top of its 6-bit field flipped becomes 53 > 47.
        s = EventStream.from_arrays([0, 10, 20], [20, 21, 22], [4, 5, 6], [1, 1, 1], res)
        words = codec.encode(s)
        words[1] ^= np.uint64(1) << np.uint64(codec.x_bits - 1)
        decoded, stats = codec.decode_with_stats(words, t_origin=0)
        assert stats.dropped_out_of_range == 1
        assert len(decoded) == 2
        assert decoded.validate() == []

    def test_wrap_run_rollover_is_quarantined(self):
        # A corrupted packet that is all timer wraps pushes the clock
        # past the rollover limit; following events must be dropped.
        res = Resolution(8, 8)
        codec = AERCodec(res, timestamp_bits=4)
        s = EventStream.from_arrays([0, 5], [0, 1], [0, 0], [1, 1], res)
        words = codec.encode(s)
        wrap_word = np.uint64(codec._wrap_delta) << np.uint64(codec._t_shift)
        # 2**62 / 15 us per wrap ~ 3e17 wraps would be needed; instead
        # corrupt the delta field of the second word to its maximum
        # non-wrap value repeatedly via a long wrap prefix.
        run = np.concatenate([np.full(100, wrap_word, dtype=np.uint64), words])
        decoded, stats = codec.decode_with_stats(
            run, t_origin=0, rollover_limit_us=1000
        )
        assert stats.dropped_rollover == 2
        assert len(decoded) == 0
