"""Tests for noise injection, readout and mitigation strategies."""

import numpy as np
import pytest

from repro.camera import (
    Fovea,
    NoiseParams,
    ReadoutParams,
    add_noise,
    background_activity,
    centre_surround_suppression,
    foveate,
    hot_pixel_events,
    rate_limiter,
    simulate_readout,
)
from repro.events import EventStream, Resolution

RES = Resolution(32, 32)


def make_stream(n=100, width=32, height=32, max_dt=100, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


class TestNoise:
    def test_ba_rate_scaling(self):
        rng = np.random.default_rng(0)
        p = NoiseParams(ba_rate_hz=10.0)
        ev = background_activity(RES, 1_000_000, p, rng)
        expected = 10.0 * RES.num_pixels  # 1 second
        assert 0.8 * expected < len(ev) < 1.2 * expected

    def test_ba_polarity_bias(self):
        rng = np.random.default_rng(0)
        p = NoiseParams(ba_rate_hz=50.0, ba_on_fraction=0.9)
        ev = background_activity(RES, 1_000_000, p, rng)
        on, off = ev.polarity_counts()
        assert on > 5 * off

    def test_ba_zero_rate(self):
        rng = np.random.default_rng(0)
        ev = background_activity(RES, 100_000, NoiseParams(ba_rate_hz=0.0), rng)
        assert len(ev) == 0

    def test_hot_pixels_concentrated(self):
        rng = np.random.default_rng(1)
        p = NoiseParams(hot_pixel_fraction=0.01, hot_pixel_rate_hz=1000.0)
        ev = hot_pixel_events(RES, 1_000_000, p, rng)
        assert len(ev) > 0
        # All events come from ~1% of pixels.
        unique_pixels = np.unique(ev.pixel_index()).size
        assert unique_pixels <= int(0.01 * RES.num_pixels) + 1

    def test_hot_pixel_rate(self):
        rng = np.random.default_rng(1)
        p = NoiseParams(hot_pixel_fraction=0.01, hot_pixel_rate_hz=500.0)
        ev = hot_pixel_events(RES, 1_000_000, p, rng)
        num_hot = int(round(0.01 * RES.num_pixels))
        assert len(ev) == pytest.approx(num_hot * 500, rel=0.1)

    def test_add_noise_merges_sorted(self):
        s = make_stream(200)
        rng = np.random.default_rng(0)
        noisy = add_noise(s, NoiseParams(ba_rate_hz=20.0), rng)
        assert len(noisy) >= len(s)
        assert np.all(np.diff(noisy.t) >= 0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            NoiseParams(ba_rate_hz=-1)
        with pytest.raises(ValueError):
            NoiseParams(ba_on_fraction=2)
        with pytest.raises(ValueError):
            NoiseParams(hot_pixel_fraction=-0.5)


class TestReadout:
    def test_high_capacity_passthrough(self):
        s = make_stream(100)
        r = simulate_readout(s, ReadoutParams(throughput_eps=1e9))
        assert r.num_dropped == 0
        assert len(r.stream) == 100
        assert r.mean_latency_us < 1.0

    def test_saturation_drops(self):
        # 1000 events in ~1 ms with 1 kEPS capacity and a tiny FIFO.
        s = make_stream(1000, max_dt=2)
        r = simulate_readout(s, ReadoutParams(throughput_eps=1e3, fifo_depth=8))
        assert r.num_dropped > 0
        assert r.drop_fraction > 0.5

    def test_queueing_latency_grows(self):
        s = make_stream(500, max_dt=2)
        fast = simulate_readout(s, ReadoutParams(throughput_eps=1e9, fifo_depth=10_000))
        slow = simulate_readout(s, ReadoutParams(throughput_eps=1e6, fifo_depth=10_000))
        assert slow.mean_latency_us > fast.mean_latency_us

    def test_output_sorted(self):
        s = make_stream(300, max_dt=5)
        r = simulate_readout(s, ReadoutParams(throughput_eps=1e5, fifo_depth=64))
        assert np.all(np.diff(r.stream.t) >= 0)

    def test_empty(self):
        r = simulate_readout(EventStream.empty(RES), ReadoutParams())
        assert len(r.stream) == 0
        assert r.drop_fraction == 0.0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            ReadoutParams(throughput_eps=0)
        with pytest.raises(ValueError):
            ReadoutParams(fifo_depth=0)


class TestRateLimiter:
    def test_limits_bursts(self):
        s = make_stream(2000, max_dt=2)  # very high rate
        limited = rate_limiter(s, max_rate_eps=100_000, window_us=1000)
        # Budget: 100 events per 1 ms window.
        from repro.events import rate_profile

        prof = rate_profile(limited, bin_us=1000)
        assert prof.counts.max() <= 110  # window misalignment tolerance

    def test_no_op_below_limit(self):
        s = make_stream(50, max_dt=10_000)
        assert rate_limiter(s, max_rate_eps=1e9) == s

    def test_validation(self):
        s = make_stream(10)
        with pytest.raises(ValueError):
            rate_limiter(s, 0)
        with pytest.raises(ValueError):
            rate_limiter(s, 100, window_us=0)


class TestMitigation:
    def test_foveate_preserves_fovea(self):
        s = make_stream(500, seed=2)
        fov = Fovea(cx=16, cy=16, radius=100, peripheral_factor=4)  # everything foveal
        assert foveate(s, fov) == s

    def test_foveate_reduces_periphery(self):
        s = make_stream(3000, max_dt=3, seed=2)
        fov = Fovea(cx=16, cy=16, radius=4, peripheral_factor=8)
        out = foveate(s, fov)
        assert len(out) < len(s)
        assert out.resolution == s.resolution

    def test_foveate_snaps_peripheral_coordinates(self):
        res = Resolution(16, 16)
        s = EventStream.from_arrays([0], [15], [15], [1], res)
        out = foveate(s, Fovea(cx=0, cy=0, radius=1, peripheral_factor=4))
        # 15 // 4 * 4 + 2 = 14
        assert out.x.tolist() == [14]
        assert out.y.tolist() == [14]

    def test_fovea_validation(self):
        with pytest.raises(ValueError):
            Fovea(0, 0, -1)
        with pytest.raises(ValueError):
            Fovea(0, 0, 1, peripheral_factor=0)

    def test_centre_surround_passes_isolated_edge(self):
        res = Resolution(16, 16)
        # A lone edge: few active neighbours => passes.
        s = EventStream.from_arrays(
            [0, 10, 20], [5, 5, 5], [5, 6, 7], [1, 1, 1], res
        )
        out = centre_surround_suppression(s, surround_radius=2, window_us=1000)
        assert len(out) == 3

    def test_centre_surround_suppresses_full_field(self):
        res = Resolution(8, 8)
        # Every pixel fires in a tight window: late events see a fully
        # active surround and are suppressed.
        n = res.num_pixels
        t = np.arange(n, dtype=np.int64)
        x = np.tile(np.arange(8), 8)
        y = np.repeat(np.arange(8), 8)
        s = EventStream.from_arrays(t, x, y, np.ones(n, dtype=np.int8), res)
        out = centre_surround_suppression(
            s, surround_radius=2, window_us=10_000, activity_threshold=0.5
        )
        assert len(out) < n

    def test_centre_surround_validation(self):
        s = make_stream(10)
        with pytest.raises(ValueError):
            centre_surround_suppression(s, surround_radius=0)
        with pytest.raises(ValueError):
            centre_surround_suppression(s, window_us=0)
        with pytest.raises(ValueError):
            centre_surround_suppression(s, activity_threshold=0)


class TestParamEdgeCases:
    """Edge-case hardening: severity knobs, saturation, degenerate inputs."""

    def test_noise_params_reject_non_finite(self):
        for kwargs in (
            {"ba_rate_hz": float("nan")},
            {"ba_rate_hz": float("inf")},
            {"ba_on_fraction": float("nan")},
            {"hot_pixel_fraction": float("inf")},
            {"hot_pixel_rate_hz": float("nan")},
        ):
            with pytest.raises(ValueError, match="finite"):
                NoiseParams(**kwargs)

    def test_readout_params_reject_non_finite(self):
        with pytest.raises(ValueError):
            ReadoutParams(throughput_eps=float("nan"))
        with pytest.raises(ValueError):
            ReadoutParams(throughput_eps=float("inf"))

    def test_noise_scaled_zero_disables(self):
        p = NoiseParams(ba_rate_hz=2.0, hot_pixel_fraction=0.1).scaled(0.0)
        assert p.ba_rate_hz == 0.0
        assert p.hot_pixel_fraction == 0.0
        s = background_activity(RES, 100_000, p, np.random.default_rng(0))
        assert len(s) == 0

    def test_noise_scaled_caps_hot_fraction(self):
        p = NoiseParams(hot_pixel_fraction=0.4).scaled(10.0)
        assert p.hot_pixel_fraction == 1.0
        assert p.ba_on_fraction == NoiseParams().ba_on_fraction

    def test_noise_scaled_validation(self):
        with pytest.raises(ValueError, match="factor"):
            NoiseParams().scaled(-1.0)
        with pytest.raises(ValueError, match="factor"):
            NoiseParams().scaled(float("nan"))

    def test_readout_derate_validation(self):
        with pytest.raises(ValueError, match="factor"):
            ReadoutParams().derate(0.5)
        with pytest.raises(ValueError, match="factor"):
            ReadoutParams().derate(float("inf"))

    def test_readout_derate_pushes_towards_saturation(self):
        s = make_stream(n=2000, max_dt=5)
        params = ReadoutParams(throughput_eps=1e6, fifo_depth=16)
        clean = simulate_readout(s, params)
        stressed = simulate_readout(s, params.derate(50.0))
        assert stressed.num_dropped > clean.num_dropped
        assert stressed.mean_latency_us >= clean.mean_latency_us

    def test_full_saturation_bus_keeps_fifo_worth(self):
        # A bus far below the input rate drops almost everything but must
        # never produce an invalid stream or negative latency.
        s = make_stream(n=5000, max_dt=2)
        result = simulate_readout(s, ReadoutParams(throughput_eps=100.0, fifo_depth=8))
        assert result.num_dropped > 0.9 * len(s)
        assert len(result.stream) + result.num_dropped == len(s)
        assert result.stream.validate() == []
        assert result.max_latency_us >= 0
        assert 0.0 < result.drop_fraction < 1.0

    def test_rate_limiter_zero_and_negative_rate_rejected(self):
        s = make_stream()
        for rate in (0.0, -10.0):
            with pytest.raises(ValueError, match="max_rate_eps"):
                rate_limiter(s, rate)
        with pytest.raises(ValueError, match="window_us"):
            rate_limiter(s, 1e6, window_us=0)

    def test_rate_limiter_empty_stream(self):
        empty = EventStream.empty(RES)
        out = rate_limiter(empty, 1e3)
        assert len(out) == 0
        assert out.resolution == RES

    def test_rate_limiter_tiny_budget_keeps_one_per_window(self):
        # Budget rounds up to one event per window, never to zero.
        s = make_stream(n=1000, max_dt=3)
        out = rate_limiter(s, 1e-6, window_us=1000)
        t0 = int(s.t[0])
        windows = np.unique((s.t - t0) // 1000)
        assert len(out) == windows.size
        assert out.validate() == []

    def test_simulate_readout_empty_stream(self):
        result = simulate_readout(EventStream.empty(RES), ReadoutParams())
        assert len(result.stream) == 0
        assert result.num_dropped == 0
        assert result.drop_fraction == 0.0
