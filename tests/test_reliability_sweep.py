"""Tests for the robustness sweep (repro.reliability.sweep).

Covers the acceptance criterion of the reliability subsystem: a sweep
over a dataset containing deliberately corrupted recordings completes
without raising, quarantines exactly the corrupted ones in its
RunReport, and produces monotone-trending accuracy-degradation curves
for all three paradigms with a fixed seed (deterministic across runs).
"""

import numpy as np
import pytest

from repro.core import (
    AXES,
    CNNPipeline,
    ComparisonResult,
    GNNPipeline,
    PipelineMetrics,
    SNNPipeline,
    rate_values,
    render_table,
    to_markdown,
)
from repro.datasets import make_shapes_dataset, train_test_split
from repro.datasets.base import EventDataset, EventSample
from repro.events import Resolution
from repro.gnn import GraphBuildConfig
from repro.reliability import (
    OutOfOrderCorruption,
    RobustnessSweepResult,
    RunReport,
    SweepPoint,
    attach_to_comparison,
    rate_sweep,
    robustness_scores,
    run_robustness_sweep,
)

SEVERITIES = (0.0, 0.5, 1.0)
CORRUPTED = (1, 5)


def fast_pipelines(seed=0):
    return {
        "SNN": SNNPipeline(num_steps=10, pool=3, hidden=24, epochs=8, seed=seed),
        "CNN": CNNPipeline(base_width=4, epochs=8, seed=seed),
        "GNN": GNNPipeline(
            config=GraphBuildConfig(
                radius=4.0, time_scale_us=3000.0, max_events=150, max_degree=8
            ),
            hidden=8,
            epochs=8,
            seed=seed,
        ),
    }


@pytest.fixture(scope="module")
def corrupted_split():
    ds = make_shapes_dataset(
        num_per_class=8, resolution=Resolution(24, 24), duration_us=40_000, seed=0
    )
    train, test = train_test_split(ds, 0.4, np.random.default_rng(0))
    samples = list(test.samples)
    for offset, index in enumerate(CORRUPTED):
        sample = samples[index]
        broken = OutOfOrderCorruption(0.2)(sample.stream, seed=1000 + offset)
        samples[index] = EventSample(broken, sample.label, sample.metadata)
    test = EventDataset(samples, test.class_names, "corrupted")
    return train, test


@pytest.fixture(scope="module")
def sweep(corrupted_split):
    train, test = corrupted_split
    return run_robustness_sweep(
        train, test, severities=SEVERITIES, pipelines=fast_pipelines(), seed=0
    )


class TestAcceptance:
    def test_completes_for_all_paradigms(self, sweep):
        assert set(sweep.curves) == {"SNN", "CNN", "GNN"}
        for points in sweep.curves.values():
            assert [p.severity for p in points] == list(SEVERITIES)

    def test_quarantines_exactly_the_corrupted_recordings(self, sweep):
        # At EVERY severity — including ones whose faults re-sort time.
        for points in sweep.curves.values():
            for point in points:
                assert tuple(point.report.quarantined_indices) == CORRUPTED

    def test_curves_trend_monotone_down(self, sweep):
        for name in sweep.curves:
            curve = sweep.accuracies(name)
            assert all(np.isfinite(curve))
            assert curve[0] + 1e-9 >= curve[-1], (name, curve)

    def test_deterministic_across_two_runs(self, sweep, corrupted_split):
        train, test = corrupted_split
        rerun = run_robustness_sweep(
            train, test, severities=SEVERITIES, pipelines=fast_pipelines(), seed=0
        )
        for name in sweep.curves:
            assert sweep.accuracies(name) == rerun.accuracies(name)
        assert robustness_scores(sweep) == robustness_scores(rerun)

    def test_scores_in_unit_interval(self, sweep):
        scores = robustness_scores(sweep)
        assert set(scores) == {"SNN", "CNN", "GNN"}
        for value in scores.values():
            assert 0.0 <= value <= 1.0


class TestSweepResume:
    def test_checkpoint_dir_resumes_points(self, corrupted_split, tmp_path):
        train, test = corrupted_split
        kwargs = dict(
            severities=SEVERITIES, seed=0, checkpoint_dir=tmp_path
        )
        first = run_robustness_sweep(
            train, test, pipelines=fast_pipelines(), **kwargs
        )
        assert (tmp_path / "sweep_state.json").exists()
        assert (tmp_path / "snn_model.npz").exists()
        second = run_robustness_sweep(
            train, test, pipelines=fast_pipelines(), **kwargs
        )
        for name in first.curves:
            assert first.accuracies(name) == second.accuracies(name)


class TestValidation:
    def test_rejects_unordered_severities(self, corrupted_split):
        train, test = corrupted_split
        with pytest.raises(ValueError, match="ascending"):
            run_robustness_sweep(train, test, severities=(0.5, 0.0))

    def test_rejects_empty_severities(self, corrupted_split):
        train, test = corrupted_split
        with pytest.raises(ValueError, match="empty"):
            run_robustness_sweep(train, test, severities=())

    def test_rejects_partial_pipelines(self, corrupted_split):
        train, test = corrupted_split
        with pytest.raises(ValueError, match="pipelines"):
            run_robustness_sweep(
                train, test, pipelines={"SNN": SNNPipeline()}
            )


def synthetic_result(scores):
    """A minimal sweep result with the given clean/stressed accuracies."""
    result = RobustnessSweepResult(severities=(0.0, 1.0), seed=0)
    for name, (clean, stressed) in scores.items():
        result.curves[name] = [
            SweepPoint(0.0, clean, RunReport(pipeline=name, fault="", seed=0)),
            SweepPoint(1.0, stressed, RunReport(pipeline=name, fault="", seed=0)),
        ]
    return result


class TestScoring:
    def test_retained_accuracy_definition(self):
        result = synthetic_result(
            {"SNN": (0.8, 0.4), "CNN": (0.9, 0.9), "GNN": (0.5, 0.0)}
        )
        scores = robustness_scores(result)
        assert scores["SNN"] == pytest.approx(0.5)
        assert scores["CNN"] == pytest.approx(1.0)
        assert scores["GNN"] == pytest.approx(0.0)

    def test_improvement_clips_to_one(self):
        result = synthetic_result({"SNN": (0.5, 0.7), "CNN": (1, 1), "GNN": (1, 1)})
        assert robustness_scores(result)["SNN"] == pytest.approx(1.0)

    def test_nan_clean_accuracy_scores_nan(self):
        result = synthetic_result(
            {"SNN": (float("nan"), 0.5), "CNN": (1, 1), "GNN": (1, 1)}
        )
        assert np.isnan(robustness_scores(result)["SNN"])

    def test_rate_sweep_orders_paradigms(self):
        result = synthetic_result(
            {"SNN": (0.8, 0.8), "CNN": (0.8, 0.4), "GNN": (0.8, 0.1)}
        )
        ratings = rate_sweep(result)
        assert ratings["SNN"].value == "++"
        assert ratings["GNN"].value == "-"


def synthetic_comparison():
    """A comparison result without the expensive training runs."""
    metrics = {name: PipelineMetrics(paradigm=name) for name in ("SNN", "CNN", "GNN")}
    result = ComparisonResult(metrics=metrics)
    for axis in AXES:
        values = {name: metrics[name].value(axis) for name in metrics}
        result.ratings[axis.key] = rate_values(
            values, axis.higher_is_better, axis.tie_tolerance
        )
    return result


class TestComparisonIntegration:
    def test_attach_adds_robustness_row(self):
        comparison = synthetic_comparison()
        n_axes_before = len(comparison.axes)
        result = synthetic_result(
            {"SNN": (0.8, 0.6), "CNN": (0.8, 0.7), "GNN": (0.8, 0.2)}
        )
        updated = attach_to_comparison(comparison, result)
        assert len(updated.axes) == n_axes_before + 1
        assert updated.axes[-1].key == "robustness"
        assert "robustness" in updated.ratings
        table = render_table(updated)
        assert "robustness" in table.lower()
        assert "robustness" in to_markdown(updated).lower()

    def test_default_table_unchanged_without_attach(self):
        comparison = synthetic_comparison()
        assert len(comparison.axes) == len(AXES)
        assert "robustness" not in render_table(comparison).lower()
