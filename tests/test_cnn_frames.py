"""Tests for event -> dense-frame representations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn import (
    REPRESENTATIONS,
    count_and_surface,
    count_frame,
    time_surface,
    tore_volume,
    two_channel_frame,
    voxel_grid,
)
from repro.events import EventStream, Resolution

RES = Resolution(8, 6)


def make_stream(n=50, seed=0, max_dt=1000):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(1, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, RES.width, n),
        rng.integers(0, RES.height, n),
        rng.choice([-1, 1], n),
        RES,
    )


class TestCountFrames:
    def test_signed_count(self):
        s = EventStream.from_arrays([0, 1, 2], [0, 0, 1], [0, 0, 0], [1, -1, 1], RES)
        f = count_frame(s, signed=True)
        assert f.shape == (1, 6, 8)
        assert f[0, 0, 0] == 0.0  # +1 - 1
        assert f[0, 0, 1] == 1.0

    def test_unsigned_count(self):
        s = EventStream.from_arrays([0, 1], [0, 0], [0, 0], [1, -1], RES)
        assert count_frame(s, signed=False)[0, 0, 0] == 2.0

    def test_two_channel(self):
        s = EventStream.from_arrays([0, 1, 2], [0, 0, 0], [0, 0, 0], [1, 1, -1], RES)
        f = two_channel_frame(s)
        assert f.shape == (2, 6, 8)
        assert f[0, 0, 0] == 2.0
        assert f[1, 0, 0] == 1.0

    def test_total_preserved(self):
        s = make_stream(200)
        assert two_channel_frame(s).sum() == len(s)

    def test_empty(self):
        e = EventStream.empty(RES)
        assert count_frame(e).sum() == 0
        assert two_channel_frame(e).sum() == 0


class TestTimeSurface:
    def test_recent_pixels_brighter(self):
        s = EventStream.from_arrays([0, 50_000], [0, 3], [0, 0], [1, 1], RES)
        ts = time_surface(s, tau_us=30_000)
        assert ts[0, 0, 3] > ts[0, 0, 0]
        assert ts[0, 0, 3] == pytest.approx(1.0)  # t_ref = its own timestamp

    def test_polarity_channels_separate(self):
        s = EventStream.from_arrays([0, 1], [0, 1], [0, 0], [1, -1], RES)
        ts = time_surface(s)
        assert ts[0, 0, 0] > 0 and ts[0, 0, 1] == 0
        assert ts[1, 0, 1] > 0 and ts[1, 0, 0] == 0

    def test_linear_decay_reaches_zero(self):
        s = EventStream.from_arrays([0, 100_000], [0, 1], [0, 0], [1, 1], RES)
        ts = time_surface(s, tau_us=50_000, decay="linear")
        assert ts[0, 0, 0] == 0.0  # older than the window

    def test_exp_decay_value(self):
        s = EventStream.from_arrays([0, 30_000], [0, 1], [0, 0], [1, 1], RES)
        ts = time_surface(s, tau_us=30_000)
        assert ts[0, 0, 0] == pytest.approx(np.exp(-1.0))

    def test_latest_event_wins(self):
        s = EventStream.from_arrays([0, 10_000, 20_000], [0, 0, 0], [0, 0, 0], [1, 1, 1], RES)
        ts = time_surface(s, tau_us=30_000, t_ref=20_000)
        assert ts[0, 0, 0] == pytest.approx(1.0)

    def test_validation(self):
        s = make_stream(5)
        with pytest.raises(ValueError):
            time_surface(s, tau_us=0)
        with pytest.raises(ValueError):
            time_surface(s, decay="bogus")

    def test_count_and_surface_stacks(self):
        f = count_and_surface(make_stream(20))
        assert f.shape == (4, 6, 8)


class TestVoxelGrid:
    def test_shape_and_mass(self):
        s = make_stream(100)
        v = voxel_grid(s, num_bins=5)
        assert v.shape == (5, 6, 8)
        # Bilinear weights sum to the signed polarity total.
        assert v.sum() == pytest.approx(float(s.p.sum()))

    def test_temporal_localisation(self):
        # One early, one late event: they land in the first and last bins.
        s = EventStream.from_arrays([0, 100_000], [0, 3], [0, 0], [1, 1], RES)
        v = voxel_grid(s, num_bins=4)
        assert v[0, 0, 0] == pytest.approx(1.0)
        assert v[3, 0, 3] == pytest.approx(1.0)

    def test_midpoint_split(self):
        s = EventStream.from_arrays([0, 50_000, 100_000], [0, 1, 2], [0, 0, 0], [1, 1, 1], RES)
        v = voxel_grid(s, num_bins=3)
        # Middle event sits exactly on bin 1.
        assert v[1, 0, 1] == pytest.approx(1.0)

    def test_single_bin(self):
        s = make_stream(30)
        v = voxel_grid(s, num_bins=1)
        assert v.sum() == pytest.approx(float(s.p.sum()))

    def test_validation_and_empty(self):
        with pytest.raises(ValueError):
            voxel_grid(make_stream(5), 0)
        assert voxel_grid(EventStream.empty(RES), 3).sum() == 0


class TestToreVolume:
    def test_shape(self):
        v = tore_volume(make_stream(100), k=3)
        assert v.shape == (6, 6, 8)

    def test_values_in_unit_range(self):
        v = tore_volume(make_stream(200, seed=2), k=2)
        assert v.min() >= 0.0
        assert v.max() <= 1.0

    def test_keeps_multiple_events(self):
        # Three ON events at one pixel: with k=2 the two most recent ages
        # fill both channel slots.
        s = EventStream.from_arrays(
            [0, 10_000, 20_000], [0, 0, 0], [0, 0, 0], [1, 1, 1], RES
        )
        v = tore_volume(s, k=2)
        assert v[0, 0, 0] > 0  # most recent
        assert v[1, 0, 0] > 0  # second most recent
        assert v[0, 0, 0] > v[1, 0, 0]

    def test_validation_and_empty(self):
        with pytest.raises(ValueError):
            tore_volume(make_stream(5), k=0)
        with pytest.raises(ValueError):
            tore_volume(make_stream(5), tau_us=0)
        assert tore_volume(EventStream.empty(RES)).sum() == 0


class TestRepresentationZoo:
    @pytest.mark.parametrize("name", sorted(REPRESENTATIONS))
    def test_declared_channels_match(self, name):
        rep = REPRESENTATIONS[name]
        out = rep(make_stream(50))
        assert out.shape == (rep.channels, RES.height, RES.width)

    @pytest.mark.parametrize("name", sorted(REPRESENTATIONS))
    def test_empty_stream_ok(self, name):
        rep = REPRESENTATIONS[name]
        out = rep(EventStream.empty(RES))
        assert out.shape[0] == rep.channels
        assert np.all(out == 0)

    def test_timing_flags(self):
        assert not REPRESENTATIONS["count"].preserves_timing
        assert REPRESENTATIONS["time_surface"].preserves_timing
        assert REPRESENTATIONS["voxel"].preserves_timing

    @given(st.integers(1, 100), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_count_mass_conserved(self, n, seed):
        s = make_stream(n, seed=seed)
        assert two_channel_frame(s).sum() == n
        assert count_frame(s, signed=False).sum() == n
