"""Tests for the DVS pixel model and end-to-end camera."""

import numpy as np
import pytest

from repro.camera import (
    CameraConfig,
    EventCamera,
    MovingBar,
    NoiseParams,
    PixelArray,
    PixelParams,
    ReadoutParams,
    TexturePan,
)
from repro.events import EventStream, Resolution

RES = Resolution(16, 12)


def uniform_log(value, res=RES):
    return np.full((res.height, res.width), value, dtype=np.float64)


class TestPixelArray:
    def test_first_step_emits_nothing(self):
        arr = PixelArray(RES)
        ev = arr.step(uniform_log(0.0), 0)
        assert len(ev) == 0

    def test_on_event_on_rise(self):
        arr = PixelArray(RES, PixelParams(threshold_on=0.2, threshold_off=0.2))
        arr.step(uniform_log(0.0), 0)
        ev = arr.step(uniform_log(0.25), 1000)
        assert len(ev) == RES.num_pixels
        assert np.all(ev.p == 1)

    def test_off_event_on_fall(self):
        arr = PixelArray(RES, PixelParams(threshold_on=0.2, threshold_off=0.2))
        arr.step(uniform_log(1.0), 0)
        ev = arr.step(uniform_log(0.75), 1000)
        assert np.all(ev.p == -1)

    def test_subthreshold_silent(self):
        arr = PixelArray(RES, PixelParams(threshold_on=0.2, threshold_off=0.2))
        arr.step(uniform_log(0.0), 0)
        ev = arr.step(uniform_log(0.1), 1000)
        assert len(ev) == 0

    def test_multiple_crossings_multiple_events(self):
        arr = PixelArray(Resolution(1, 1), PixelParams(threshold_on=0.2, threshold_off=0.2))
        arr.step(np.zeros((1, 1)), 0)
        ev = arr.step(np.full((1, 1), 0.65), 1000)
        assert len(ev) == 3  # 0.65 / 0.2 = 3 full crossings
        assert np.all(np.diff(ev.t) >= 0)

    def test_timestamp_interpolation(self):
        arr = PixelArray(Resolution(1, 1), PixelParams(threshold_on=0.2, threshold_off=0.2))
        arr.step(np.zeros((1, 1)), 0)
        ev = arr.step(np.full((1, 1), 0.4), 1000)
        # Crossings at 0.2 and 0.4 of linear ramp => t = 500, 1000.
        assert ev.t.tolist() == [500, 1000]

    def test_reference_memory(self):
        arr = PixelArray(Resolution(1, 1), PixelParams(threshold_on=0.2, threshold_off=0.2))
        arr.step(np.zeros((1, 1)), 0)
        arr.step(np.full((1, 1), 0.25), 1000)  # one ON, reference -> 0.2
        # Rising to 0.35 is only +0.15 above the new reference: silent.
        ev = arr.step(np.full((1, 1), 0.35), 2000)
        assert len(ev) == 0
        # But reaching 0.45 crosses again.
        ev = arr.step(np.full((1, 1), 0.45), 3000)
        assert len(ev) == 1

    def test_refractory_suppresses(self):
        params = PixelParams(threshold_on=0.1, threshold_off=0.1, refractory_us=10_000)
        arr = PixelArray(Resolution(1, 1), params)
        arr.step(np.zeros((1, 1)), 0)
        ev = arr.step(np.full((1, 1), 0.55), 1000)  # 5 crossings within 1 ms
        assert len(ev) == 1  # refractory blocks the rest

    def test_threshold_mismatch_spread(self):
        params = PixelParams(threshold_mismatch_sigma=0.3)
        arr = PixelArray(RES, params, rng=np.random.default_rng(1))
        assert arr.threshold_on_map.std() > 0
        assert np.all(arr.threshold_on_map > 0)

    def test_mismatch_changes_counts(self):
        clean = PixelArray(RES, PixelParams())
        noisy = PixelArray(
            RES, PixelParams(threshold_mismatch_sigma=0.5), rng=np.random.default_rng(7)
        )
        clean.step(uniform_log(0.0), 0)
        noisy.step(uniform_log(0.0), 0)
        ev_clean = clean.step(uniform_log(0.3), 1000)
        ev_noisy = noisy.step(uniform_log(0.3), 1000)
        assert len(ev_noisy) != len(ev_clean)

    def test_time_must_increase(self):
        arr = PixelArray(RES)
        arr.step(uniform_log(0.0), 0)
        with pytest.raises(ValueError, match="increase"):
            arr.step(uniform_log(0.1), 0)

    def test_shape_validation(self):
        arr = PixelArray(RES)
        with pytest.raises(ValueError, match="shape"):
            arr.step(np.zeros((3, 3)), 0)

    def test_reset(self):
        arr = PixelArray(Resolution(1, 1))
        arr.step(np.zeros((1, 1)), 0)
        arr.reset()
        ev = arr.step(np.full((1, 1), 10.0), 1000)  # first step after reset
        assert len(ev) == 0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PixelParams(threshold_on=0)
        with pytest.raises(ValueError):
            PixelParams(threshold_mismatch_sigma=-1)
        with pytest.raises(ValueError):
            PixelParams(refractory_us=-5)


class TestEventCamera:
    def test_moving_bar_produces_on_and_off(self):
        cam = EventCamera(RES, CameraConfig(sample_period_us=500))
        bar = MovingBar(RES, speed_px_per_s=2000, bar_width=3, x0=0)
        events, stats = cam.record(bar, 100_000)
        assert len(events) > 50
        on, off = events.polarity_counts()
        assert on > 0 and off > 0
        assert stats.num_signal_events == len(events)

    def test_static_scene_is_silent(self):
        cam = EventCamera(RES, CameraConfig())
        bar = MovingBar(RES, speed_px_per_s=0.0, bar_width=3, x0=8)
        events, _ = cam.record(bar, 50_000)
        assert len(events) == 0

    def test_noise_adds_events(self):
        noise = NoiseParams(ba_rate_hz=100.0)
        cam = EventCamera(RES, CameraConfig(noise=noise, seed=3))
        bar = MovingBar(RES, speed_px_per_s=0.0, x0=8)  # static: only noise
        events, stats = cam.record(bar, 100_000)
        assert stats.num_noise_events == len(events)
        assert len(events) > 0

    def test_readout_can_drop(self):
        # Tiny throughput forces drops on a dense stimulus.
        cfg = CameraConfig(
            readout=ReadoutParams(throughput_eps=1e3, fifo_depth=4),
            sample_period_us=500,
        )
        cam = EventCamera(RES, cfg)
        pan = TexturePan(RES, vx_px_per_s=2000)
        _, stats = cam.record(pan, 100_000)
        assert stats.num_dropped > 0

    def test_resolution_mismatch(self):
        cam = EventCamera(RES)
        with pytest.raises(ValueError, match="resolution"):
            cam.record(MovingBar(Resolution(8, 8)), 1000)

    def test_duration_validation(self):
        cam = EventCamera(RES)
        with pytest.raises(ValueError):
            cam.record(MovingBar(RES), 0)

    def test_deterministic_given_seed(self):
        bar = MovingBar(RES, speed_px_per_s=1500, x0=0)
        e1, _ = EventCamera(RES, CameraConfig(seed=5)).record(bar, 50_000)
        e2, _ = EventCamera(RES, CameraConfig(seed=5)).record(bar, 50_000)
        assert e1 == e2

    def test_events_sorted_and_in_bounds(self):
        cam = EventCamera(RES, CameraConfig(sample_period_us=250))
        pan = TexturePan(RES, vx_px_per_s=1000)
        events, _ = cam.record(pan, 50_000)
        assert np.all(np.diff(events.t) >= 0)
        assert events.x.max() < RES.width
        assert events.y.max() < RES.height

    def test_faster_motion_more_events(self):
        slow = MovingBar(RES, speed_px_per_s=200, x0=0)
        fast = MovingBar(RES, speed_px_per_s=2000, x0=0)
        cam = EventCamera(RES, CameraConfig(sample_period_us=250))
        n_slow = len(cam.record(slow, 50_000)[0])
        n_fast = len(cam.record(fast, 50_000)[0])
        assert n_fast > n_slow


class TestPhotoreceptorBandwidth:
    def _count_events(self, cutoff_hz, speed=2000.0):
        params = PixelParams(photoreceptor_cutoff_hz=cutoff_hz)
        cam = EventCamera(RES, CameraConfig(pixel=params, sample_period_us=250))
        bar = MovingBar(RES, speed_px_per_s=speed, bar_width=3.0, x0=0.0)
        events, _ = cam.record(bar, 40_000)
        return len(events)

    def test_high_cutoff_matches_ideal(self):
        ideal = self._count_events(0.0)
        wideband = self._count_events(100_000.0)
        assert abs(wideband - ideal) < 0.1 * ideal

    def test_low_cutoff_attenuates_fast_stimuli(self):
        # A 50 Hz front-end cannot follow a bar crossing a pixel in ~1 ms.
        ideal = self._count_events(0.0, speed=3000.0)
        slow_frontend = self._count_events(50.0, speed=3000.0)
        assert slow_frontend < 0.7 * ideal

    def test_bandwidth_hurts_fast_more_than_slow(self):
        loss_fast = 1 - self._count_events(100.0, speed=3000.0) / max(
            self._count_events(0.0, speed=3000.0), 1
        )
        loss_slow = 1 - self._count_events(100.0, speed=300.0) / max(
            self._count_events(0.0, speed=300.0), 1
        )
        assert loss_fast > loss_slow

    def test_validation(self):
        with pytest.raises(ValueError):
            PixelParams(photoreceptor_cutoff_hz=-1.0)
