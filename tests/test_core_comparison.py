"""Integration tests: the three pipelines and the Table-I comparison.

These train tiny models on tiny datasets, so they are the slowest tests
in the suite; sizes are chosen to finish in seconds each while still
exercising every code path end to end.
"""

import numpy as np
import pytest

from repro.analysis import (
    ascii_series,
    ascii_table,
    event_pipeline_latency,
    frame_pipeline_latency,
    relu_activation_sparsity,
    zero_fraction,
)
from repro.core import (
    CNNPipeline,
    GNNPipeline,
    Rating,
    SNNPipeline,
    agreement_with_paper,
    render_table,
    run_comparison,
)
from repro.datasets import make_gestures_dataset, make_shapes_dataset, train_test_split
from repro.events import Resolution
from repro.gnn import GraphBuildConfig


@pytest.fixture(scope="module")
def shapes_split():
    ds = make_shapes_dataset(
        num_per_class=6, resolution=Resolution(24, 24), duration_us=40_000, seed=0
    )
    return train_test_split(ds, 0.3, np.random.default_rng(0))


def fast_pipelines(seed=0):
    return {
        "SNN": SNNPipeline(num_steps=20, pool=3, hidden=24, epochs=12, seed=seed),
        "CNN": CNNPipeline(base_width=6, epochs=12, seed=seed),
        "GNN": GNNPipeline(
            config=GraphBuildConfig(
                radius=4.0,
                time_scale_us=3000.0,
                max_events=250,
                max_degree=8,
                include_position=True,
            ),
            hidden=12,
            epochs=14,
            seed=seed,
        ),
    }


class TestIndividualPipelines:
    def test_snn_pipeline_learns(self, shapes_split):
        train, test = shapes_split
        pipe = SNNPipeline(num_steps=10, pool=3, hidden=24, epochs=10)
        pipe.fit(train)
        assert pipe.accuracy(test) > 0.4  # above chance (1/3)
        m = pipe.measure(test)
        assert 0.5 < m.data_sparsity <= 1.0
        assert m.num_operations > 0
        assert m.latency < pipe.dt_us  # per-update compute bound, not dt
        assert np.isnan(m.temporal_info)  # no temporal labels requested

    def test_cnn_pipeline_learns(self, shapes_split):
        train, test = shapes_split
        pipe = CNNPipeline(base_width=6, epochs=10)
        pipe.fit(train)
        assert pipe.accuracy(test) > 0.4
        m = pipe.measure(test)
        assert 0.0 <= m.compute_sparsity <= 1.0
        assert m.latency > 1000  # bound by the accumulation window
        assert m.memory_footprint > 0

    def test_gnn_pipeline_learns(self, shapes_split):
        train, test = shapes_split
        pipe = GNNPipeline(
            config=GraphBuildConfig(
                radius=4.0, time_scale_us=5000.0, max_events=150, max_degree=8,
                include_position=True,
            ),
            hidden=12,
            epochs=14,
        )
        pipe.fit(train)
        assert pipe.accuracy(test) > 0.4
        m = pipe.measure(test)
        assert m.data_sparsity > 0.9  # graphs are extremely sparse
        assert m.latency < 1000  # per-event asynchronous bound
        assert m.extras["mean_edges"] > 0

    def test_predict_before_fit_raises(self):
        from repro.events import EventStream

        s = EventStream.empty(Resolution(8, 8))
        for pipe in (SNNPipeline(), CNNPipeline(), GNNPipeline()):
            with pytest.raises(RuntimeError):
                pipe.predict(s)
            with pytest.raises(RuntimeError):
                pipe.measure(None)


class TestComparison:
    @pytest.fixture(scope="class")
    def result(self):
        # Full-rotation recordings (4-8 rev/s over 250 ms), so that the
        # CW/CCW classes genuinely require temporal information.
        ds = make_gestures_dataset(
            num_per_class=8,
            resolution=Resolution(24, 24),
            duration_us=250_000,
            revs_range=(4.0, 8.0),
            seed=1,
        )
        train, test = train_test_split(ds, 0.3, np.random.default_rng(1))
        return run_comparison(
            train, test, temporal_labels=(0, 1), pipelines=fast_pipelines()
        )

    def test_all_cells_rated(self, result):
        assert len(result.ratings) == 12
        for ratings in result.ratings.values():
            assert set(ratings) == {"SNN", "CNN", "GNN"}

    def test_temporal_axis_direction(self, result):
        # The structural claim: single-frame CNNs cannot separate CW from
        # CCW rotations, the event-driven paradigms can.
        snn_t = result.metrics["SNN"].temporal_info
        cnn_t = result.metrics["CNN"].temporal_info
        gnn_t = result.metrics["GNN"].temporal_info
        assert max(snn_t, gnn_t) > cnn_t

    def test_latency_ordering(self, result):
        # Frame accumulation makes the CNN the slowest responder.
        assert result.metrics["CNN"].latency > result.metrics["SNN"].latency
        assert result.metrics["CNN"].latency > result.metrics["GNN"].latency

    def test_data_sparsity_ordering(self, result):
        # Dense frames collapse time: least sparse representation.
        assert result.metrics["CNN"].data_sparsity < result.metrics["SNN"].data_sparsity
        assert result.metrics["CNN"].data_sparsity < result.metrics["GNN"].data_sparsity

    def test_maturity_literature_row(self, result):
        assert result.rating("hw_maturity", "CNN") is Rating.BEST
        assert result.rating("hw_maturity", "GNN") is Rating.POOR

    def test_render_table(self, result):
        table = render_table(result)
        assert "Data - Sparsity" in table
        assert "SNN" in table and "paper" in table
        assert len(table.splitlines()) == 14  # header + rule + 12 rows

    def test_agreement_with_paper(self, result):
        agreement = agreement_with_paper(result)
        assert agreement["cells"] >= 25
        # The reproduction must agree with the paper's qualitative
        # assessment on the clear majority of comparable cells.
        assert agreement["within_one"] >= 0.7

    def test_pipeline_key_validation(self, shapes_split):
        train, test = shapes_split
        with pytest.raises(ValueError):
            run_comparison(train, test, pipelines={"SNN": SNNPipeline()})


class TestAnalysisHelpers:
    def test_zero_fraction(self):
        assert zero_fraction(np.array([0, 1, 0, 2])) == 0.5
        assert zero_fraction(np.zeros(0)) == 0.0

    def test_relu_sparsity(self):
        import repro.nn as nn

        model = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(0)), nn.ReLU())
        fracs = relu_activation_sparsity(model, np.random.default_rng(1).standard_normal((16, 4)))
        assert len(fracs) == 1
        assert 0.0 < fracs[0] < 1.0
        with pytest.raises(TypeError):
            relu_activation_sparsity(object(), np.zeros((2, 2)))

    def test_latency_decomposition(self):
        frame = frame_pipeline_latency(window_us=50_000, compute_us=2000)
        event = event_pipeline_latency(per_event_compute_us=5.0)
        assert frame.total_us > event.total_us
        assert frame.accumulation_fraction > 0.9
        assert event.accumulation_us == 0.0
        with pytest.raises(ValueError):
            frame_pipeline_latency(0, 1)
        with pytest.raises(ValueError):
            event_pipeline_latency(-1)

    def test_ascii_table(self):
        out = ascii_table(["a", "bb"], [[1, 2], [3, 4]])
        assert "a" in out and "bb" in out
        assert len(out.splitlines()) == 4
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_ascii_series(self):
        out = ascii_series([1, 2], [10, 20], width=10, label="demo")
        assert "demo" in out
        assert "#" in out
        with pytest.raises(ValueError):
            ascii_series([1], [1, 2])
        with pytest.raises(ValueError):
            ascii_series([1], [1], width=0)


class TestCNNRepresentationParameter:
    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError, match="unknown representation"):
            CNNPipeline(representation="bogus")

    def test_channels_follow_representation(self, shapes_split):
        train, test = shapes_split
        pipe = CNNPipeline(base_width=4, representation="voxel", epochs=2)
        pipe.fit(train)
        # First conv layer consumes the representation's channel count.
        assert pipe.model[0].in_channels == pipe.representation.channels == 5

    def test_voxel_pipeline_trains(self, shapes_split):
        train, test = shapes_split
        pipe = CNNPipeline(base_width=6, representation="voxel", epochs=8)
        pipe.fit(train)
        assert pipe.accuracy(test) > 0.4


class TestSNNUpdateDiscipline:
    def test_invalid_update_rejected(self):
        with pytest.raises(ValueError):
            SNNPipeline(update="bogus")

    def test_update_changes_hardware_column_only(self, shapes_split):
        train, test = shapes_split
        clock = SNNPipeline(num_steps=10, pool=3, hidden=16, epochs=4, update="clock")
        event = SNNPipeline(num_steps=10, pool=3, hidden=16, epochs=4, update="event")
        clock.fit(train)
        event.fit(train)
        m_clock = clock.measure(test)
        m_event = event.measure(test)
        # Same learned model, same accuracy...
        assert m_clock.accuracy == m_event.accuracy
        # ...different hardware costs (the ABL-SNNHW axis).
        assert m_clock.memory_bandwidth != m_event.memory_bandwidth


class TestMarkdownExport:
    def test_to_markdown(self, shapes_split):
        from repro.core import to_markdown

        train, test = shapes_split
        result = run_comparison(train, test, pipelines=fast_pipelines())
        md = to_markdown(result)
        lines = md.splitlines()
        assert lines[0].startswith("| Axis |")
        assert len(lines) == 14  # header + rule + 12 axes
        assert "`++`" in md or "`+`" in md
        assert "Data - Sparsity" in md


class TestComparisonStability:
    def test_headline_rows_stable_across_seeds(self):
        """The comparison's qualitative conclusions must not hinge on one
        seed: re-run with different model seeds and a different dataset
        seed, and check the load-bearing rows keep their direction."""
        ds = make_gestures_dataset(
            num_per_class=8,
            resolution=Resolution(24, 24),
            duration_us=250_000,
            revs_range=(4.0, 8.0),
            seed=7,
        )
        train, test = train_test_split(ds, 0.3, np.random.default_rng(7))
        result = run_comparison(
            train, test, temporal_labels=(0, 1), pipelines=fast_pipelines(seed=3)
        )
        m = result.metrics
        # Directionality of the headline quantities (not exact ratings).
        assert m["CNN"].latency > 100 * m["SNN"].latency
        assert m["CNN"].latency > 100 * m["GNN"].latency
        assert m["CNN"].data_sparsity < m["SNN"].data_sparsity
        assert m["CNN"].data_sparsity < m["GNN"].data_sparsity
        assert max(m["SNN"].temporal_info, m["GNN"].temporal_info) > m["CNN"].temporal_info
        agreement = agreement_with_paper(result)
        assert agreement["within_one"] >= 0.65


class TestPresets:
    def test_table1_presets_match_test_configuration(self):
        from repro.core import table1_pipelines

        pipes = table1_pipelines()
        assert set(pipes) == {"SNN", "CNN", "GNN"}
        local = fast_pipelines()
        # The central preset and the suite's configuration must agree on
        # the load-bearing hyper-parameters.
        assert pipes["SNN"].num_steps == local["SNN"].num_steps
        assert pipes["SNN"].hidden == local["SNN"].hidden
        assert pipes["CNN"].base_width == local["CNN"].base_width
        assert pipes["GNN"].config == local["GNN"].config
        assert pipes["GNN"].hidden == local["GNN"].hidden

    def test_table1_dataset_shape(self):
        from repro.core import table1_dataset

        train, test = table1_dataset()
        assert train.num_classes == 4
        assert len(train) + len(test) == 32
        assert train.resolution == Resolution(24, 24)
