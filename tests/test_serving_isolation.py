"""End-to-end isolation tests: bulkheads, breakers, failover, shards.

The satellite focus is per-stage probation (half-open) breakers under
interleaved tenants: a chaos-targeted tenant's primary must trip,
probe, and re-close *without* perturbing its neighbours in isolated
mode — and the same fault must visibly couple tenants in the shared
baseline, which is the whole argument for the bulkheads.
"""

import json

import pytest

from repro.parallel import ParallelConfig
from repro.serving import (
    ChaosEvent,
    ChaosSchedule,
    ServingFleet,
    make_tenant_mix,
    run_serving_replay,
)
from repro.serving.replay import default_chaos

TENANTS = make_tenant_mix(6, seed=0)
NUM_WINDOWS = 40


def run_fleet(chaos=None, *, isolation=True, n_shards=1, parallel=None):
    fleet = ServingFleet(
        TENANTS,
        num_windows=NUM_WINDOWS,
        chaos=chaos,
        isolation=isolation,
        n_shards=n_shards,
        parallel=parallel,
        seed=0,
    )
    report = fleet.run()
    return fleet, report


def poison_first_gold():
    """A stage fault squarely inside the run, recovery room after."""
    return ChaosSchedule(
        events=(ChaosEvent("t000-gold", "poison", 10, 20),), seed=0
    )


class TestBreakerProbationUnderInterleavedTenants:
    def test_targeted_primary_trips_probes_and_recloses(self):
        _, report = run_fleet(poison_first_gold())
        stream = report.tenants["t000-gold"].report
        states = [
            (t.stage, t.to_state.value) for t in stream.breaker_transitions
        ]
        primary = report.tenants["t000-gold"].decision.primary
        assert (primary, "open") in states
        assert (primary, "half_open") in states  # probation was entered
        assert (primary, "closed") in states  # and passed
        assert stream.breaker_states[primary] == "closed"
        # Windows kept flowing on the fallback chain while the primary
        # was open, and returned to the primary after re-close.
        assert stream.served_by.get(primary, 0) > 0
        assert sum(
            n for stage, n in stream.served_by.items() if stage != primary
        ) > 0

    def test_neighbours_are_bitwise_unaffected(self):
        """The bulkhead property, at tenant granularity.

        Every non-targeted tenant's full outcome — ledger, SLO counts,
        per-stage serving split, its whole ``StreamReport`` — must be
        *identical* with and without the neighbour's fault, not merely
        close.
        """
        _, clean = run_fleet(None)
        _, faulted = run_fleet(poison_first_gold())
        for tid in clean.tenants:
            if tid == "t000-gold":
                continue
            a = clean.tenants[tid].to_dict()
            b = faulted.tenants[tid].to_dict()
            assert a == b, f"{tid} perturbed by a neighbour's fault"

    def test_shared_baseline_couples_tenants(self):
        """Without bulkheads the same fault degrades co-tenants.

        A per-call poison can hide between neighbours' successes (the
        breaker counts *consecutive* failures), but corrupting the
        *shared session state* fails every interleaved call — the group
        breaker trips and innocent co-tenants' windows divert or miss
        SLO, so their outcomes must differ from the fault-free shared
        control.  The target is ``t001-silver``: its CNN group
        interleaves three tenants in this mix.
        """
        chaos = ChaosSchedule(
            events=(ChaosEvent("t001-silver", "corrupt", 10, 20),), seed=0
        )
        _, clean = run_fleet(None, isolation=False)
        _, faulted = run_fleet(chaos, isolation=False)
        primary = clean.tenants["t001-silver"].decision.primary
        neighbours = [
            tid
            for tid in clean.group_members(primary)
            if tid != "t001-silver"
        ]
        assert neighbours, "fixture must interleave tenants in one group"
        assert any(
            clean.tenants[tid].to_dict() != faulted.tenants[tid].to_dict()
            for tid in neighbours
        ), "shared executor showed no cross-tenant coupling"

    def test_every_mode_still_reconciles_under_chaos(self):
        chaos = default_chaos(TENANTS, NUM_WINDOWS, seed=0)
        for isolation in (True, False):
            _, report = run_fleet(chaos, isolation=isolation)
            assert report.validate() == []


class TestShardInvariance:
    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_reports_identical_across_shard_counts(self, n_shards):
        chaos = default_chaos(TENANTS, NUM_WINDOWS, seed=0)
        _, base = run_fleet(chaos, n_shards=1)
        _, sharded = run_fleet(chaos, n_shards=n_shards)
        assert json.dumps(base.to_dict(), sort_keys=True) == json.dumps(
            sharded.to_dict(), sort_keys=True
        )

    def test_snapshots_identical_across_shard_counts(self):
        from repro.observability import to_json

        chaos = default_chaos(TENANTS, NUM_WINDOWS, seed=0)
        fleet1, _ = run_fleet(chaos, n_shards=1)
        fleet3, _ = run_fleet(chaos, n_shards=3)
        assert to_json(fleet1.snapshot()) == to_json(fleet3.snapshot())

    def test_process_backend_matches_serial(self):
        chaos = default_chaos(TENANTS, NUM_WINDOWS, seed=0)
        _, serial = run_fleet(chaos, n_shards=2)
        _, processed = run_fleet(
            chaos,
            n_shards=2,
            parallel=ParallelConfig(n_workers=2, backend="process"),
        )
        assert serial.to_dict() == processed.to_dict()


class TestReplayAcceptance:
    @pytest.fixture(scope="class")
    def replay(self):
        # The canonical 12-tenant mix: the configuration where the
        # shared baseline's cross-tenant coupling is reproducibly
        # visible (it can vanish at other sizes when chaos targets are
        # refused or groups don't interleave).
        return run_serving_replay(12, num_windows=NUM_WINDOWS, seed=0)

    def test_accounting_reconciles_everywhere(self, replay):
        assert replay.validation_errors == []

    def test_isolated_holds_and_shared_couples(self, replay):
        stories = replay.payload["modes"]
        assert stories["isolated"]["isolation_holds"]
        assert stories["isolated"]["max_non_targeted_delta"] == 0.0
        assert stories["shared"]["max_non_targeted_delta"] > 0.0

    def test_failover_round_trip(self, replay):
        evidence = replay.payload["failover"]
        assert evidence
        recovered = [e for e in evidence if e.get("recovered")]
        assert recovered, "no targeted tenant completed open->probe->close"
        for item in recovered:
            assert item["served_by_fallbacks"] > 0
