"""Tests for the AER codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import AERCodec, EventStream, Resolution


def make_stream(n, width=64, height=48, max_dt=5000, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(0, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


class TestAERCodec:
    def test_word_width(self):
        codec = AERCodec(Resolution(640, 480), timestamp_bits=15)
        # 10 bits for x (640), 9 for y (480), 1 polarity, 15 timestamp.
        assert codec.x_bits == 10
        assert codec.y_bits == 9
        assert codec.word_bits == 35

    def test_roundtrip_small(self):
        res = Resolution(16, 16)
        codec = AERCodec(res)
        s = EventStream.from_arrays([0, 5, 5, 100], [1, 2, 3, 15], [0, 8, 8, 15], [1, -1, 1, -1], res)
        assert codec.decode(codec.encode(s), t_origin=0) == s

    def test_roundtrip_with_wraps(self):
        res = Resolution(8, 8)
        codec = AERCodec(res, timestamp_bits=4)  # max delta 14 us
        s = EventStream.from_arrays([0, 100, 101], [0, 1, 2], [0, 0, 0], [1, 1, -1], res)
        words = codec.encode(s)
        assert len(words) > 3  # wrap words were inserted
        assert codec.decode(words, t_origin=0) == s

    def test_empty_stream(self):
        res = Resolution(8, 8)
        codec = AERCodec(res)
        assert codec.encode(EventStream.empty(res)).size == 0
        assert len(codec.decode(np.empty(0, dtype=np.uint64))) == 0

    def test_resolution_mismatch(self):
        codec = AERCodec(Resolution(8, 8))
        s = EventStream.empty(Resolution(16, 16))
        with pytest.raises(ValueError, match="resolution"):
            codec.encode(s)

    def test_t_origin(self):
        res = Resolution(4, 4)
        codec = AERCodec(res)
        s = EventStream.from_arrays([50, 60], [0, 1], [0, 0], [1, 1], res)
        words = codec.encode(s, t_origin=40)
        dec = codec.decode(words, t_origin=40)
        assert dec == s
        with pytest.raises(ValueError, match="t_origin"):
            codec.encode(s, t_origin=60)

    def test_too_wide_word_rejected(self):
        with pytest.raises(ValueError, match="63"):
            AERCodec(Resolution(1 << 24, 1 << 24), timestamp_bits=20)

    def test_timestamp_bits_validation(self):
        with pytest.raises(ValueError):
            AERCodec(Resolution(4, 4), timestamp_bits=1)

    def test_link_stats(self):
        res = Resolution(32, 32)
        codec = AERCodec(res)
        s = make_stream(100, width=32, height=32)
        stats = codec.link_stats(s)
        assert stats.num_events == 100
        assert stats.num_words >= 100
        assert stats.total_bits == stats.num_words * codec.word_bits
        assert stats.bandwidth_bps > 0
        assert stats.events_per_second == pytest.approx(s.event_rate())

    def test_link_stats_instantaneous(self):
        res = Resolution(4, 4)
        codec = AERCodec(res)
        s = EventStream.from_arrays([5], [0], [0], [1], res)
        stats = codec.link_stats(s)
        assert stats.bandwidth_bps == 0.0
        assert stats.events_per_second == 0.0


class TestAERProperty:
    @given(
        n=st.integers(1, 60),
        tbits=st.integers(3, 16),
        seed=st.integers(0, 1000),
        max_dt=st.integers(1, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, n, tbits, seed, max_dt):
        res = Resolution(32, 24)
        codec = AERCodec(res, timestamp_bits=tbits)
        s = make_stream(n, width=32, height=24, max_dt=max_dt, seed=seed)
        t0 = int(s.t[0])
        assert codec.decode(codec.encode(s), t_origin=t0) == s
