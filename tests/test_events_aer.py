"""Tests for the AER codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import AERCodec, EventStream, Resolution


def make_stream(n, width=64, height=48, max_dt=5000, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.integers(0, max_dt, n))
    return EventStream.from_arrays(
        t,
        rng.integers(0, width, n),
        rng.integers(0, height, n),
        rng.choice([-1, 1], n),
        Resolution(width, height),
    )


class TestAERCodec:
    def test_word_width(self):
        codec = AERCodec(Resolution(640, 480), timestamp_bits=15)
        # 10 bits for x (640), 9 for y (480), 1 polarity, 15 timestamp.
        assert codec.x_bits == 10
        assert codec.y_bits == 9
        assert codec.word_bits == 35

    def test_roundtrip_small(self):
        res = Resolution(16, 16)
        codec = AERCodec(res)
        s = EventStream.from_arrays([0, 5, 5, 100], [1, 2, 3, 15], [0, 8, 8, 15], [1, -1, 1, -1], res)
        assert codec.decode(codec.encode(s), t_origin=0) == s

    def test_roundtrip_with_wraps(self):
        res = Resolution(8, 8)
        codec = AERCodec(res, timestamp_bits=4)  # max delta 14 us
        s = EventStream.from_arrays([0, 100, 101], [0, 1, 2], [0, 0, 0], [1, 1, -1], res)
        words = codec.encode(s)
        assert len(words) > 3  # wrap words were inserted
        assert codec.decode(words, t_origin=0) == s

    def test_empty_stream(self):
        res = Resolution(8, 8)
        codec = AERCodec(res)
        assert codec.encode(EventStream.empty(res)).size == 0
        assert len(codec.decode(np.empty(0, dtype=np.uint64))) == 0

    def test_resolution_mismatch(self):
        codec = AERCodec(Resolution(8, 8))
        s = EventStream.empty(Resolution(16, 16))
        with pytest.raises(ValueError, match="resolution"):
            codec.encode(s)

    def test_t_origin(self):
        res = Resolution(4, 4)
        codec = AERCodec(res)
        s = EventStream.from_arrays([50, 60], [0, 1], [0, 0], [1, 1], res)
        words = codec.encode(s, t_origin=40)
        dec = codec.decode(words, t_origin=40)
        assert dec == s
        with pytest.raises(ValueError, match="t_origin"):
            codec.encode(s, t_origin=60)

    def test_too_wide_word_rejected(self):
        with pytest.raises(ValueError, match="63"):
            AERCodec(Resolution(1 << 24, 1 << 24), timestamp_bits=20)

    def test_timestamp_bits_validation(self):
        with pytest.raises(ValueError):
            AERCodec(Resolution(4, 4), timestamp_bits=1)

    def test_link_stats(self):
        res = Resolution(32, 32)
        codec = AERCodec(res)
        s = make_stream(100, width=32, height=32)
        stats = codec.link_stats(s)
        assert stats.num_events == 100
        assert stats.num_words >= 100
        assert stats.total_bits == stats.num_words * codec.word_bits
        assert stats.bandwidth_bps > 0
        assert stats.events_per_second == pytest.approx(s.event_rate())

    def test_link_stats_instantaneous(self):
        res = Resolution(4, 4)
        codec = AERCodec(res)
        s = EventStream.from_arrays([5], [0], [0], [1], res)
        stats = codec.link_stats(s)
        assert stats.bandwidth_bps == 0.0
        assert stats.events_per_second == 0.0


class TestAERProperty:
    @given(
        n=st.integers(1, 60),
        tbits=st.integers(3, 16),
        seed=st.integers(0, 1000),
        max_dt=st.integers(1, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, n, tbits, seed, max_dt):
        res = Resolution(32, 24)
        codec = AERCodec(res, timestamp_bits=tbits)
        s = make_stream(n, width=32, height=24, max_dt=max_dt, seed=seed)
        t0 = int(s.t[0])
        assert codec.decode(codec.encode(s), t_origin=t0) == s


class TestDecodeWithStats:
    """Hardened decode: corrupt words are counted and dropped, not fatal."""

    def test_clean_roundtrip_stats(self):
        s = make_stream(500, width=24, height=20)
        codec = AERCodec(s.resolution)
        decoded, stats = codec.decode_with_stats(
            codec.encode(s), t_origin=int(s.t[0])
        )
        assert decoded == s
        assert stats.num_events == len(s)
        assert stats.num_words == len(s) + stats.num_wrap_words
        assert stats.num_dropped == 0

    def test_out_of_range_x_dropped_and_counted(self):
        # 24 columns need 5 bits, which cover 0..31: craft a word with
        # x = 30, an address the sensor cannot emit.
        res = Resolution(24, 20)
        codec = AERCodec(res)
        s = EventStream.from_arrays([10, 20], [3, 4], [5, 6], [1, -1], res)
        words = codec.encode(s)
        bad = words.copy()
        bad[0] = (bad[0] & ~np.uint64((1 << codec.x_bits) - 1)) | np.uint64(30)
        decoded, stats = codec.decode_with_stats(bad)
        assert stats.dropped_out_of_range == 1
        assert stats.num_events == 1
        assert len(decoded) == 1
        assert decoded.x[0] == 4

    def test_out_of_range_y_dropped_and_counted(self):
        res = Resolution(24, 20)
        codec = AERCodec(res)
        s = EventStream.from_arrays([10], [3], [5], [1], res)
        words = codec.encode(s)
        y_mask = np.uint64(((1 << codec.y_bits) - 1) << codec.x_bits)
        bad = (words & ~y_mask) | np.uint64(25 << codec.x_bits)
        decoded, stats = codec.decode_with_stats(bad)
        assert stats.dropped_out_of_range == 1
        assert len(decoded) == 0

    def test_rollover_limit_drops_late_events(self):
        res = Resolution(16, 16)
        codec = AERCodec(res)
        s = EventStream.from_arrays([100, 50_000], [1, 2], [1, 2], [1, 1], res)
        words = codec.encode(s)
        decoded, stats = codec.decode_with_stats(
            words, t_origin=100, rollover_limit_us=10_000
        )
        assert stats.dropped_rollover == 1
        assert len(decoded) == 1
        assert decoded.t[0] == 100

    def test_wrap_words_counted_not_dropped(self):
        res = Resolution(8, 8)
        codec = AERCodec(res, timestamp_bits=4)  # forces wrap words
        s = EventStream.from_arrays([0, 1000], [0, 1], [0, 1], [1, -1], res)
        words = codec.encode(s)
        decoded, stats = codec.decode_with_stats(words)
        assert decoded == s
        assert stats.num_wrap_words > 0
        assert stats.num_words == stats.num_wrap_words + stats.num_events
        assert stats.num_dropped == 0

    def test_decode_is_decode_with_stats(self):
        s = make_stream(200, width=24, height=20)
        codec = AERCodec(s.resolution)
        words = codec.encode(s)
        assert codec.decode(words) == codec.decode_with_stats(words)[0]

    def test_random_bitflips_never_produce_invalid_stream(self):
        s = make_stream(2000, width=24, height=20)
        codec = AERCodec(s.resolution)
        words = codec.encode(s)
        rng = np.random.default_rng(0)
        bits = rng.random((words.size, codec.word_bits)) < 0.01
        flipped = words.copy()
        for b in range(codec.word_bits):
            flipped[bits[:, b]] ^= np.uint64(1 << b)
        decoded, stats = codec.decode_with_stats(flipped)
        assert decoded.validate() == []
        assert stats.dropped_out_of_range > 0
        assert stats.num_events == len(decoded)
