"""Tests for SNN neurons, surrogates, spiking layers and encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Adam, Tensor, cross_entropy
from repro.snn import (
    ATan,
    FastSigmoid,
    LIFParams,
    LIFReadout,
    LIFState,
    ResetMode,
    SigmoidDerivative,
    SpikingLinear,
    SpikingMLP,
    Triangle,
    decode_latency,
    decode_rate,
    events_to_spike_tensor,
    latency_encode,
    lif_decay,
    lif_step_np,
    rate_encode,
    spike,
    temporal_difference_encode,
)
from repro.events import EventStream, Resolution

SURROGATES = [FastSigmoid(), ATan(), Triangle(), SigmoidDerivative()]


class TestLIFNeuron:
    def test_decay_factor(self):
        p = LIFParams(tau_us=1000.0)
        assert lif_decay(p, 1000.0) == pytest.approx(np.exp(-1.0))
        with pytest.raises(ValueError):
            lif_decay(p, 0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            LIFParams(tau_us=0)
        with pytest.raises(ValueError):
            LIFParams(threshold=0)
        with pytest.raises(ValueError):
            LIFParams(refractory_steps=-1)

    def test_integration_to_spike(self):
        p = LIFParams(tau_us=1e9, threshold=1.0)  # negligible leak
        state = LIFState.zeros((1,), p)
        spikes = []
        for _ in range(10):
            spikes.append(lif_step_np(state, np.array([0.3]), p, 1000.0)[0])
        assert sum(spikes) >= 1  # integrates up and fires

    def test_leak_prevents_firing(self):
        p = LIFParams(tau_us=100.0, threshold=1.0)  # strong leak
        state = LIFState.zeros((1,), p)
        spikes = [lif_step_np(state, np.array([0.5]), p, 1000.0)[0] for _ in range(20)]
        assert sum(spikes) == 0

    def test_subtract_vs_zero_reset(self):
        for reset, expected_more in ((ResetMode.SUBTRACT, True),):
            p_sub = LIFParams(tau_us=1e9, threshold=1.0, reset=ResetMode.SUBTRACT)
            p_zero = LIFParams(tau_us=1e9, threshold=1.0, reset=ResetMode.ZERO)
            drive = np.array([0.7])
            s_sub = LIFState.zeros((1,), p_sub)
            s_zero = LIFState.zeros((1,), p_zero)
            n_sub = sum(lif_step_np(s_sub, drive, p_sub, 1000.0)[0] for _ in range(50))
            n_zero = sum(lif_step_np(s_zero, drive, p_zero, 1000.0)[0] for _ in range(50))
            # Subtract reset preserves residual charge => at least as many spikes.
            assert n_sub >= n_zero

    def test_refractory_blocks(self):
        p = LIFParams(tau_us=1e9, threshold=0.5, refractory_steps=5)
        state = LIFState.zeros((1,), p)
        drive = np.array([1.0])
        spikes = [lif_step_np(state, drive, p, 1000.0)[0] for _ in range(12)]
        # After each spike, >= 5 silent steps.
        fire_steps = [i for i, s in enumerate(spikes) if s]
        assert all(b - a > 5 for a, b in zip(fire_steps, fire_steps[1:]))


class TestSurrogates:
    @pytest.mark.parametrize("sg", SURROGATES, ids=lambda s: s.name)
    def test_peak_at_threshold(self, sg):
        v = np.linspace(-2, 2, 401)
        d = sg.derivative(v)
        assert d.argmax() == 200  # v = 0
        assert np.all(d >= 0)

    @pytest.mark.parametrize("sg", SURROGATES, ids=lambda s: s.name)
    def test_decays_away_from_threshold(self, sg):
        assert sg.derivative(np.array([3.0]))[0] < sg.derivative(np.array([0.0]))[0]

    def test_slope_validation(self):
        with pytest.raises(ValueError):
            FastSigmoid(slope=0)

    def test_spike_forward_binary(self):
        v = Tensor(np.array([0.5, 1.0, 1.5]), requires_grad=True)
        s = spike(v, threshold=1.0, surrogate=FastSigmoid())
        assert s.data.tolist() == [0.0, 1.0, 1.0]

    def test_spike_backward_uses_surrogate(self):
        sg = FastSigmoid(slope=10.0)
        v = Tensor(np.array([0.9, 1.0, 2.0]), requires_grad=True)
        spike(v, 1.0, sg).sum().backward()
        expected = sg.derivative(np.array([-0.1, 0.0, 1.0]))
        np.testing.assert_allclose(v.grad, expected)


class TestSpikingLayers:
    def _input_seq(self, t=10, b=4, f=6, seed=0, density=0.3):
        rng = np.random.default_rng(seed)
        return Tensor((rng.random((t, b, f)) < density).astype(np.float64))

    def test_spiking_linear_shapes(self):
        layer = SpikingLinear(6, 5, rng=np.random.default_rng(0))
        out = layer(self._input_seq())
        assert out.shape == (10, 4, 5)
        assert set(np.unique(out.data)) <= {0.0, 1.0}

    def test_spiking_linear_rejects_2d(self):
        layer = SpikingLinear(6, 5)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((4, 6))))

    def test_readout_shapes(self):
        layer = LIFReadout(6, 3, rng=np.random.default_rng(0))
        out = layer(self._input_seq())
        assert out.shape == (4, 3)

    def test_gradients_reach_first_layer(self):
        mlp = SpikingMLP([6, 8, 3], rng=np.random.default_rng(0))
        out = mlp(self._input_seq())
        loss = cross_entropy(out, np.array([0, 1, 2, 0]))
        loss.backward()
        first = mlp.hidden[0].linear.weight
        assert first.grad is not None
        assert np.abs(first.grad).max() > 0

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            SpikingMLP([5])

    def test_spike_counts_measured(self):
        mlp = SpikingMLP([6, 8, 3], rng=np.random.default_rng(0))
        counts = mlp.spike_counts(self._input_seq(density=0.8))
        assert len(counts) == 1
        assert 0.0 <= counts[0] <= 1.0

    def test_snn_trains_on_toy_temporal_task(self):
        # Class 0: channel 0 active early; class 1: channel 1 active early.
        rng = np.random.default_rng(0)
        t, f = 12, 4

        def make_batch(n):
            xs = np.zeros((t, n, f))
            ys = rng.integers(0, 2, n)
            for i, y in enumerate(ys):
                xs[:6, i, y] = 1.0
                xs[6:, i, 1 - y] = 1.0
            return Tensor(xs), ys

        mlp = SpikingMLP([f, 16, 2], rng=np.random.default_rng(1))
        opt = Adam(mlp.parameters(), lr=0.02)
        for _ in range(40):
            x, y = make_batch(16)
            opt.zero_grad()
            cross_entropy(mlp(x), y).backward()
            opt.step()
        x, y = make_batch(32)
        acc = float(np.mean(mlp(x).data.argmax(axis=1) == y))
        assert acc >= 0.9


class TestEncodings:
    def test_events_to_spike_tensor_shape(self):
        res = Resolution(8, 8)
        s = EventStream.from_arrays(
            [0, 500, 999], [1, 2, 3], [1, 2, 3], [1, -1, 1], res
        )
        t = events_to_spike_tensor(s, num_steps=4, duration_us=1000)
        assert t.shape == (4, 2, 8, 8)
        assert t.sum() == 3
        assert t[0, 0, 1, 1] == 1  # first ON event
        assert t[2, 1, 2, 2] == 1  # OFF event at t=500 -> step 2

    def test_spike_tensor_pooling(self):
        res = Resolution(8, 8)
        s = EventStream.from_arrays([0, 1], [0, 7], [0, 7], [1, 1], res)
        t = events_to_spike_tensor(s, num_steps=2, pool=4)
        assert t.shape == (2, 2, 2, 2)

    def test_spike_tensor_binary_clipping(self):
        res = Resolution(2, 2)
        s = EventStream.from_arrays([0, 0, 0], [0, 0, 0], [0, 0, 0], [1, 1, 1], res)
        t_bin = events_to_spike_tensor(s, num_steps=1, duration_us=10)
        t_cnt = events_to_spike_tensor(s, num_steps=1, duration_us=10, binary=False)
        assert t_bin[0, 0, 0, 0] == 1.0
        assert t_cnt[0, 0, 0, 0] == 3.0

    def test_spike_tensor_empty(self):
        t = events_to_spike_tensor(EventStream.empty(Resolution(4, 4)), 5)
        assert t.shape == (5, 2, 4, 4)
        assert t.sum() == 0

    def test_spike_tensor_validation(self):
        s = EventStream.empty(Resolution(4, 4))
        with pytest.raises(ValueError):
            events_to_spike_tensor(s, 0)
        with pytest.raises(ValueError):
            events_to_spike_tensor(s, 5, pool=0)

    def test_rate_code_converges(self):
        rng = np.random.default_rng(0)
        values = np.array([0.1, 0.5, 0.9])
        spikes = rate_encode(values, 2000, rng)
        np.testing.assert_allclose(decode_rate(spikes), values, atol=0.05)

    def test_rate_code_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            rate_encode(np.array([1.5]), 10, rng)
        with pytest.raises(ValueError):
            rate_encode(np.array([0.5]), 0, rng)

    def test_latency_code_roundtrip(self):
        values = np.array([0.0, 0.25, 0.5, 1.0])
        spikes = latency_encode(values, 9)
        decoded = decode_latency(spikes)
        np.testing.assert_allclose(decoded, values, atol=0.07)
        # Exactly one spike per nonzero value.
        assert spikes.sum() == 3

    def test_latency_earlier_is_larger(self):
        spikes = latency_encode(np.array([1.0, 0.5]), 11)
        assert spikes[:, 0].argmax() < spikes[:, 1].argmax()

    def test_temporal_difference_sparse_on_static(self):
        seq = np.ones((20, 5)) * 0.55
        deltas = temporal_difference_encode(seq, quantum=0.1)
        # One burst at onset, then silence.
        assert np.abs(deltas[0]).sum() > 0
        assert np.abs(deltas[1:]).sum() == 0

    def test_temporal_difference_tracks_changes(self):
        seq = np.linspace(0, 1, 11).reshape(-1, 1)
        deltas = temporal_difference_encode(seq, quantum=0.1)
        # Cumulative quanta reconstruct the ramp.
        recon = np.cumsum(deltas[:, 0]) * 0.1
        np.testing.assert_allclose(recon, seq[:, 0], atol=0.1)

    def test_temporal_difference_validation(self):
        with pytest.raises(ValueError):
            temporal_difference_encode(np.ones((5, 2)), quantum=0)

    @given(st.integers(1, 50), st.integers(2, 30), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_rate_code_mean_bounded(self, n, steps, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(n)
        spikes = rate_encode(values, steps, rng)
        assert spikes.shape == (steps, n)
        assert set(np.unique(spikes)) <= {0.0, 1.0}
