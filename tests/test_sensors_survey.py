"""Tests for the sensor survey database and trend fits (Fig. 1 substrate)."""

import math

import numpy as np
import pytest

from repro.sensors import (
    SENSOR_SURVEY,
    SensorRecord,
    fill_factor_by_process,
    fit_array_size_trend,
    fit_pixel_pitch_trend,
)
from repro.sensors.survey import _log_linear_fit


class TestSurveyData:
    def test_nonempty_and_ordered(self):
        assert len(SENSOR_SURVEY) >= 6
        years = [s.year for s in SENSOR_SURVEY]
        assert years == sorted(years)

    def test_decade_span(self):
        years = [s.year for s in SENSOR_SURVEY]
        assert min(years) <= 2010 and max(years) >= 2020

    def test_fields_sane(self):
        for s in SENSOR_SURVEY:
            assert s.width > 0 and s.height > 0
            assert 1.0 < s.pixel_pitch_um < 100.0
            if s.fill_factor is not None:
                assert 0.0 < s.fill_factor < 1.0
            if s.max_throughput_eps is not None:
                assert s.max_throughput_eps > 0

    def test_megapixels(self):
        gen4 = next(s for s in SENSOR_SURVEY if "Gen4" in s.name and "Prophesee" in s.name)
        assert gen4.megapixels == pytest.approx(0.9216)
        assert gen4.num_pixels == 1280 * 720

    def test_hd_sensors_are_bsi(self):
        for s in SENSOR_SURVEY:
            if s.pixel_pitch_um < 6.0:
                assert s.backside_illuminated


class TestTrends:
    def test_pixel_pitch_shrinks(self):
        fit = fit_pixel_pitch_trend()
        assert fit.log_slope < 0
        # Paper: ~40 um (2008) down to < 5 um (2020): roughly 10x per decade.
        assert fit.factor_per_decade < 0.5

    def test_array_size_grows(self):
        fit = fit_array_size_trend()
        assert fit.log_slope > 0
        # From 128x128 (16 kpx) to ~1 Mpx plus: a large factor per decade.
        assert fit.factor_per_decade > 5

    def test_predictions_bracket_data(self):
        fit = fit_pixel_pitch_trend()
        assert float(fit.predict(2008)) > float(fit.predict(2020))
        p2008 = float(fit.predict(2008))
        assert 10 < p2008 < 100

    def test_doubling_time_sign(self):
        assert fit_array_size_trend().doubling_time_years > 0
        assert fit_pixel_pitch_trend().doubling_time_years < 0

    def test_r_squared_reasonable(self):
        # The survey mixes industrial HD sensors with small research
        # prototypes, so the array-size scatter is wide (as in Fig. 1).
        assert fit_pixel_pitch_trend().r_squared > 0.5
        assert fit_array_size_trend().r_squared > 0.2

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            _log_linear_fit(np.array([2020.0]), np.array([5.0]))

    def test_exact_exponential_recovered(self):
        years = np.arange(2010, 2020, dtype=np.float64)
        values = 100.0 * np.exp(-0.2 * (years - 2010))
        fit = _log_linear_fit(years, values)
        assert fit.log_slope == pytest.approx(-0.2, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert math.isclose(float(fit.predict(2015)), 100.0 * math.exp(-1.0), rel_tol=1e-9)

    def test_custom_survey(self):
        mini = (
            SensorRecord("A", "x", 2010, 100, 100, 30.0, None, False, None, "-"),
            SensorRecord("B", "x", 2020, 1000, 1000, 3.0, None, True, None, "-"),
        )
        fit = fit_pixel_pitch_trend(mini)
        assert fit.factor_per_decade == pytest.approx(0.1)


class TestFillFactor:
    def test_bsi_step(self):
        ff = fill_factor_by_process()
        # "from around one fifth to more than three quarters" (Section II).
        assert ff["FSI"] < 0.3
        assert ff["BSI"] > 0.7

    def test_empty_categories_omitted(self):
        only_fsi = tuple(s for s in SENSOR_SURVEY if not s.backside_illuminated)
        ff = fill_factor_by_process(only_fsi)
        assert "BSI" not in ff
