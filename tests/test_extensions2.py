"""Tests for the second extension round: adaptive LIF, memory hierarchy,
motion segmentation and the StepLR schedule."""

import numpy as np
import pytest

from repro.analysis import segment_events, segmentation_purity
from repro.camera import CameraConfig, CompositeStimulus, EventCamera, MovingDisk
from repro.events import EventStream, Resolution
from repro.hw import ENERGY_45NM, MemoryHierarchy, MemoryLevel, default_hierarchy
from repro.nn import SGD, StepLR, Tensor
from repro.snn import (
    AdaptiveLIFParams,
    AdaptiveLIFState,
    LIFParams,
    LIFState,
    adaptive_lif_step_np,
    lif_step_np,
)


class TestAdaptiveLIF:
    def test_spike_frequency_adaptation(self):
        """Sustained drive: inter-spike intervals lengthen over time."""
        p = AdaptiveLIFParams(
            lif=LIFParams(tau_us=1e9, threshold=1.0),
            tau_adapt_us=500_000.0,
            beta=0.5,
        )
        state = AdaptiveLIFState.zeros((1,), p)
        drive = np.array([0.4])
        fire_steps = [
            t for t in range(60) if adaptive_lif_step_np(state, drive, p, 1000.0)[0]
        ]
        assert len(fire_steps) >= 3
        intervals = np.diff(fire_steps)
        assert intervals[-1] > intervals[0]  # decelerating train

    def test_reduces_to_lif_with_zero_beta(self):
        p_ad = AdaptiveLIFParams(lif=LIFParams(tau_us=5000.0), beta=0.0)
        p_plain = LIFParams(tau_us=5000.0)
        s_ad = AdaptiveLIFState.zeros((4,), p_ad)
        s_plain = LIFState.zeros((4,), p_plain)
        rng = np.random.default_rng(0)
        for _ in range(30):
            drive = rng.random(4) * 0.6
            a = adaptive_lif_step_np(s_ad, drive, p_ad, 1000.0)
            b = lif_step_np(s_plain, drive, p_plain, 1000.0)
            np.testing.assert_array_equal(a, b)

    def test_adaptation_decays(self):
        p = AdaptiveLIFParams(tau_adapt_us=10_000.0, beta=1.0)
        state = AdaptiveLIFState.zeros((1,), p)
        state.a[0] = 1.0
        adaptive_lif_step_np(state, np.array([0.0]), p, 10_000.0)
        assert state.a[0] == pytest.approx(np.exp(-1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLIFParams(tau_adapt_us=0)
        with pytest.raises(ValueError):
            AdaptiveLIFParams(beta=-0.1)


class TestMemoryHierarchy:
    def test_placement(self):
        h = default_hierarchy()
        assert h.place(100).name == "register-file"
        assert h.place(4096).name == "sram-8KB"
        assert h.place(500_000).name == "sram-1MB"
        assert h.place(10**9).name == "dram"

    def test_access_energy_grows_with_footprint(self):
        h = default_hierarchy()
        small = h.access_energy_pj(100, 1000)
        large = h.access_energy_pj(500_000, 1000)
        assert large > 10 * small

    def test_distributed_core_tradeoff(self):
        """Ref [43]: more cores -> cheaper accesses but more area."""
        h = default_hierarchy()
        model_bytes = 4 * 1024 * 1024  # 4 MB of synapses
        monolithic = h.distributed_core_tradeoff(model_bytes, 1)
        distributed = h.distributed_core_tradeoff(model_bytes, 1024)
        assert distributed["energy_pj"] < monolithic["energy_pj"]
        assert distributed["area_mm2"] > monolithic["area_mm2"]
        assert distributed["level"] != monolithic["level"]

    def test_ordering_validation(self):
        lv = MemoryLevel("a", 100, 1.0, 1.0)
        lv_big_cheap = MemoryLevel("b", 1000, 0.5, 1.0)
        with pytest.raises(ValueError, match="access energy"):
            MemoryHierarchy((lv, lv_big_cheap))
        with pytest.raises(ValueError, match="capacity"):
            MemoryHierarchy((MemoryLevel("b", 1000, 1.0, 1.0), lv))
        with pytest.raises(ValueError):
            MemoryHierarchy(())

    def test_level_validation(self):
        with pytest.raises(ValueError):
            MemoryLevel("x", 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MemoryLevel("x", 10, 0.0, 1.0)

    def test_misc_validation(self):
        h = default_hierarchy()
        with pytest.raises(ValueError):
            h.place(-1)
        with pytest.raises(ValueError):
            h.access_energy_pj(10, -1)
        with pytest.raises(ValueError):
            h.distributed_core_tradeoff(0, 1)


class TestSegmentation:
    RES = Resolution(48, 48)

    def _two_disks(self, seed=0):
        """Two disks moving in opposite corners; ground truth by x side."""
        cam = EventCamera(self.RES, CameraConfig(sample_period_us=500, seed=seed))
        stim = CompositeStimulus(
            [
                MovingDisk(self.RES, radius=3.5, x0=6, y0=12, vx_px_per_s=400),
                MovingDisk(self.RES, radius=3.5, x0=40, y0=36, vx_px_per_s=-400),
            ]
        )
        events, _ = cam.record(stim, 25_000)
        truth = (events.x > self.RES.width / 2).astype(np.int64)
        return events, truth

    def test_separates_two_objects(self):
        events, truth = self._two_disks()
        result = segment_events(events, radius=3.0, time_scale_us=2000.0, min_size=15)
        assert result.num_segments == 2
        # Map truth onto the subsample the segmenter used.
        n = result.labels.size
        idx = np.unique(np.linspace(0, len(events) - 1, min(len(events), 1500)).astype(int))
        sub_truth = truth[idx] if n == idx.size else truth[:n]
        assert segmentation_purity(result.labels, sub_truth) > 0.95

    def test_noise_events_rejected(self):
        rng = np.random.default_rng(0)
        # Sparse uniform noise: no component reaches min_size.
        t = np.sort(rng.integers(0, 1_000_000, 60))
        s = EventStream.from_arrays(
            t, rng.integers(0, 48, 60), rng.integers(0, 48, 60),
            rng.choice([-1, 1], 60), self.RES,
        )
        result = segment_events(s, radius=2.0, time_scale_us=500.0, min_size=10)
        assert result.num_segments == 0
        assert result.num_noise == 60

    def test_segment_sizes_sorted(self):
        events, _ = self._two_disks(seed=1)
        result = segment_events(events, radius=3.0, time_scale_us=2000.0, min_size=15)
        sizes = result.segment_sizes()
        assert sizes.size == result.num_segments
        assert np.all(np.diff(sizes) <= 0)

    def test_empty_stream(self):
        result = segment_events(EventStream.empty(self.RES))
        assert result.num_segments == 0
        assert result.labels.size == 0

    def test_validation(self):
        events, truth = self._two_disks()
        with pytest.raises(ValueError):
            segment_events(events, radius=0)
        with pytest.raises(ValueError):
            segment_events(events, min_size=0)
        with pytest.raises(ValueError):
            segment_events(events, max_events=0)
        with pytest.raises(ValueError):
            segmentation_purity(np.zeros(3), np.zeros(4))

    def test_purity_edge_cases(self):
        assert segmentation_purity(np.array([-1, -1]), np.array([0, 1])) == 0.0
        assert segmentation_purity(np.array([0, 0, 1]), np.array([5, 5, 7])) == 1.0


class TestStepLR:
    def test_decay_schedule(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=3, gamma=0.1)
        for _ in range(3):
            sched.step()
        assert sched.lr == pytest.approx(0.1)
        for _ in range(3):
            sched.step()
        assert sched.lr == pytest.approx(0.01)

    def test_no_decay_before_boundary(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        sched = StepLR(SGD([p], lr=1.0), step_size=5, gamma=0.5)
        for _ in range(4):
            sched.step()
        assert sched.lr == 1.0

    def test_validation(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=1, gamma=0.0)


class TestMultiObjectLocalisation:
    """Segmentation + per-segment centroid = multi-object detection."""

    def test_locates_both_objects(self):
        res = Resolution(48, 48)
        cam = EventCamera(res, CameraConfig(sample_period_us=500, seed=4))
        stim = CompositeStimulus(
            [
                MovingDisk(res, radius=3.5, x0=8, y0=10, vx_px_per_s=300),
                MovingDisk(res, radius=3.5, x0=38, y0=38, vx_px_per_s=-300),
            ]
        )
        events, _ = cam.record(stim, 25_000)
        result = segment_events(events, radius=3.0, time_scale_us=2000.0, min_size=15)
        assert result.num_segments == 2

        # Per-segment centroid should sit near each disk's swept path.
        idx = np.unique(
            np.linspace(0, len(events) - 1, min(len(events), 1500)).astype(int)
        )
        sub = events[idx]
        centroids = []
        for seg in range(result.num_segments):
            mask = result.labels == seg
            centroids.append((float(sub.x[mask].mean()), float(sub.y[mask].mean())))
        centroids.sort()
        # Disk 1 sweeps x in [8, 15.5] at y=10; disk 2 x in [30.5, 38] at y=38.
        (x1, y1), (x2, y2) = centroids
        assert abs(y1 - 10) < 4 and 6 < x1 < 18
        assert abs(y2 - 38) < 4 and 28 < x2 < 40
