"""Tests for extension features: SpikingConv2d, spikes-as-bits coding,
the 3-D smart-imager model, and the Section-V recurrent-CNN claim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import IOEnergyParams, SmartImagerModel
from repro.nn import Adam, Tensor, accuracy, cross_entropy
from repro.snn import LIFParams, SpikingConv2d, bit_encode, decode_bits, rate_encode


class TestSpikingConv2d:
    def _input(self, t=6, b=2, c=2, hw=8, density=0.3, seed=0):
        rng = np.random.default_rng(seed)
        return Tensor((rng.random((t, b, c, hw, hw)) < density).astype(np.float64))

    def test_shapes_and_binary_output(self):
        layer = SpikingConv2d(2, 4, 3, padding=1, rng=np.random.default_rng(0))
        out = layer(self._input())
        assert out.shape == (6, 2, 4, 8, 8)
        assert set(np.unique(out.data)) <= {0.0, 1.0}

    def test_stride_shapes(self):
        layer = SpikingConv2d(2, 4, 3, stride=2, padding=1)
        assert layer(self._input()).shape == (6, 2, 4, 4, 4)

    def test_rejects_wrong_ndim(self):
        layer = SpikingConv2d(1, 1, 3)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 1, 8, 8))))

    def test_membrane_integrates_over_time(self):
        # Sub-threshold per-step input accumulates and eventually fires.
        layer = SpikingConv2d(
            1, 1, 1, params=LIFParams(tau_us=1e9, threshold=1.0),
            rng=np.random.default_rng(0),
        )
        layer.conv.weight.data[...] = 0.4
        layer.conv.bias.data[...] = 0.0
        x = Tensor(np.ones((5, 1, 1, 2, 2)))
        out = layer(x)
        per_step = out.data[:, 0, 0, 0, 0]
        assert per_step[0] == 0.0  # 0.4 < threshold
        assert per_step.sum() >= 1.0  # accumulated past threshold later

    def test_gradients_flow(self):
        layer = SpikingConv2d(2, 3, 3, padding=1, rng=np.random.default_rng(1))
        out = layer(self._input(density=0.6))
        out.sum().backward()
        assert layer.conv.weight.grad is not None
        assert np.abs(layer.conv.weight.grad).max() > 0


class TestBitCoding:
    def test_exact_on_grid_values(self):
        # Values on the quantisation grid round-trip exactly.
        values = np.array([0.0, 1.0, 3 / 15, 9 / 15])
        spikes = bit_encode(values, num_bits=4)
        np.testing.assert_allclose(decode_bits(spikes), values, atol=1e-12)

    def test_error_bounded_by_quantum(self):
        rng = np.random.default_rng(0)
        values = rng.random(200)
        for bits in (4, 8):
            decoded = decode_bits(bit_encode(values, bits))
            assert np.abs(decoded - values).max() <= 0.5 / (2**bits - 1) + 1e-12

    def test_logarithmically_fewer_spikes_than_rate(self):
        rng = np.random.default_rng(0)
        values = rng.random(500)
        bits = 8
        bit_spikes = bit_encode(values, bits).sum() / values.size
        # Rate coding at matched precision needs ~(2^bits) steps.
        rate_spikes = rate_encode(values, 2**bits, rng).sum() / values.size
        assert bit_spikes <= bits
        assert rate_spikes > 10 * bit_spikes

    def test_msb_first(self):
        spikes = bit_encode(np.array([0.5 + 1e-9]), num_bits=4)
        # 0.5 * 15 = 7.5 -> rounds to 8 = 0b1000: MSB fires first.
        assert spikes[:, 0].tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_encode(np.array([0.5]), 0)
        with pytest.raises(ValueError):
            bit_encode(np.array([1.5]), 4)
        with pytest.raises(ValueError):
            decode_bits(np.zeros(0))

    @given(st.integers(2, 10), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, bits, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(20)
        decoded = decode_bits(bit_encode(values, bits))
        assert np.abs(decoded - values).max() <= 1.0 / (2**bits - 1)


class TestSmartImager:
    def test_in_sensor_wins_at_high_rates(self):
        model = SmartImagerModel()
        # 1 MEPS for 100 ms.
        saving = model.io_saving(num_events=100_000, duration_us=100_000)
        assert saving > 10

    def test_saving_grows_with_event_rate(self):
        model = SmartImagerModel()
        low = model.io_saving(1_000, 100_000)
        high = model.io_saving(1_000_000, 100_000)
        assert high > low

    def test_stream_out_breakdown(self):
        model = SmartImagerModel()
        r = model.stream_out(10_000, 100_000, compute_energy_pj=1e6)
        assert r.breakdown["io_offchip"] == 10_000 * model.event_bits * model.io.offchip_pj_per_bit
        assert r.energy_pj == r.breakdown["io_offchip"] + 1e6

    def test_in_sensor_includes_decision_traffic(self):
        model = SmartImagerModel(decision_bits=64)
        r = model.in_sensor(0, 1_000_000, 0.0, decisions_per_second=100)
        # 100 decisions in one second.
        assert r.breakdown["io_offchip"] == pytest.approx(
            100 * 64 * model.io.offchip_pj_per_bit
        )

    def test_asymptote_is_io_ratio(self):
        model = SmartImagerModel()
        saving = model.io_saving(10**9, 1_000_000)
        ratio = model.io.offchip_pj_per_bit / model.io.tsv_pj_per_bit
        assert saving == pytest.approx(ratio, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            IOEnergyParams(offchip_pj_per_bit=0.01)  # breaks the ordering
        with pytest.raises(ValueError):
            SmartImagerModel(event_bits=0)
        model = SmartImagerModel()
        with pytest.raises(ValueError):
            model.stream_out(-1, 100)
        with pytest.raises(ValueError):
            model.in_sensor(10, 100, 0.0, decisions_per_second=0)


class TestRecurrentCNNRecoversTemporal:
    """Section V: 'recurrent blocks can be readily incorporated into CNNs'
    to recover the temporal memory single frames discard [76]."""

    def test_convgru_separates_rotation_direction(self):
        from repro.camera import CameraConfig, EventCamera, RotatingBar
        from repro.cnn import RecurrentFrameClassifier, two_channel_frame
        from repro.events import Resolution, split_by_time

        res = Resolution(16, 16)
        rng = np.random.default_rng(0)

        def make_samples(n, seed0):
            xs, ys = [], []
            for i in range(n):
                direction = i % 2  # 0 = CW, 1 = CCW
                omega = 2 * np.pi * 6.0 * (1 if direction == 0 else -1)
                phase = rng.uniform(0, 2 * np.pi)
                cam = EventCamera(res, CameraConfig(sample_period_us=1000, seed=seed0 + i))
                stim = RotatingBar(res, angular_speed_rad_per_s=omega, phase0_rad=phase)
                events, _ = cam.record(stim, 48_000)
                frames = [
                    two_channel_frame(chunk)
                    for chunk in split_by_time(events, 8_000)
                ][:6]
                while len(frames) < 6:
                    frames.append(np.zeros((2, 16, 16)))
                stack = np.stack(frames)
                peak = stack.max()
                xs.append(stack / peak if peak > 0 else stack)
                ys.append(direction)
            return np.stack(xs, axis=1), np.array(ys)  # (T, N, C, H, W)

        x_train, y_train = make_samples(40, seed0=0)
        x_test, y_test = make_samples(12, seed0=500)

        model = RecurrentFrameClassifier(2, 4, 2, (16, 16), rng=np.random.default_rng(1))
        opt = Adam(model.parameters(), lr=0.01)
        for _ in range(40):
            opt.zero_grad()
            cross_entropy(model(Tensor(x_train)), y_train).backward()
            opt.step()
        test_acc = accuracy(model(Tensor(x_test)).data, y_test)
        # The recurrent CNN separates CW from CCW (single frames cannot).
        assert test_acc >= 0.8
