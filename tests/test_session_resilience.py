"""Bounded-state, self-healing serving: expiry, audits, recovery, checkpoints."""

import numpy as np
import pytest

from repro.core import (
    AuditPolicy,
    GNNPipeline,
    SessionDivergenceError,
    attach_session_robustness,
)
from repro.datasets import make_gestures_dataset
from repro.events.stream import EventStream, Resolution
from repro.gnn import BoundedHashInserter, HashInserter
from repro.gnn.async_network import SNAPSHOT_FORMAT, AsyncEventGNN
from repro.gnn.models import build_event_graph
from repro.nn import no_grad
from repro.reliability import (
    ClockSkew,
    NaNFeatureInjection,
    SessionStateCorruption,
    apply_session_fault,
    run_incremental_robustness,
    session_robustness_scores,
)
from repro.streaming import BreakerPolicy, ServiceModel, StreamingExecutor

WINDOW_US = 10_000
RES = Resolution(48, 48)


@pytest.fixture(scope="module")
def dataset():
    return make_gestures_dataset(num_per_class=2, duration_us=50_000, seed=3)


@pytest.fixture(scope="module")
def gnn(dataset):
    pipe = GNNPipeline(epochs=2, seed=0)
    pipe.fit(dataset)
    return pipe


def make_bursts(
    num_bursts=4, events_per_burst=40, gap_us=50_000, span_us=8_000, seed=0
):
    """Bursts shorter than the liveness window, separated by larger gaps.

    While a burst is live every previous burst has fully expired, so a
    bounded engine's live set is exactly the burst — the regime where
    sliding-window serving must match batch inference bit for bit.
    """
    rng = np.random.default_rng(seed)
    t, x, y, p = [], [], [], []
    for b in range(num_bursts):
        start = b * (span_us + gap_us)
        tt = np.sort(rng.integers(start, start + span_us, size=events_per_burst))
        t.append(tt)
        x.append(rng.integers(0, RES.width, size=events_per_burst))
        y.append(rng.integers(0, RES.height, size=events_per_burst))
        p.append(rng.choice([-1, 1], size=events_per_burst))
    return EventStream.from_arrays(
        np.concatenate(t), np.concatenate(x), np.concatenate(y),
        np.concatenate(p), RES,
    )


def burst_slices(stream, gap_us=50_000):
    """Split a burst stream back into its bursts."""
    t = stream.t
    cuts = np.flatnonzero(np.diff(t) > gap_us // 2) + 1
    return [
        stream[int(a):int(b)]
        for a, b in zip(np.r_[0, cuts], np.r_[cuts, len(t)])
    ]


class TestBoundedEngine:
    def _engine(self, gnn, **kw):
        kw.setdefault("window_us", 20_000)
        return AsyncEventGNN(
            gnn.model,
            radius=gnn.config.radius,
            time_scale_us=gnn.config.time_scale_us,
            max_degree=gnn.config.max_degree,
            resolution=gnn._resolution,
            include_position=gnn.config.include_position,
            **kw,
        )

    def test_bounded_inserter_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BoundedHashInserter(radius=4.0, capacity=0)

    def test_property_bounded_equals_batch_on_live_window(self, gnn):
        """Satellite: bounded per-event scores == batch forward per burst."""
        stream = make_bursts(seed=11)
        engine = self._engine(gnn, max_live_nodes=64)
        bursts = burst_slices(stream)
        assert len(bursts) == 4
        for burst in bursts:
            for t, x, y, p in zip(burst.t, burst.x, burst.y, burst.p):
                engine.process_event(int(x), int(y), int(t), int(p))
            graph = build_event_graph(burst, gnn.config)
            with no_grad():
                batch_scores = gnn.model(graph).data[0]
            assert np.array_equal(engine.scores(), batch_scores)
        assert engine.expired_nodes_total > 0  # earlier bursts really left

    def test_hard_budget_holds_and_state_is_flat(self, gnn):
        stream = make_bursts(
            num_bursts=2, events_per_burst=1500, span_us=30_000, seed=5
        )
        engine = self._engine(gnn, max_live_nodes=16, window_us=1 << 62)
        sizes = []
        for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
            report = engine.process_event(int(x), int(y), int(t), int(p))
            assert report.live_nodes <= 16
            sizes.append(engine.state_bytes())
        assert engine.num_live_nodes <= 16
        # Once the recycled edge log has warmed up the footprint is
        # flat: no array reallocates over the final third of the stream,
        # however many more events arrive.
        assert len(set(sizes[-len(sizes) // 3 :])) == 1

    def test_empty_after_expiry_edge_case(self, gnn):
        """Satellite edge case: expiring everything yields the empty readout."""
        stream = make_bursts(num_bursts=1, seed=2)
        engine = self._engine(gnn, max_live_nodes=64)
        for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
            engine.process_event(int(x), int(y), int(t), int(p))
        expired = engine.expire(int(stream.t[-1]) + 10_000_000)
        assert expired == engine.expired_nodes_total
        assert engine.num_live_nodes == 0
        assert np.array_equal(engine.scores(), np.zeros_like(engine.scores()))

    def test_expire_requires_bounded_mode(self, gnn):
        engine = self._engine(gnn)
        with pytest.raises(ValueError):
            engine.expire(0)

    def test_scores_view_is_read_only(self, gnn):
        """Satellite: cached scores cannot be mutated by a caller."""
        stream = make_bursts(num_bursts=1, events_per_burst=10, seed=7)
        engine = self._engine(gnn)
        for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
            engine.process_event(int(x), int(y), int(t), int(p))
        scores = engine.scores()
        assert not scores.flags.writeable
        with pytest.raises(ValueError):
            scores[0] = 123.0
        session = gnn.open_session()
        session.process_event(5, 5, 100, 1)
        assert not session.scores().flags.writeable

    def test_engine_snapshot_restore_resumes_bit_equal(self, gnn):
        stream = make_bursts(num_bursts=2, events_per_burst=60, seed=9)
        half = len(stream) // 2
        a = self._engine(gnn, max_live_nodes=32)
        b = self._engine(gnn, max_live_nodes=32)
        for t, x, y, p in zip(
            stream.t[:half], stream.x[:half], stream.y[:half], stream.p[:half]
        ):
            a.process_event(int(x), int(y), int(t), int(p))
        snap = a.snapshot()
        b.restore(snap)
        for t, x, y, p in zip(
            stream.t[half:], stream.x[half:], stream.y[half:], stream.p[half:]
        ):
            ra = a.process_event(int(x), int(y), int(t), int(p))
            rb = b.process_event(int(x), int(y), int(t), int(p))
            assert ra.num_neighbours == rb.num_neighbours
        assert np.array_equal(a.scores(), b.scores())
        b.restore(snap)  # the snapshot dict stays valid after use
        assert b.num_events == half

    def test_restore_validates_checkpoints(self, gnn):
        bounded = self._engine(gnn, max_live_nodes=32)
        unbounded = self._engine(gnn)
        snap = bounded.snapshot()
        with pytest.raises(ValueError):
            unbounded.restore(snap)  # mode mismatch
        with pytest.raises(ValueError):
            self._engine(gnn, max_live_nodes=16).restore(snap)  # capacity
        bad = dict(snap, format="async-gnn/v0")
        with pytest.raises(ValueError):
            bounded.restore(bad)
        bad = dict(snap, x2=snap["x2"][:, :1])
        with pytest.raises(ValueError):
            bounded.restore(bad)
        assert snap["format"] == SNAPSHOT_FORMAT


class TestDivergenceAudit:
    def test_clean_session_never_trips(self, gnn, dataset):
        session = gnn.open_session(audit=AuditPolicy(every=1, tolerance=0.0))
        stream = dataset.samples[0].stream[:60]
        for i in range(0, 60, 20):
            for t, x, y, p in zip(
                stream.t[i:i + 20], stream.x[i:i + 20],
                stream.y[i:i + 20], stream.p[i:i + 20],
            ):
                session.process_event(int(x), int(y), int(t), int(p))
            session.reset()
        assert session.window_index == 3
        assert session.last_audit_drift == 0.0

    def test_nan_corruption_is_caught_by_audit_not_scores(self, gnn, dataset):
        """NaN state is masked in the scores (serving stays up) but the
        shadow recompute sees the divergence at the window close."""
        session = gnn.open_session(audit=AuditPolicy(every=1, tolerance=1e-6))
        stream = dataset.samples[0].stream[:30]
        for i, (t, x, y, p) in enumerate(
            zip(stream.t, stream.x, stream.y, stream.p)
        ):
            if i == 15:
                apply_session_fault(NaNFeatureInjection(), session, seed=0)
            session.process_event(int(x), int(y), int(t), int(p))
        assert np.all(np.isfinite(session.scores()))  # masked, not crashed
        with pytest.raises(SessionDivergenceError) as err:
            session.reset()
        assert not err.value.drift <= 1e-6
        # The tripped window already rotated out: the next reset is clean
        # and the session keeps serving.
        session.reset()
        session.process_event(3, 3, int(stream.t[-1]) + 1000, 1)
        assert isinstance(session.predict(), int)

    def test_tolerance_and_cadence_are_honoured(self, gnn, dataset):
        session = gnn.open_session(
            audit=AuditPolicy(every=1, tolerance=float("inf"))
        )
        stream = dataset.samples[0].stream[:20]
        for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
            session.process_event(int(x), int(y), int(t), int(p))
        apply_session_fault(SessionStateCorruption(), session, seed=1)
        session.reset()  # infinite tolerance: audited, not tripped
        assert session.last_audit_drift is not None
        assert session.last_audit_drift > 0


class TestSessionCheckpoint:
    def test_session_restore_keeps_lifetime_macs(self, gnn, dataset):
        session = gnn.open_session()
        stream = dataset.samples[0].stream[:40]
        for t, x, y, p in zip(
            stream.t[:20], stream.x[:20], stream.y[:20], stream.p[:20]
        ):
            session.process_event(int(x), int(y), int(t), int(p))
        snap = session.snapshot()
        macs_at_snap = session.macs_total
        for t, x, y, p in zip(
            stream.t[20:], stream.x[20:], stream.y[20:], stream.p[20:]
        ):
            session.process_event(int(x), int(y), int(t), int(p))
        macs_after = session.macs_total
        session.restore(snap)
        # State rolls back; the lifetime effort counter does not.
        assert session.num_events == 20
        assert session.macs_total == macs_after > macs_at_snap

    def test_session_faults_only_touch_checkpoint_schema(self, gnn, dataset):
        session = gnn.open_session()
        stream = dataset.samples[0].stream[:20]
        for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
            session.process_event(int(x), int(y), int(t), int(p))
        before = session.scores().copy()
        apply_session_fault(SessionStateCorruption(magnitude=50.0), session, 3)
        assert not np.array_equal(session.scores(), before)

    def test_clock_skew_provokes_out_of_order_rejection(self, gnn, dataset):
        session = gnn.open_session()
        stream = dataset.samples[0].stream[:20]
        for t, x, y, p in zip(stream.t, stream.x, stream.y, stream.p):
            session.process_event(int(x), int(y), int(t), int(p))
        apply_session_fault(ClockSkew(skew_us=10_000_000), session, 0)
        with pytest.raises(ValueError):
            session.process_event(1, 1, int(stream.t[-1]) + 1, 1)


class TestExecutorProbation:
    def _run(self, pipe, stream, **kw):
        defaults = dict(
            window_us=WINDOW_US,
            service=ServiceModel(100.0, 0.1),
            serve_mode="event",
        )
        defaults.update(kw)
        ex = StreamingExecutor(pipe, **defaults)
        return ex.run(stream), ex

    def _flaky(self, gnn, fail_windows):
        """A pipeline whose fast-path sessions glitch on chosen windows."""

        class FlakyFastPath(GNNPipeline):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self.window_counter = 0

            def open_session(self, **kw):
                inner = super().open_session(**kw)
                pipe = self

                class Wrapper:
                    def reset(self):
                        pipe.window_counter += 1
                        inner.reset()

                    def process_event(self, *a):
                        return inner.process_event(*a)

                    def predict(self):
                        if pipe.window_counter in fail_windows:
                            raise RuntimeError("transient fast-path glitch")
                        return inner.predict()

                    def snapshot(self):
                        return inner.snapshot()

                    def restore(self, state):
                        inner.restore(state)

                    @property
                    def macs_total(self):
                        return inner.macs_total

                return Wrapper()

        flaky = FlakyFastPath(epochs=1, seed=0)
        flaky.model = gnn.model
        flaky._resolution = gnn._resolution
        return flaky

    def test_tripped_fast_path_reenables_via_half_open_probe(
        self, gnn, dataset
    ):
        """Acceptance: probation re-enables the fast path after probes."""
        stream = dataset.samples[0].stream  # 5 windows of 10 ms
        flaky = self._flaky(gnn, fail_windows={1, 2})
        policy = BreakerPolicy(
            failure_threshold=2,
            cooldown_calls=2,
            probe_probability=1.0,
            success_threshold=1,
        )
        r_win, _ = self._run(gnn, stream, serve_mode="window")
        r_evt, ex = self._run(flaky, stream, fastpath_policy=policy)
        # Windows 1-2 trip and open the probation breaker, at least one
        # window is refused during cooldown, then a seeded half-open
        # probe succeeds and the fast path serves again.
        assert r_evt.incremental_fallbacks == 2
        assert r_evt.incremental_refusals >= 1
        assert r_evt.incremental_windows >= 1
        states = [
            t.to_state.value for t in ex.inc_breakers["GNN"].transitions
        ]
        assert states[:2] == ["open", "half_open"]
        assert "closed" in states
        # Decisions never degraded: recomputes served the glitched windows.
        assert r_evt.predictions == r_win.predictions
        assert r_evt.accounting_errors() == []

    def test_failure_after_success_restores_last_good_checkpoint(
        self, gnn, dataset
    ):
        stream = dataset.samples[0].stream
        flaky = self._flaky(gnn, fail_windows={3})
        r_win, _ = self._run(gnn, stream, serve_mode="window")
        r_evt, ex = self._run(flaky, stream)
        assert r_evt.incremental_restores == 1
        assert r_evt.incremental_fallbacks == 1
        assert r_evt.incremental_windows == r_evt.processed - 1
        assert r_evt.predictions == r_win.predictions
        assert ex.inc_breakers["GNN"].state.value == "closed"

    def test_healthy_run_has_empty_probation_footprint(self, gnn, dataset):
        stream = dataset.samples[0].stream
        report, ex = self._run(gnn, stream)
        assert report.incremental_refusals == 0
        assert report.incremental_restores == 0
        assert report.incremental_fallbacks == 0
        assert ex.inc_breakers["GNN"].transitions == []

    def test_session_kwargs_reach_open_session(self, gnn, dataset):
        stream = dataset.samples[0].stream
        report, ex = self._run(
            gnn, stream, session_kwargs={"max_live_nodes": 512}
        )
        assert report.incremental_windows == report.processed
        assert ex.sessions["GNN"].engine.max_live_nodes == 512


class TestIncrementalRobustnessSweep:
    @pytest.fixture(scope="class")
    def sweep(self, gnn, dataset):
        test = make_gestures_dataset(num_per_class=1, duration_us=50_000, seed=7)
        return run_incremental_robustness(
            dataset, test, severities=(0.0, 1.0), pipeline=gnn, seed=0
        )

    def test_clean_point_is_a_self_check(self, sweep):
        clean = sweep.points[0]
        assert clean.severity == 0.0
        assert clean.faults_injected == 0
        assert clean.audits_tripped == 0
        assert clean.restores == 0

    def test_faulted_point_exercises_recovery(self, sweep):
        stressed = sweep.points[1]
        assert stressed.faults_injected > 0
        assert stressed.audits_tripped > 0  # silent drift was detected
        assert stressed.crashes > 0  # clock skew hit the crash path
        assert stressed.restores > 0  # and checkpoints rolled it back
        assert np.isfinite(stressed.accuracy)

    def test_scores_and_table_attachment(self, sweep):
        scores = session_robustness_scores(sweep)
        assert np.isnan(scores["SNN"]) and np.isnan(scores["CNN"])
        assert 0.0 <= scores["GNN"] <= 1.0
        d = sweep.to_dict()
        assert len(d["points"]) == 2
        with pytest.raises(ValueError):
            attach_session_robustness(object(), {"GNN": 1.0})  # missing keys
