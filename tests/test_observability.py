"""Tests for the observability substrate: metrics, tracing, export, hooks."""

import json

import numpy as np
import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    Instrumentation,
    MetricsRegistry,
    ProfilingHooks,
    SNAPSHOT_SCHEMA,
    Tracer,
    exponential_buckets,
    to_json,
    to_prometheus,
    validate_snapshot,
    wall_clock_us,
)


class ManualClock:
    """Deterministic microsecond clock for tracer tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, us):
        self.now += us


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"stage": "fit"})
        b = reg.counter("x_total", labels={"stage": "fit"})
        assert a is b
        assert reg.counter("x_total", labels={"stage": "predict"}) is not a

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels={"a": "1", "b": "2"})
        b = reg.counter("x_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_reads(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels={"s": "a"}).inc(2)
        reg.counter("x_total", labels={"s": "b"}).inc(3)
        assert reg.counter_value("x_total", {"s": "a"}) == 2
        assert reg.counter_value("x_total", {"s": "missing"}) == 0.0
        assert reg.counter_total("x_total") == 5


class TestGauge:
    def test_set_inc_max(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.inc(-1)
        assert g.value == 2
        g.max(7)
        g.max(5)  # lower value must not pull the high-watermark down
        assert g.value == 7


class TestHistogram:
    def test_bucket_assignment(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_us", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_invalid_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h1", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(3.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("h3", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("h4", buckets=(1.0, float("inf")))

    def test_bucket_layout_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat_us", buckets=(1.0, 10.0))
        with pytest.raises(ValueError):
            reg.histogram("lat_us", buckets=(1.0, 100.0))

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 10.0, 3) == (1.0, 10.0, 100.0)
        assert len(DEFAULT_BUCKETS) == 10
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 10.0, 3)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 3)


class TestRegistry:
    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(ValueError):
            reg.gauge("thing_total")
        with pytest.raises(ValueError):
            reg.histogram("thing_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("ok_name", labels={"bad-label": "x"})

    def test_snapshot_deterministic_ordering(self):
        def build(order):
            reg = MetricsRegistry()
            for label in order:
                reg.counter("x_total", labels={"s": label}).inc()
            reg.gauge("depth").set(2)
            return reg.snapshot()

        # Creation order must not leak into the snapshot.
        assert build(["b", "a", "c"]) == build(["a", "c", "b"])

    def test_snapshot_exports_integral_floats_as_ints(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(3)
        reg.counter("frac_total").inc(0.5)
        series = {c["name"]: c["value"] for c in reg.snapshot()["counters"]}
        assert series["n_total"] == 3 and isinstance(series["n_total"], int)
        assert series["frac_total"] == 0.5 and isinstance(series["frac_total"], float)


class TestTracer:
    def test_nesting_builds_tree(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(10)
            with tracer.span("inner_a"):
                clock.advance(5)
            with tracer.span("inner_b", index=7):
                clock.advance(1)
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.start_us == 0.0 and outer.end_us == 16.0
        assert outer.children[0].duration_us == 5.0
        assert outer.children[1].attrs == {"index": 7}

    def test_walk_depth_first_in_start_order(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.walk()] == ["a", "b", "c"]
        assert tracer.span_counts() == {"a": 1, "b": 1, "c": 1}
        assert [s.name for s in tracer.find("b")] == ["b"]

    def test_span_closes_on_exception(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                clock.advance(3)
                raise RuntimeError("x")
        assert tracer.roots[0].end_us == 3.0
        assert tracer._stack == []  # nothing dangling

    def test_reset(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == [] and tracer.to_dict() == []

    def test_wall_clock_default_monotone(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        span = tracer.roots[0]
        assert span.end_us >= span.start_us
        assert wall_clock_us() > 0


class TestExport:
    def _instr(self):
        clock = ManualClock()
        obs = Instrumentation(clock=clock)
        obs.registry.counter("x_total", labels={"s": "a"}, help="things").inc(2)
        obs.registry.histogram("lat_us", buckets=(1.0, 10.0)).observe(3.0)
        with obs.tracer.span("run"):
            clock.advance(4)
        return obs

    def test_full_snapshot_valid(self):
        snap = self._instr().snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert validate_snapshot(snap) == []

    def test_to_json_canonical(self):
        a, b = self._instr(), self._instr()
        assert to_json(a.snapshot()) == to_json(b.snapshot())
        assert json.loads(to_json(a.snapshot()))["schema"] == SNAPSHOT_SCHEMA

    def test_prometheus_text(self):
        obs = self._instr()
        text = to_prometheus(obs.snapshot(), registry=obs.registry)
        assert "# HELP x_total things" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{s="a"} 2' in text
        # Cumulative bucket counts + the implicit +Inf bucket.
        assert 'lat_us_bucket{le="1"} 0' in text
        assert 'lat_us_bucket{le="10"} 1' in text
        assert 'lat_us_bucket{le="+Inf"} 1' in text
        assert "lat_us_count 1" in text

    def test_validate_snapshot_catches_damage(self):
        snap = self._instr().snapshot()
        assert validate_snapshot({"schema": "wrong"}) != []
        broken = json.loads(to_json(snap))
        broken["metrics"]["histograms"][0]["counts"] = [1]  # wrong arity
        assert any("counts" in p for p in validate_snapshot(broken))
        del snap["trace"]
        assert any("trace" in p for p in validate_snapshot(snap))


class TestInstrumentationHooks:
    def test_hooks_fire_with_arguments(self):
        calls = []
        hooks = ProfilingHooks(
            on_stage_start=lambda s, i: calls.append(("start", s, i)),
            on_stage_end=lambda s, i, ok: calls.append(("end", s, i, ok)),
            on_window=lambda i, o: calls.append(("window", i, o)),
            on_shed=lambda t, n: calls.append(("shed", t, n)),
            on_trip=lambda s, f, t: calls.append(("trip", s, f, t)),
        )
        obs = Instrumentation(hooks=hooks)
        obs.stage_start("fit", 3)
        obs.stage_end("fit", 3, ok=False)
        obs.window(9, "processed")
        obs.shed("SUBSAMPLE", 120)
        obs.trip("primary", "closed", "open")
        assert calls == [
            ("start", "fit", 3),
            ("end", "fit", 3, False),
            ("window", 9, "processed"),
            ("shed", "SUBSAMPLE", 120),
            ("trip", "primary", "closed", "open"),
        ]

    def test_none_hooks_are_noops(self):
        obs = Instrumentation()
        obs.stage_start("fit")
        obs.stage_end("fit")
        obs.window(0, "processed")
        obs.shed("SUBSAMPLE", 1)
        obs.trip("s", "closed", "open")  # nothing raises


class TestDeterminismLint:
    def _lint(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "tools" / "check_determinism.py"
        spec = importlib.util.spec_from_file_location("check_determinism", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_flags_unstable_sorts(self):
        lint = self._lint()
        src = "import numpy as np\norder = np.argsort(keys)\nvals = np.sort(x)\n"
        violations = lint.lint_source(src, "f.py")
        assert len(violations) == 2
        assert violations[0].startswith("f.py:2:")

    def test_stable_kind_passes_even_multiline(self):
        lint = self._lint()
        src = 'order = np.argsort(\n    keys,\n    kind="stable",\n)\n'
        assert lint.lint_source(src) == []
        assert lint.lint_source("x = np.sort(a, kind='stable')\n") == []

    def test_pragma_allowlists_same_or_previous_line(self):
        lint = self._lint()
        assert lint.lint_source("p = np.sort(k * n)  # sort-ok: packed\n") == []
        assert lint.lint_source("# sort-ok: value sort\np = np.sort(k)\n") == []
        # A bare pragma without a reason does not count.
        assert lint.lint_source("p = np.sort(k)  # sort-ok:\n") != []

    def test_src_tree_is_clean(self):
        lint = self._lint()
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        assert lint.lint_paths([src]) == []

    def test_fixed_sites_are_stable(self):
        # The two bug sites this lint grew from must stay stable.
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        build = (root / "gnn" / "build.py").read_text()
        pruning = (root / "cnn" / "pruning.py").read_text()
        assert 'np.argsort(keys, kind="stable")' in build
        assert 'np.argsort(norms, kind="stable")' in pruning
