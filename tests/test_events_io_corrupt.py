"""Corrupt-archive handling in repro.events.io.load_events.

Every malformed recording must surface as a single ``ValueError`` whose
message names the offending path, so batch loaders can quarantine the
file on one exception type.
"""

import numpy as np
import pytest

from repro.events import EventStream, Resolution, load_events, save_events
from repro.events.stream import EVENT_DTYPE


@pytest.fixture
def stream():
    rng = np.random.default_rng(0)
    n = 200
    return EventStream.from_arrays(
        np.cumsum(rng.integers(1, 50, n)),
        rng.integers(0, 16, n),
        rng.integers(0, 12, n),
        rng.choice([-1, 1], n),
        Resolution(16, 12),
    )


def test_roundtrip_still_works(tmp_path, stream):
    path = tmp_path / "rec.npz"
    save_events(stream, path)
    assert load_events(path) == stream


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_events(tmp_path / "nope.npz")


def test_garbage_bytes_raise_value_error_with_path(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not a zip archive at all")
    with pytest.raises(ValueError, match="garbage.npz"):
        load_events(path)


def test_truncated_archive_raises_value_error(tmp_path, stream):
    path = tmp_path / "truncated.npz"
    save_events(stream, path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(ValueError, match="truncated.npz"):
        load_events(path)


@pytest.mark.parametrize("missing", ["version", "events", "width", "height"])
def test_missing_field_raises_value_error(tmp_path, stream, missing):
    path = tmp_path / "partial.npz"
    fields = {
        "version": np.int64(1),
        "events": stream.raw,
        "width": np.int64(16),
        "height": np.int64(12),
    }
    del fields[missing]
    np.savez_compressed(path, **fields)
    with pytest.raises(ValueError, match=f"missing '{missing}'"):
        load_events(path)


def test_future_version_raises_value_error(tmp_path, stream):
    path = tmp_path / "future.npz"
    np.savez_compressed(
        path,
        version=np.int64(99),
        events=stream.raw,
        width=np.int64(16),
        height=np.int64(12),
    )
    with pytest.raises(ValueError, match=r"future.npz.*version 99"):
        load_events(path)


def test_wrong_events_dtype_raises_value_error(tmp_path):
    path = tmp_path / "badtype.npz"
    np.savez_compressed(
        path,
        version=np.int64(1),
        events=np.array(["a", "b"]),  # not convertible to the event dtype
        width=np.int64(16),
        height=np.int64(12),
    )
    with pytest.raises(ValueError, match="badtype.npz"):
        load_events(path)


def test_convertible_dtype_is_accepted(tmp_path, stream):
    # A plain (unstructured) archive of the same fields converts cleanly.
    path = tmp_path / "compat.npz"
    compat = stream.raw.astype(
        [("t", "<i8"), ("x", "<i8"), ("y", "<i8"), ("p", "<i8")]
    )
    np.savez_compressed(
        path, version=np.int64(1), events=compat, width=np.int64(16),
        height=np.int64(12),
    )
    loaded = load_events(path)
    assert loaded.raw.dtype == EVENT_DTYPE
    assert loaded == stream


def test_bad_resolution_raises_value_error(tmp_path, stream):
    path = tmp_path / "badres.npz"
    np.savez_compressed(
        path,
        version=np.int64(1),
        events=stream.raw,
        width=np.int64(-4),
        height=np.int64(12),
    )
    with pytest.raises(ValueError, match="badres.npz"):
        load_events(path)


def test_out_of_bounds_events_raise_value_error(tmp_path, stream):
    # Valid archive structure, but the events violate the resolution.
    path = tmp_path / "oob.npz"
    np.savez_compressed(
        path,
        version=np.int64(1),
        events=stream.raw,
        width=np.int64(4),  # stream has x up to 15
        height=np.int64(12),
    )
    with pytest.raises(ValueError, match="oob.npz"):
        load_events(path)
