"""Tests for submanifold sparse conv, pruning, quantization and ConvGRU."""

import numpy as np
import pytest

import repro.nn as nn
from repro.cnn import (
    AsyncSparseConv2d,
    ConvGRUCell,
    QuantLinear,
    RecurrentFrameClassifier,
    dense_conv_macs,
    dequantize,
    magnitude_prune,
    quantize_model_weights,
    quantize_symmetric,
    ste_quantize,
    structured_prune_channels,
    weight_sparsity,
)
from repro.nn import Tensor


def random_sparse_input(c, h, w, density, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((c, h, w))
    mask = rng.random((h, w)) < density
    return x * mask[None, :, :]


class TestAsyncSparseConv:
    def _layer(self, c_in=2, c_out=3, k=3, seed=1):
        rng = np.random.default_rng(seed)
        return AsyncSparseConv2d(
            rng.standard_normal((c_out, c_in, k, k)), rng.standard_normal(c_out)
        )

    def test_matches_dense_at_active_sites(self):
        layer = self._layer()
        x = random_sparse_input(2, 10, 12, 0.2)
        layer.set_input(x)
        np.testing.assert_allclose(layer.output, layer.dense_reference(), atol=1e-12)

    def test_inactive_sites_zero(self):
        layer = self._layer()
        x = random_sparse_input(2, 8, 8, 0.15, seed=3)
        layer.set_input(x)
        inactive = ~layer.active_mask
        assert np.all(layer.output[:, inactive] == 0.0)

    def test_savings_grow_with_sparsity(self):
        layer = self._layer()
        s_dense = layer.set_input(random_sparse_input(2, 16, 16, 0.9, seed=1))
        layer2 = self._layer()
        s_sparse = layer2.set_input(random_sparse_input(2, 16, 16, 0.05, seed=1))
        assert s_sparse.savings > s_dense.savings
        assert s_sparse.savings > 0.8

    def test_incremental_update_matches_recompute(self):
        layer = self._layer()
        x = random_sparse_input(2, 9, 9, 0.2, seed=5)
        layer.set_input(x)
        rng = np.random.default_rng(7)
        for _ in range(10):
            cx, cy = int(rng.integers(0, 9)), int(rng.integers(0, 9))
            val = rng.standard_normal(2) * (rng.random() > 0.3)
            layer.update_pixel(cx, cy, val)
            np.testing.assert_allclose(
                layer.output, layer.dense_reference(), atol=1e-12
            )

    def test_update_cost_local(self):
        layer = self._layer()
        x = random_sparse_input(2, 32, 32, 0.5, seed=2)
        full = layer.set_input(x)
        inc = layer.update_pixel(16, 16, np.array([1.0, -1.0]))
        assert inc.macs < full.macs / 10
        # At most k*k sites recomputed.
        assert inc.active_sites <= 9

    def test_event_deactivation(self):
        layer = self._layer()
        x = np.zeros((2, 5, 5))
        x[:, 2, 2] = 1.0
        layer.set_input(x)
        assert layer.active_mask[2, 2]
        layer.update_pixel(2, 2, np.zeros(2))
        assert not layer.active_mask[2, 2]
        assert np.all(layer.output == 0.0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AsyncSparseConv2d(rng.standard_normal((2, 2, 2, 2)))  # even kernel
        with pytest.raises(ValueError):
            AsyncSparseConv2d(rng.standard_normal((2, 2, 3)))
        layer = self._layer()
        with pytest.raises(RuntimeError):
            _ = layer.output
        with pytest.raises(ValueError):
            layer.set_input(np.zeros((5, 4, 4)))
        layer.set_input(np.zeros((2, 4, 4)))
        with pytest.raises(ValueError):
            layer.update_pixel(10, 0, np.zeros(2))
        with pytest.raises(ValueError):
            layer.update_pixel(0, 0, np.zeros(3))

    def test_dense_macs_formula(self):
        assert dense_conv_macs(2, 3, 3, 4, 5) == 2 * 3 * 9 * 20


class TestPruning:
    def _model(self, seed=0):
        rng = np.random.default_rng(seed)
        return nn.Sequential(
            nn.Conv2d(1, 4, 3, rng=rng), nn.ReLU(), nn.Flatten(),
            nn.Linear(4 * 36, 3, rng=rng),
        )

    def test_global_prune_fraction(self):
        model = self._model()
        mask = magnitude_prune(model, 0.5)
        assert 0.45 < weight_sparsity(model) < 0.55
        assert 0.45 < mask.sparsity() < 0.55

    def test_per_layer_prune(self):
        model = self._model()
        magnitude_prune(model, 0.7, per_layer=True)
        for module in model.modules():
            if isinstance(module, (nn.Linear, nn.Conv2d)):
                zeros = np.count_nonzero(module.weight.data == 0)
                assert zeros / module.weight.size >= 0.65

    def test_mask_reapplies_after_update(self):
        model = self._model()
        mask = magnitude_prune(model, 0.5)
        for p in model.parameters():
            p.data += 1.0  # simulate an optimizer step reviving weights
        mask.apply(model)
        assert weight_sparsity(model) > 0.4

    def test_prunes_smallest_weights(self):
        model = nn.Sequential(nn.Linear(4, 4))
        w = model[0].weight
        w.data[...] = np.arange(16, dtype=np.float64).reshape(4, 4) - 8
        magnitude_prune(model, 0.25)
        # The 4 smallest-magnitude entries (-1, 0, 1 and one of +-2) are zeroed.
        assert np.count_nonzero(w.data == 0) == 4

    def test_structured_prune(self):
        conv = nn.Conv2d(2, 8, 3, rng=np.random.default_rng(0))
        keep = structured_prune_channels(conv, 0.5)
        assert keep.sum() == 4
        dropped = ~keep
        assert np.all(conv.weight.data[dropped] == 0)
        assert np.all(conv.bias.data[dropped] == 0)

    def test_structured_prune_tied_norms_deterministic(self):
        # Identical channel norms everywhere: only a stable sort makes
        # the dropped set well-defined (the lowest-index channels).
        # The unstable default introsort picks an arbitrary, partition-
        # order-dependent subset instead.
        keeps = []
        for seed in (0, 1):
            conv = nn.Conv2d(2, 8, 3, rng=np.random.default_rng(seed))
            conv.weight.data[...] = 0.5
            keep = structured_prune_channels(conv, 0.5)
            np.testing.assert_array_equal(np.flatnonzero(~keep), [0, 1, 2, 3])
            keeps.append(keep)
        np.testing.assert_array_equal(keeps[0], keeps[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            magnitude_prune(self._model(), 1.0)
        with pytest.raises(ValueError):
            magnitude_prune(nn.Sequential(nn.ReLU()), 0.5)
        with pytest.raises(ValueError):
            structured_prune_channels(nn.Conv2d(1, 2, 3), -0.1)


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal(1000)
        for bits in (2, 4, 8):
            q, scale = quantize_symmetric(w, bits)
            err = np.abs(dequantize(q, scale) - w).max()
            assert err <= scale / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal(1000)
        errs = []
        for bits in (2, 4, 8):
            q, scale = quantize_symmetric(w, bits)
            errs.append(np.abs(dequantize(q, scale) - w).max())
        assert errs[0] > errs[1] > errs[2]

    def test_integer_range(self):
        q, _ = quantize_symmetric(np.linspace(-5, 5, 100), 4)
        assert q.min() >= -7 and q.max() <= 7
        assert np.allclose(q, np.round(q))

    def test_zeros_created(self):
        # Aggressive quantization maps small weights to exactly zero.
        rng = np.random.default_rng(0)
        w = rng.standard_normal(1000) * np.concatenate([np.ones(500) * 0.01, np.ones(500)])
        q, _ = quantize_symmetric(w, 3)
        assert np.count_nonzero(q == 0) > 300

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(4), 1)

    def test_ste_backward_identity(self):
        w = Tensor(np.array([0.11, -0.52, 0.93]), requires_grad=True)
        ste_quantize(w, 4).sum().backward()
        np.testing.assert_allclose(w.grad, np.ones(3))

    def test_quant_linear_trains(self):
        rng = np.random.default_rng(0)
        x = rng.random((32, 4))
        y = (x[:, 0] > x[:, 1]).astype(np.int64)
        model = nn.Sequential(QuantLinear(4, 16, num_bits=4, rng=rng), nn.ReLU(),
                              QuantLinear(16, 2, num_bits=4, rng=rng))
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(150):
            opt.zero_grad()
            nn.cross_entropy(model(Tensor(x)), y).backward()
            opt.step()
        assert nn.accuracy(model(Tensor(x)), y) >= 0.9

    def test_quantize_model_weights_inplace(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=np.random.default_rng(0)))
        report = quantize_model_weights(model, 4)
        w = model[0].weight.data
        q, scale = quantize_symmetric(w, 4)
        np.testing.assert_allclose(w, dequantize(q, scale), atol=1e-12)
        assert report.num_bits == 4
        assert 0.0 <= report.weight_zero_fraction <= 1.0


class TestConvGRU:
    def test_cell_shapes(self):
        cell = ConvGRUCell(2, 4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((3, 2, 8, 8)))
        h = cell(x)
        assert h.shape == (3, 4, 8, 8)
        h2 = cell(x, h)
        assert h2.shape == (3, 4, 8, 8)

    def test_cell_validation(self):
        with pytest.raises(ValueError):
            ConvGRUCell(2, 4, kernel=2)
        cell = ConvGRUCell(2, 4)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros((2, 8, 8))))

    def test_state_carries_information(self):
        cell = ConvGRUCell(1, 2, rng=np.random.default_rng(0))
        burst = Tensor(np.ones((1, 1, 4, 4)))
        silence = Tensor(np.zeros((1, 1, 4, 4)))
        h = cell(burst)
        h_after = cell(silence, h)
        h_cold = cell(silence)
        assert not np.allclose(h_after.data, h_cold.data)

    def test_classifier_learns_temporal_order(self):
        # Class 0: left half flashes before right half; class 1 reversed.
        rng = np.random.default_rng(0)
        t, n, hw = 4, 24, 8

        def batch(num):
            xs = np.zeros((t, num, 1, hw, hw))
            ys = rng.integers(0, 2, num)
            for i, y in enumerate(ys):
                first = slice(0, hw // 2) if y == 0 else slice(hw // 2, hw)
                second = slice(hw // 2, hw) if y == 0 else slice(0, hw // 2)
                xs[:2, i, 0, :, first] = 1.0
                xs[2:, i, 0, :, second] = 1.0
            return xs, ys

        model = RecurrentFrameClassifier(1, 4, 2, (hw, hw), rng=np.random.default_rng(1))
        opt = nn.Adam(model.parameters(), lr=0.01)
        for _ in range(30):
            xs, ys = batch(n)
            opt.zero_grad()
            nn.cross_entropy(model(Tensor(xs)), ys).backward()
            opt.step()
        xs, ys = batch(32)
        assert nn.accuracy(model(Tensor(xs)), ys) >= 0.9

    def test_classifier_validation(self):
        model = RecurrentFrameClassifier(1, 2, 2, (4, 4))
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((2, 1, 4, 4))))
