"""Tests for ANN->SNN conversion, STDP, e-prop and counted simulation."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor
from repro.snn import (
    ConvertedSNN,
    EPropNetwork,
    EPropParams,
    LIFParams,
    STDPNetwork,
    STDPParams,
    bptt_memory_words,
    clock_driven_sim,
    conversion_report,
    convert_relu_mlp,
    eprop_memory_words,
    event_driven_sim,
    rate_encode,
)
from repro.snn.conversion import _relu_mlp_layers


def train_toy_ann(seed=0, steps=200):
    """Train a tiny ReLU MLP on a linearly separable 2-class problem."""
    rng = np.random.default_rng(seed)
    x = rng.random((64, 4))
    y = (x[:, 0] + x[:, 1] > x[:, 2] + x[:, 3]).astype(np.int64)
    model = nn.Sequential(
        nn.Linear(4, 12, rng=rng), nn.ReLU(), nn.Linear(12, 2, rng=rng)
    )
    opt = nn.Adam(model.parameters(), lr=0.02)
    for _ in range(steps):
        opt.zero_grad()
        nn.cross_entropy(model(Tensor(x)), y).backward()
        opt.step()
    return model, x, y


class TestConversion:
    def test_layer_extraction(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 2))
        assert len(_relu_mlp_layers(model)) == 2

    def test_layer_extraction_rejects_other_modules(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.Tanh())
        with pytest.raises(ValueError):
            _relu_mlp_layers(model)

    def test_converted_snn_validation(self):
        with pytest.raises(ValueError):
            ConvertedSNN([])
        with pytest.raises(ValueError):
            ConvertedSNN([(np.zeros((2, 2)), np.zeros(2))], threshold=0)

    def test_agreement_improves_with_timesteps(self):
        model, x, y = train_toy_ann()
        snn = convert_relu_mlp(model, x)
        rng = np.random.default_rng(0)
        rep_short = conversion_report(model, snn, x, num_steps=5, rng=rng)
        rng = np.random.default_rng(0)
        rep_long = conversion_report(model, snn, x, num_steps=200, rng=rng)
        assert rep_long.agreement >= rep_short.agreement
        assert rep_long.agreement >= 0.85

    def test_snn_accuracy_close_to_ann(self):
        model, x, y = train_toy_ann()
        ann_acc = nn.accuracy(model(Tensor(x)), y)
        snn = convert_relu_mlp(model, x)
        scores, _ = snn.run(x, num_steps=150, rng=np.random.default_rng(1))
        snn_acc = float(np.mean(scores.argmax(axis=1) == y))
        assert snn_acc >= ann_acc - 0.1

    def test_unevenness_shrinks_with_timesteps(self):
        model, x, _ = train_toy_ann()
        snn = convert_relu_mlp(model, x)
        rep5 = conversion_report(model, snn, x, 5, np.random.default_rng(0))
        rep100 = conversion_report(model, snn, x, 100, np.random.default_rng(0))
        assert rep100.mean_unevenness < rep5.mean_unevenness

    def test_spike_cost_scales_with_timesteps(self):
        model, x, _ = train_toy_ann()
        snn = convert_relu_mlp(model, x)
        _, s1 = snn.run(x, 10, np.random.default_rng(0))
        _, s2 = snn.run(x, 100, np.random.default_rng(0))
        assert s2["spikes_per_sample"] > s1["spikes_per_sample"]

    def test_run_validation(self):
        model, x, _ = train_toy_ann()
        snn = convert_relu_mlp(model, x)
        with pytest.raises(ValueError):
            snn.run(x, 0, np.random.default_rng(0))


class TestSTDP:
    def _patterns(self, rng, n_per_class=6, t=40, f=16):
        """Two orthogonal spatial patterns as Poisson spike trains."""
        trains, labels = [], []
        for cls in range(2):
            rates = np.zeros(f)
            if cls == 0:
                rates[: f // 2] = 0.6
            else:
                rates[f // 2 :] = 0.6
            rates += 0.02
            for _ in range(n_per_class):
                trains.append((rng.random((t, f)) < rates).astype(np.float64))
                labels.append(cls)
        return trains, np.array(labels)

    def test_learns_two_patterns(self):
        rng = np.random.default_rng(0)
        trains, labels = self._patterns(rng)
        net = STDPNetwork(16, 10, rng=np.random.default_rng(1))
        net.fit(trains, labels, num_classes=2, epochs=3)
        test_trains, test_labels = self._patterns(np.random.default_rng(99))
        assert net.accuracy(test_trains, test_labels) >= 0.75

    def test_weights_stay_bounded(self):
        rng = np.random.default_rng(0)
        trains, labels = self._patterns(rng, n_per_class=3)
        p = STDPParams()
        net = STDPNetwork(16, 8, p)
        net.fit(trains, labels, num_classes=2)
        assert net.weights.min() >= 0.0
        assert net.weights.max() <= p.w_max

    def test_present_validation(self):
        net = STDPNetwork(8, 4)
        with pytest.raises(ValueError):
            net.present(np.zeros((10, 5)))

    def test_fit_validation(self):
        net = STDPNetwork(8, 4)
        with pytest.raises(ValueError):
            net.fit([np.zeros((5, 8))], np.array([0, 1]), 2)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            STDPParams(lr_pre=-1)
        with pytest.raises(ValueError):
            STDPParams(trace_decay=1.0)
        with pytest.raises(ValueError):
            STDPNetwork(0, 4)


class TestEProp:
    def _task(self, rng, n=20, t=25, f=8):
        """Channel-group task: class = which half of the channels is active."""
        trains, labels = [], []
        for _ in range(n):
            cls = int(rng.integers(0, 2))
            rates = np.full(f, 0.05)
            if cls == 0:
                rates[: f // 2] = 0.5
            else:
                rates[f // 2 :] = 0.5
            trains.append((rng.random((t, f)) < rates).astype(np.float64))
            labels.append(cls)
        return trains, np.array(labels)

    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        trains, labels = self._task(rng, n=30)
        net = EPropNetwork(8, 20, 2, EPropParams(lr=1e-2), rng=np.random.default_rng(1))
        first_losses, last_losses = [], []
        for epoch in range(8):
            losses = [net.train_sample(tr, lb) for tr, lb in zip(trains, labels)]
            if epoch == 0:
                first_losses = losses
            last_losses = losses
        assert np.mean(last_losses) < np.mean(first_losses)

    def test_learns_task(self):
        rng = np.random.default_rng(0)
        trains, labels = self._task(rng, n=40)
        net = EPropNetwork(8, 24, 2, EPropParams(lr=1e-2), rng=np.random.default_rng(1))
        for _ in range(10):
            for tr, lb in zip(trains, labels):
                net.train_sample(tr, lb)
        test_trains, test_labels = self._task(np.random.default_rng(7), n=30)
        assert net.accuracy(test_trains, test_labels) >= 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            EPropNetwork(0, 4, 2)
        with pytest.raises(ValueError):
            EPropParams(lr=0)
        net = EPropNetwork(4, 4, 2)
        with pytest.raises(ValueError):
            net.train_sample(np.zeros((5, 3)), 0)

    def test_memory_argument(self):
        # Section III-A: BPTT memory grows with T, e-prop memory does not.
        m_bptt_short = bptt_memory_words(100, 200, num_steps=10)
        m_bptt_long = bptt_memory_words(100, 200, num_steps=1000)
        m_eprop = eprop_memory_words(100, 200)
        assert m_bptt_long == 100 * m_bptt_short
        assert m_eprop < m_bptt_long
        with pytest.raises(ValueError):
            bptt_memory_words(0, 1, 1)
        with pytest.raises(ValueError):
            eprop_memory_words(1, 0)


class TestCountedSimulation:
    def _setup(self, t=50, f=20, n=30, density=0.2, seed=0):
        rng = np.random.default_rng(seed)
        weights = rng.normal(0, 0.4, (n, f))
        spikes = (rng.random((t, f)) < density).astype(np.float64)
        return weights, spikes

    def test_rasters_identical(self):
        weights, spikes = self._setup()
        p = LIFParams(tau_us=5000.0, threshold=0.8)
        r_clock = clock_driven_sim(weights, spikes, p)
        r_event = event_driven_sim(weights, spikes, p)
        np.testing.assert_array_equal(r_clock.spike_raster, r_event.spike_raster)

    def test_rasters_identical_sparse_input(self):
        weights, spikes = self._setup(density=0.02, seed=3)
        r_clock = clock_driven_sim(weights, spikes)
        r_event = event_driven_sim(weights, spikes)
        np.testing.assert_array_equal(r_clock.spike_raster, r_event.spike_raster)

    def test_clock_cost_independent_of_activity(self):
        w, _ = self._setup()
        _, sparse = self._setup(density=0.01, seed=1)
        _, dense = self._setup(density=0.9, seed=2)
        c_sparse = clock_driven_sim(w, sparse).counters
        c_dense = clock_driven_sim(w, dense).counters
        # State accesses are the clocked sweep: identical.
        assert c_sparse.neuron_state_reads == c_dense.neuron_state_reads
        assert c_sparse.neuron_state_writes == c_dense.neuron_state_writes

    def test_event_cost_scales_with_activity(self):
        w, _ = self._setup()
        _, sparse = self._setup(density=0.01, seed=1)
        _, dense = self._setup(density=0.9, seed=2)
        c_sparse = event_driven_sim(w, sparse).counters
        c_dense = event_driven_sim(w, dense).counters
        assert c_sparse.memory_accesses < c_dense.memory_accesses

    def test_event_driven_wins_at_low_activity(self):
        w, _ = self._setup()
        _, sparse = self._setup(density=0.005, seed=5)
        c_clock = clock_driven_sim(w, sparse).counters
        c_event = event_driven_sim(w, sparse).counters
        assert c_event.memory_accesses < c_clock.memory_accesses

    def test_clock_wins_at_high_activity(self):
        # At every-step activity the event-driven scheme pays double state
        # words (timestamp) plus exponentiations: clocked is cheaper.
        w, _ = self._setup()
        _, dense = self._setup(density=0.99, seed=6)
        c_clock = clock_driven_sim(w, dense).counters
        c_event = event_driven_sim(w, dense).counters
        assert c_clock.memory_accesses < c_event.memory_accesses
        assert c_event.alu_exp > 0
        assert c_clock.alu_exp == 0

    def test_validation(self):
        w, spikes = self._setup()
        with pytest.raises(ValueError):
            clock_driven_sim(w[0], spikes)
        with pytest.raises(ValueError):
            event_driven_sim(w, spikes[:, :3])


class TestNetworkSim:
    def _stack(self, seed=0):
        rng = np.random.default_rng(seed)
        return [
            rng.normal(0, 0.5, (32, 20)),
            rng.normal(0, 0.5, (16, 32)),
            rng.normal(0, 0.5, (4, 16)),
        ]

    def test_disciplines_agree_at_network_level(self):
        from repro.snn import network_sim

        rng = np.random.default_rng(1)
        spikes = (rng.random((80, 20)) < 0.15).astype(np.float64)
        stack = self._stack()
        r_clock, c_clock = network_sim(stack, spikes, update="clock")
        r_event, c_event = network_sim(stack, spikes, update="event")
        np.testing.assert_array_equal(r_clock.spike_raster, r_event.spike_raster)
        assert c_clock.memory_accesses != c_event.memory_accesses

    def test_counters_aggregate_layers(self):
        from repro.snn import clock_driven_sim, network_sim

        rng = np.random.default_rng(2)
        spikes = (rng.random((40, 20)) < 0.2).astype(np.float64)
        stack = self._stack()
        _, total = network_sim(stack, spikes, update="clock")
        # Manually chained single layers must sum to the same counters.
        acc = 0
        x = spikes
        for w in stack:
            r = clock_driven_sim(w, x)
            acc += r.counters.memory_accesses
            x = np.clip(r.spike_raster, 0, 1)
        assert total.memory_accesses == acc

    def test_validation(self):
        from repro.snn import network_sim

        with pytest.raises(ValueError):
            network_sim([], np.zeros((5, 4)))
        with pytest.raises(ValueError):
            network_sim(self._stack(), np.zeros((5, 20)), update="bogus")

    @pytest.mark.parametrize("reset", ["subtract", "zero"])
    def test_equivalence_property_over_random_params(self, reset):
        """Hypothesis-style sweep: raster equality must hold for any
        neuron parameterisation and input density."""
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.snn import ResetMode, clock_driven_sim, event_driven_sim

        @given(
            st.floats(500.0, 1e6),
            st.floats(0.1, 3.0),
            st.floats(0.0, 0.9),
            st.integers(0, 100),
        )
        @settings(max_examples=25, deadline=None)
        def check(tau, threshold, density, seed):
            rng = np.random.default_rng(seed)
            weights = rng.normal(0, 0.6, (12, 10))
            spikes = (rng.random((40, 10)) < density).astype(np.float64)
            p = LIFParams(tau_us=tau, threshold=threshold, reset=ResetMode(reset))
            a = clock_driven_sim(weights, spikes, p)
            b = event_driven_sim(weights, spikes, p)
            np.testing.assert_array_equal(a.spike_raster, b.spike_raster)

        check()
