"""Tests for the rating scale, axes and metric containers."""

import math

import pytest

from repro.core import AXES, PipelineMetrics, Rating, rate_values
from repro.core.metrics import LITERATURE_SCORES
from repro.core.ratings import rating_rank


class TestRatings:
    def test_clear_ordering(self):
        out = rate_values({"a": 100.0, "b": 10.0, "c": 1.0}, higher_is_better=True)
        assert out["a"] is Rating.BEST
        assert out["c"] is Rating.POOR

    def test_lower_is_better(self):
        out = rate_values({"a": 1.0, "b": 1000.0}, higher_is_better=False)
        assert out["a"] is Rating.BEST
        assert out["b"] is Rating.POOR

    def test_ties_share_best(self):
        out = rate_values({"a": 10.0, "b": 9.0, "c": 0.01}, True, tie_tolerance=1.5)
        assert out["a"] is Rating.BEST
        assert out["b"] is Rating.BEST
        assert out["c"] is Rating.POOR

    def test_middle_band(self):
        out = rate_values({"a": 10.0, "b": 5.0, "c": 0.1}, True, tie_tolerance=1.5)
        assert out["b"] is Rating.GOOD

    def test_nan_maps_to_unknown(self):
        out = rate_values({"a": 1.0, "b": float("nan")}, True)
        assert out["b"] is Rating.UNKNOWN
        assert out["a"] is Rating.BEST

    def test_all_nan(self):
        out = rate_values({"a": float("nan")}, True)
        assert out["a"] is Rating.UNKNOWN

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_values({}, True)
        with pytest.raises(ValueError):
            rate_values({"a": 1.0}, True, tie_tolerance=0.5)

    def test_rating_rank(self):
        assert rating_rank(Rating.BEST) > rating_rank(Rating.GOOD) > rating_rank(Rating.POOR)
        with pytest.raises(ValueError):
            rating_rank(Rating.UNKNOWN)

    def test_zero_values_handled(self):
        out = rate_values({"a": 0.0, "b": 1.0}, True)
        assert out["b"] is Rating.BEST
        assert out["a"] is Rating.POOR


class TestAxes:
    def test_twelve_rows(self):
        assert len(AXES) == 12

    def test_keys_unique_and_on_metrics(self):
        keys = [a.key for a in AXES]
        assert len(set(keys)) == 12
        m = PipelineMetrics(paradigm="SNN")
        for a in AXES:
            assert hasattr(m, a.key)

    def test_down_arrows_lower_better(self):
        for axis in AXES:
            if "(down)" in axis.label:
                assert not axis.higher_is_better

    def test_paper_column_counts(self):
        for axis in AXES:
            assert len(axis.paper_ratings) == 3

    def test_unmeasured_axes(self):
        unmeasured = {a.key for a in AXES if not a.measured}
        assert unmeasured == {"hw_maturity", "configurability"}
        assert set(LITERATURE_SCORES) == unmeasured


class TestPipelineMetrics:
    def test_literature_constants_injected(self):
        snn = PipelineMetrics(paradigm="SNN")
        cnn = PipelineMetrics(paradigm="CNN")
        gnn = PipelineMetrics(paradigm="GNN")
        assert cnn.hw_maturity > snn.hw_maturity > gnn.hw_maturity
        assert cnn.configurability > snn.configurability

    def test_defaults_nan(self):
        m = PipelineMetrics(paradigm="CNN")
        assert math.isnan(m.accuracy)
        assert math.isnan(m.latency)

    def test_value_accessor(self):
        m = PipelineMetrics(paradigm="SNN")
        m.accuracy = 0.9
        axis = next(a for a in AXES if a.key == "accuracy")
        assert m.value(axis) == 0.9

    def test_invalid_paradigm(self):
        with pytest.raises(ValueError):
            PipelineMetrics(paradigm="XYZ")
