"""Tests for model checkpointing, dataset caching and SpikingConvNet."""

import numpy as np
import pytest

import repro.nn as nn
from repro.datasets import (
    cache_dataset,
    load_cached_dataset,
    make_shapes_dataset,
)
from repro.events import Resolution
from repro.nn import Tensor, load_state, save_state
from repro.snn import SpikingConvNet, events_to_spike_tensor


class TestModelCheckpointing:
    def _model(self, seed=0):
        rng = np.random.default_rng(seed)
        return nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 16, 3, rng=rng),
        )

    def test_roundtrip_restores_outputs(self, tmp_path):
        model = self._model(seed=1)
        x = Tensor(np.random.default_rng(2).standard_normal((2, 1, 4, 4)))
        before = model(x).data.copy()
        path = tmp_path / "ckpt.npz"
        save_state(model, path)

        fresh = self._model(seed=9)  # different init
        assert not np.allclose(fresh(x).data, before)
        load_state(fresh, path)
        np.testing.assert_allclose(fresh(x).data, before)

    def test_architecture_mismatch_rejected(self, tmp_path):
        model = self._model()
        path = tmp_path / "ckpt.npz"
        save_state(model, path)
        other = nn.Sequential(nn.Linear(3, 3))
        with pytest.raises((KeyError, ValueError)):
            load_state(other, path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="checkpoint"):
            load_state(self._model(), path)

    def test_spiking_model_checkpoint(self, tmp_path):
        rng = np.random.default_rng(0)
        net = SpikingConvNet(2, 3, (8, 8), channel_widths=(4,), rng=rng)
        x = Tensor((np.random.default_rng(1).random((4, 2, 2, 8, 8)) < 0.3).astype(float))
        before = net(x).data.copy()
        path = tmp_path / "snn.npz"
        save_state(net, path)
        fresh = SpikingConvNet(2, 3, (8, 8), channel_widths=(4,), rng=np.random.default_rng(5))
        load_state(fresh, path)
        np.testing.assert_allclose(fresh(x).data, before)


class TestDatasetCaching:
    def test_roundtrip(self, tmp_path):
        ds = make_shapes_dataset(
            num_per_class=2, resolution=Resolution(16, 16), duration_us=20_000, seed=3
        )
        cache_dataset(ds, tmp_path / "cache")
        loaded = load_cached_dataset(tmp_path / "cache")
        assert loaded.name == ds.name
        assert loaded.class_names == ds.class_names
        assert loaded.labels().tolist() == ds.labels().tolist()
        for a, b in zip(ds, loaded):
            assert a.stream == b.stream

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_cached_dataset(tmp_path / "nowhere")


class TestSpikingConvNet:
    def test_forward_shapes(self):
        net = SpikingConvNet(2, 3, (16, 16), channel_widths=(4, 8))
        x = Tensor(np.zeros((5, 2, 2, 16, 16)))
        assert net(x).shape == (2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikingConvNet(2, 3, (16, 16), channel_widths=())
        with pytest.raises(ValueError):
            SpikingConvNet(2, 3, (10, 10), channel_widths=(4, 8))  # not /4
        net = SpikingConvNet(2, 3, (8, 8), channel_widths=(4,))
        with pytest.raises(ValueError):
            net(Tensor(np.zeros((2, 2, 8, 8))))

    def test_spike_activity_measured(self):
        net = SpikingConvNet(2, 2, (8, 8), channel_widths=(4,))
        rng = np.random.default_rng(0)
        x = Tensor((rng.random((4, 2, 2, 8, 8)) < 0.4).astype(float))
        acts = net.spike_activity(x)
        assert len(acts) == 1
        assert 0.0 <= acts[0] <= 1.0

    def test_trains_on_shapes_subset(self):
        ds = make_shapes_dataset(
            num_per_class=8, resolution=Resolution(16, 16), duration_us=40_000, seed=4
        )
        keep = [i for i, s in enumerate(ds) if s.label in (0, 2)]
        ds = ds.subset(keep)
        x = np.stack(
            [events_to_spike_tensor(s.stream, num_steps=8, pool=1) for s in ds], axis=1
        )
        y = (ds.labels() == 2).astype(np.int64)
        net = SpikingConvNet(2, 2, (16, 16), channel_widths=(6,), rng=np.random.default_rng(1))
        opt = nn.Adam(net.parameters(), lr=5e-3)
        for _ in range(25):
            opt.zero_grad()
            nn.cross_entropy(net(Tensor(x)), y).backward()
            opt.step()
        assert nn.accuracy(net(Tensor(x)).data, y) >= 0.85
