"""Unit tests for the multi-tenant serving layer's building blocks.

Covers the tenancy/SLO table, the scorecard-as-policy router, the
weighted-fair-share admission controller with its seeded retry hints,
the chaos schedule machinery, and the fleet's exact accounting — the
pieces :mod:`tests.test_serving_isolation` then exercises end to end.
"""

import json

import numpy as np
import pytest

from repro.reliability import ExponentialBackoff
from repro.serving import (
    DEFAULT_SCORECARD,
    SLO_CLASSES,
    AdmissionController,
    AdmissionPolicy,
    ChaosEvent,
    ChaosSchedule,
    ParadigmProfile,
    PolicyRouter,
    ServingFleet,
    SLOClass,
    TenantSpec,
    fallback_chain,
    make_tenant_mix,
)


# ----------------------------------------------------------------------
# Tenancy
# ----------------------------------------------------------------------
class TestTenancy:
    def test_mix_is_deterministic_and_rotates_classes(self):
        a = make_tenant_mix(9, seed=3)
        b = make_tenant_mix(9, seed=3)
        assert a == b
        assert [t.slo_class for t in a[:3]] == ["gold", "silver", "bronze"]
        assert len({t.tenant_id for t in a}) == 9
        assert all(60 <= t.events_per_window <= 140 for t in a)

    def test_mix_seed_changes_workloads_not_structure(self):
        a = make_tenant_mix(6, seed=0)
        b = make_tenant_mix(6, seed=1)
        assert [t.slo_class for t in a] == [t.slo_class for t in b]
        assert any(
            x.events_per_window != y.events_per_window for x, y in zip(a, b)
        )

    def test_slo_class_validation(self):
        with pytest.raises(ValueError):
            SLOClass("bad", latency_slo_us=0.0)
        with pytest.raises(ValueError):
            SLOClass("bad", latency_slo_us=1e4, weight=0.0)

    def test_weight_resolution_prefers_spec_override(self):
        slo = SLO_CLASSES["gold"]
        assert TenantSpec("a", "gold").resolved_weight(slo) == slo.weight
        assert TenantSpec("a", "gold", weight=7.5).resolved_weight(slo) == 7.5


# ----------------------------------------------------------------------
# Router: the Table-I scorecard as a live policy
# ----------------------------------------------------------------------
class TestRouter:
    def test_class_calibration(self):
        """Gold chases latency+accuracy, silver accuracy, bronze energy."""
        router = PolicyRouter()
        expected = {"gold": "GNN", "silver": "CNN", "bronze": "SNN"}
        for cls, paradigm in expected.items():
            spec = TenantSpec(f"t-{cls}", cls, events_per_window=100)
            decision = router.route(spec, SLO_CLASSES[cls])
            assert decision.primary == paradigm, (cls, decision.reasons)
            assert not decision.degraded

    def test_fallbacks_ordered_by_energy_efficiency(self):
        assert fallback_chain(DEFAULT_SCORECARD, "GNN") == ("SNN", "CNN")
        assert fallback_chain(DEFAULT_SCORECARD, "SNN") == ("GNN", "CNN")

    def test_impossible_floor_degrades_to_cheapest_latency(self):
        slo = SLOClass("impossible", latency_slo_us=5e4, accuracy_floor=0.99)
        decision = PolicyRouter().route(TenantSpec("t", "gold"), slo)
        assert decision.degraded
        best_latency = min(
            DEFAULT_SCORECARD.values(), key=lambda p: p.service_us(100)
        )
        assert decision.primary == best_latency.paradigm

    def test_profile_service_scaling(self):
        profile = ParadigmProfile("X", 0.9, 1e4, 100.0, 10.0)
        assert profile.service_us(10) == 200.0
        model = profile.service_model(2.0)
        assert model.base_us == 50.0 and model.per_event_us == 5.0


# ----------------------------------------------------------------------
# Admission: GPS shares + seeded retry hints
# ----------------------------------------------------------------------
class TestAdmission:
    def _controller(self, total_weight, **kw):
        return AdmissionController(AdmissionPolicy(**kw), total_weight)

    def test_share_is_pure_function_of_mix(self):
        """Shares depend on the full requested mix, not on refusals."""
        spec = TenantSpec("t", "silver")
        slo = SLO_CLASSES["silver"]
        a = self._controller(10.0).share_of(spec, slo)
        ctrl = self._controller(10.0)
        ctrl.refused.extend(["x", "y"])  # refusals must not move shares
        assert ctrl.share_of(spec, slo) == a

    def test_unsustainable_refusal(self):
        ctrl = self._controller(1000.0, capacity=1.0)  # tiny share
        spec = TenantSpec("t", "silver", events_per_window=140)
        result = ctrl.consider(
            spec, SLO_CLASSES["silver"], DEFAULT_SCORECARD["CNN"], 10_000
        )
        assert not result.admitted
        assert "unsustainable" in result.reason
        assert result.retry_after_s == result.retry_hints_s[0] > 0

    def test_slo_infeasible_refusal(self):
        slo = SLOClass("tight", latency_slo_us=200.0, weight=1.0)
        ctrl = self._controller(2.0, capacity=2.0)
        spec = TenantSpec("t", "tight", events_per_window=100)
        result = ctrl.consider(spec, slo, DEFAULT_SCORECARD["GNN"], 10_000)
        assert not result.admitted
        assert "SLO-infeasible" in result.reason

    def test_retry_hints_seeded_and_decorrelated(self):
        def refuse(seed):
            ctrl = self._controller(1000.0, capacity=1.0)
            spec = TenantSpec("t", "silver", seed=seed)
            return ctrl.consider(
                spec, SLO_CLASSES["silver"], DEFAULT_SCORECARD["CNN"], 10_000
            ).retry_hints_s

        assert refuse(1) == refuse(1)  # deterministic
        assert refuse(1) != refuse(2)  # decorrelated across tenants
        assert len(refuse(1)) == AdmissionPolicy().retry_hints

    def test_admission_in_mix_order_respects_cap(self):
        ctrl = self._controller(3.0, capacity=16.0, max_tenants=2)
        slo = SLO_CLASSES["silver"]
        profile = DEFAULT_SCORECARD["CNN"]
        verdicts = [
            ctrl.consider(TenantSpec(f"t{i}", "silver"), slo, profile, 10_000)
            for i in range(3)
        ]
        assert [v.admitted for v in verdicts] == [True, True, False]
        assert "cap" in verdicts[2].reason


class TestExponentialBackoff:
    def test_delay_is_pure_and_order_independent(self):
        backoff = ExponentialBackoff(base_s=0.5, factor=2.0, jitter=0.5, seed=7)
        forward = [backoff.delay(k) for k in (1, 2, 3, 4)]
        backward = [backoff.delay(k) for k in (4, 3, 2, 1)]
        assert forward == backward[::-1]
        assert backoff.delays(4) == forward

    def test_with_seed_changes_jitter_only(self):
        base = ExponentialBackoff(base_s=1.0, factor=2.0, jitter=0.5, seed=0)
        other = base.with_seed(1)
        assert base.delays(3) != other.delays(3)
        assert other.with_seed(0).delays(3) == base.delays(3)

    def test_cap_bounds_every_delay(self):
        backoff = ExponentialBackoff(base_s=1.0, factor=10.0, max_s=5.0, jitter=0.0)
        assert all(d <= 5.0 for d in backoff.delays(6))


# ----------------------------------------------------------------------
# Chaos schedules
# ----------------------------------------------------------------------
class TestChaosSchedule:
    def test_random_is_seed_deterministic(self):
        ids = [f"t{i}" for i in range(5)]
        a = ChaosSchedule.random(ids, 40, seed=3)
        b = ChaosSchedule.random(ids, 40, seed=3)
        assert a == b
        assert a != ChaosSchedule.random(ids, 40, seed=4)

    def test_random_rotates_the_taxonomy(self):
        schedule = ChaosSchedule.random(["a", "b"], 40, num_events=5, seed=0)
        assert [e.kind for e in schedule.events] == [
            "flood", "skew", "poison", "stall", "corrupt",
        ]

    def test_kind_windows_clips_to_run_length(self):
        schedule = ChaosSchedule(
            events=(ChaosEvent("a", "poison", 10, 30),), seed=0
        )
        assert schedule.kind_windows("a", 20) == {"poison": 10}
        assert schedule.kind_windows("b", 20) == {}

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent("a", "meteor", 0, 4)
        with pytest.raises(ValueError):
            ChaosEvent("a", "flood", 5, 5)


# ----------------------------------------------------------------------
# Fleet accounting
# ----------------------------------------------------------------------
class TestFleetAccounting:
    def _fleet(self, **kw):
        tenants = make_tenant_mix(6, seed=0)
        kw.setdefault("num_windows", 20)
        return ServingFleet(tenants, seed=0, **kw)

    def test_fault_free_isolated_run_reconciles(self):
        report = self._fleet().run()
        assert report.validate() == []
        agg = report.aggregate()
        assert agg["offered"] == agg["slo_met"] + agg["slo_missed"]
        assert agg["admitted"] + agg["refused"] == 6

    def test_shared_run_reconciles(self):
        report = self._fleet(isolation=False).run()
        assert report.validate() == []
        assert report.group_reports  # at least one paradigm group ran

    def test_refused_tenants_have_no_activity(self):
        # A tiny pool refuses the heavier classes outright.
        fleet = self._fleet(policy=AdmissionPolicy(capacity=0.25))
        report = fleet.run()
        assert report.refused_ids
        for tid in report.refused_ids:
            outcome = report.tenants[tid]
            assert outcome.ledger == {
                "offered": 0, "processed": 0, "expired": 0, "shed": 0,
                "failed": 0,
            }
            assert outcome.admission.retry_after_s > 0
        assert report.validate() == []

    def test_report_serialisation_is_placement_free(self):
        payload = json.dumps(self._fleet().run().to_dict())
        assert "n_shards" not in payload
        assert "backend" not in payload

    def test_snapshot_requires_a_run(self):
        with pytest.raises(RuntimeError):
            self._fleet().snapshot()

    def test_duplicate_tenant_ids_rejected(self):
        spec = TenantSpec("dup", "gold")
        with pytest.raises(ValueError):
            ServingFleet([spec, spec])

    def test_registry_counters_match_ledgers(self):
        fleet = self._fleet()
        report = fleet.run()
        reg = fleet.registry
        assert reg.counter_value(
            "serving_tenants_total", {"outcome": "admitted"}
        ) == len(report.admitted_ids)
        for tid, outcome in report.tenants.items():
            got = reg.counter_value(
                "serving_windows_total", {"tenant": tid, "outcome": "processed"}
            )
            assert got == outcome.ledger["processed"]


class TestTenantModelDeterminism:
    def test_same_seed_same_outputs(self):
        from repro.serving import TenantModel

        from repro.events import EventStream, Resolution

        rng = np.random.default_rng(0)
        t = np.cumsum(rng.integers(10, 50, 30))
        stream = EventStream.from_arrays(
            t,
            rng.integers(0, 32, 30),
            rng.integers(0, 32, 30),
            rng.choice([-1, 1], 30),
            Resolution(32, 32),
        )
        a = TenantModel("GNN", seed=5)
        b = TenantModel("GNN", seed=5)
        assert a(stream) == b(stream)
        assert TenantModel("SNN", seed=5)._x2.shape == a._x2.shape
        assert not np.array_equal(TenantModel("SNN", seed=5)._x2, a._x2)
