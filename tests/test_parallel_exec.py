"""Tests for shard planning, execution and merging (repro.parallel).

Covers the worker-count-independent shard plan, deterministic seed
derivation, the virtual clock, the metric/snapshot merge rules
(counters sum, gauges max, histograms bucket-checked), shard-count
reconciliation, and serial/process equivalence of the executor.
"""

import pytest

from repro.observability import Instrumentation, validate_snapshot
from repro.parallel import (
    Cell,
    DeterministicClock,
    ParallelConfig,
    Shard,
    derive_seed,
    merge_metrics,
    merge_snapshots,
    plan_shards,
    reconcile_shards,
    run_shards,
)

PARADIGMS = ("SNN", "CNN", "GNN")


class TestPlanShards:
    def test_cell_grouping_one_shard_per_cell(self):
        shards = plan_shards(PARADIGMS, (1, 2), group_by="cell")
        assert len(shards) == 6
        assert all(len(s.cells) == 1 for s in shards)
        assert [s.index for s in shards] == list(range(6))
        # Paradigm-major flattening with a running cell index.
        assert shards[0].cells[0] == Cell("SNN", 1, index=0)
        assert shards[3].cells[0] == Cell("CNN", 2, index=3)

    def test_paradigm_grouping_one_shard_per_row(self):
        shards = plan_shards(PARADIGMS, (0.0, 0.5), group_by="paradigm")
        assert len(shards) == 3
        assert [c.condition for c in shards[0].cells] == [0.0, 0.5]
        assert {s.cells[0].paradigm for s in shards} == set(PARADIGMS)

    def test_empty_conditions_yield_unconditioned_cells(self):
        shards = plan_shards(PARADIGMS, (), group_by="cell")
        assert len(shards) == 3
        assert all(s.cells[0].condition is None for s in shards)

    def test_rejects_unknown_grouping(self):
        with pytest.raises(ValueError, match="group_by"):
            plan_shards(PARADIGMS, (), group_by="recording")

    def test_plan_never_sees_worker_count(self):
        import inspect

        assert "n_workers" not in inspect.signature(plan_shards).parameters


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, 1, 2)
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)
        assert derive_seed(7) != derive_seed(8)

    def test_requires_a_path(self):
        with pytest.raises(ValueError):
            derive_seed()


class TestParallelConfig:
    def test_resolution(self):
        import os

        from repro.parallel.sharding import _fork_context

        assert ParallelConfig(n_workers=1).resolve() == "serial"
        # Auto prefers threads where process isolation cannot help
        # (single CPU) or cannot work (no fork), processes otherwise.
        expected = (
            "thread"
            if (os.cpu_count() or 1) <= 1 or _fork_context() is None
            else "process"
        )
        assert ParallelConfig(n_workers=4).resolve() == expected
        assert ParallelConfig(n_workers=4, backend="serial").resolve() == "serial"
        assert ParallelConfig(n_workers=1, backend="process").resolve() == "process"
        assert ParallelConfig(n_workers=4, backend="thread").resolve() == "thread"

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(n_workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(backend="threads")


class TestDeterministicClock:
    def test_fixed_step_ticks(self):
        clock = DeterministicClock()
        first, second, third = clock(), clock(), clock()
        assert second - first == third - second
        # Two fresh clocks produce identical sequences.
        a, b = DeterministicClock(), DeterministicClock()
        assert [a() for _ in range(5)] == [b() for _ in range(5)]


def _sample_registry(counter_value, gauge_value):
    obs = Instrumentation(clock=DeterministicClock())
    obs.registry.counter("widget_total", labels={"kind": "a"}).inc(counter_value)
    obs.registry.gauge("depth").set(gauge_value)
    obs.registry.histogram("size_units", buckets=(1.0, 10.0)).observe(3.0)
    return obs


class TestMerge:
    def test_counters_sum_and_gauges_max(self):
        m1 = _sample_registry(2, 5.0).registry.snapshot()
        m2 = _sample_registry(3, 4.0).registry.snapshot()
        merged = merge_metrics([m1, m2])
        counters = {s["name"]: s["value"] for s in merged["counters"]}
        gauges = {s["name"]: s["value"] for s in merged["gauges"]}
        assert counters["widget_total"] == 5
        assert gauges["depth"] == 5.0

    def test_histograms_merge_elementwise(self):
        m1 = _sample_registry(1, 1.0).registry.snapshot()
        m2 = _sample_registry(1, 1.0).registry.snapshot()
        merged = merge_metrics([m1, m2])
        hist = merged["histograms"][0]
        assert hist["count"] == 2
        assert sum(hist["counts"]) == 2

    def test_bucket_mismatch_is_an_error(self):
        obs = Instrumentation(clock=DeterministicClock())
        obs.registry.histogram("size_units", buckets=(1.0, 10.0)).observe(3.0)
        other = Instrumentation(clock=DeterministicClock())
        other.registry.histogram("size_units", buckets=(2.0, 20.0)).observe(3.0)
        with pytest.raises(ValueError, match="bucket"):
            merge_metrics([obs.registry.snapshot(), other.registry.snapshot()])

    def test_merged_snapshot_is_valid_and_ordered(self):
        snaps = [_sample_registry(1, 2.0).snapshot() for _ in range(3)]
        merged = merge_snapshots(snaps)
        assert validate_snapshot(merged) == []
        names = [s["name"] for s in merged["metrics"]["counters"]]
        assert names == sorted(names)

    def test_merge_is_deterministic_in_input_order(self):
        a = _sample_registry(1, 2.0).snapshot()
        b = _sample_registry(4, 1.0).snapshot()
        assert merge_snapshots([a, b])["metrics"] == merge_snapshots([a, b])["metrics"]


class TestReconcileShards:
    def _snapshot(self, shards, cells):
        obs = Instrumentation(clock=DeterministicClock())
        obs.registry.counter("parallel_shards_total").inc(shards)
        obs.registry.counter("parallel_cells_total").inc(cells)
        return obs.snapshot()

    def test_accepts_matching_counts(self):
        assert reconcile_shards(self._snapshot(3, 6), 3, 6) == []

    def test_flags_count_mismatches(self):
        assert reconcile_shards(self._snapshot(2, 6), 3, 6)
        assert reconcile_shards(self._snapshot(3, 5), 3, 6)


def _echo_worker(task):
    # Module-level so the process backend can pickle it by reference.
    return {"shard": task["shard"].index, "value": task["value"] * 2}


def _shared_worker(task, shared):
    return {"shard": task["shard"].index, "value": task["value"] + shared["offset"]}


def _boom_worker(task):
    raise RuntimeError("shard failed")


class TestRunShards:
    def _tasks(self):
        shards = plan_shards(PARADIGMS, (1, 2), group_by="cell")
        return [{"shard": s, "value": s.index} for s in shards]

    def test_all_backends_agree_in_plan_order(self):
        serial = run_shards(self._tasks(), _echo_worker, ParallelConfig(n_workers=1))
        auto = run_shards(self._tasks(), _echo_worker, ParallelConfig(n_workers=2))
        threads = run_shards(
            self._tasks(), _echo_worker, ParallelConfig(n_workers=2, backend="thread")
        )
        procs = run_shards(
            self._tasks(), _echo_worker, ParallelConfig(n_workers=2, backend="process")
        )
        assert serial == auto == threads == procs
        assert [r["shard"] for r in serial] == list(range(6))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_shared_context_reaches_every_worker(self, backend):
        results = run_shards(
            self._tasks(),
            _shared_worker,
            ParallelConfig(n_workers=2, backend=backend),
            shared={"offset": 100},
        )
        assert [r["value"] for r in results] == [100 + i for i in range(6)]

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_worker_errors_propagate(self, backend):
        with pytest.raises(RuntimeError, match="shard failed"):
            run_shards(
                self._tasks(), _boom_worker, ParallelConfig(n_workers=1, backend=backend)
            )

    def test_worker_errors_propagate_from_process_pool(self):
        with pytest.raises(RuntimeError, match="shard failed"):
            run_shards(
                self._tasks(),
                _boom_worker,
                ParallelConfig(n_workers=2, backend="process"),
            )
