"""Tests for the content-addressed representation cache (repro.parallel.cache).

Covers the cache-key contract (canonical JSON makes keys insensitive to
dict/config field ordering, the SHA key discriminates on content, kind
and config), the LRU memory tier, the optional disk tier, the
instrumentation counters, and the pipeline integration that memoizes
encoder outputs across repeated predictions.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import SNNConfig, SNNPipeline
from repro.datasets import make_shapes_dataset
from repro.events import Resolution
from repro.observability import Instrumentation
from repro.parallel import (
    CacheConfig,
    RepresentationCache,
    canonical_json,
    config_digest,
    content_key,
)


@pytest.fixture(scope="module")
def stream():
    ds = make_shapes_dataset(num_per_class=1, resolution=Resolution(16, 16), seed=0)
    return ds[0].stream


@pytest.fixture(scope="module")
def other_stream():
    ds = make_shapes_dataset(num_per_class=1, resolution=Resolution(16, 16), seed=7)
    return ds[1].stream


class TestCanonicalJson:
    def test_dict_key_order_is_irrelevant(self):
        a = {"alpha": 1, "beta": {"x": 2.0, "y": [1, 2]}}
        b = {"beta": {"y": [1, 2], "x": 2.0}, "alpha": 1}
        assert canonical_json(a) == canonical_json(b)
        assert config_digest(a) == config_digest(b)

    def test_equal_configs_built_differently_share_a_digest(self):
        # The order-insensitivity bugfix: two equal configs constructed
        # with different keyword orderings must address the same entry.
        a = SNNConfig(num_steps=6, hidden=8, epochs=2)
        b = SNNConfig(epochs=2, hidden=8, num_steps=6)
        assert a == b
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) == config_digest(dataclasses.asdict(a))

    def test_value_changes_change_the_digest(self):
        assert config_digest(SNNConfig(num_steps=6)) != config_digest(
            SNNConfig(num_steps=7)
        )

    def test_numpy_scalars_and_tuples_normalise(self):
        a = {"k": np.int64(3), "t": (1, 2)}
        b = {"t": [1, 2], "k": 3}
        assert canonical_json(a) == canonical_json(b)

    def test_unserialisable_values_are_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"fn": lambda: None})


class TestContentKey:
    def test_discriminates_on_stream_kind_and_config(self, stream, other_stream):
        base = content_key("snn_spike_tensor", stream, {"num_steps": 6})
        assert base == content_key("snn_spike_tensor", stream, {"num_steps": 6})
        assert base != content_key("snn_spike_tensor", other_stream, {"num_steps": 6})
        assert base != content_key("cnn_frame", stream, {"num_steps": 6})
        assert base != content_key("snn_spike_tensor", stream, {"num_steps": 7})

    def test_config_field_order_does_not_matter(self, stream):
        assert content_key("k", stream, {"a": 1, "b": 2}) == content_key(
            "k", stream, {"b": 2, "a": 1}
        )


class TestRepresentationCache:
    def test_miss_then_hit(self, stream):
        cache = RepresentationCache(max_entries=4)
        calls = []
        value = cache.get_or_compute("k", stream, {"a": 1}, lambda: calls.append(1) or 42)
        again = cache.get_or_compute("k", stream, {"a": 1}, lambda: calls.append(1) or 42)
        assert value == again == 42
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_differently_ordered_configs_hit_one_entry(self, stream):
        cache = RepresentationCache(max_entries=4)
        cache.get_or_compute("k", stream, {"a": 1, "b": 2}, lambda: "v")
        cache.get_or_compute("k", stream, {"b": 2, "a": 1}, lambda: "w")
        assert len(cache) == 1
        assert cache.stats()["hits"] == 1

    def test_lru_eviction(self, stream):
        cache = RepresentationCache(max_entries=2)
        for i in range(3):
            cache.get_or_compute("k", stream, {"i": i}, lambda i=i: i)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # The oldest entry (i=0) was evicted; recomputing it misses.
        cache.get_or_compute("k", stream, {"i": 0}, lambda: 0)
        assert cache.stats()["misses"] == 4

    def test_instrumentation_counters(self, stream):
        obs = Instrumentation()
        cache = RepresentationCache(max_entries=4, instrumentation=obs)
        cache.get_or_compute("kindA", stream, {"a": 1}, lambda: 1)
        cache.get_or_compute("kindA", stream, {"a": 1}, lambda: 1)
        series = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in obs.registry.snapshot()["counters"]
        }
        assert series[("repr_cache_misses_total", (("kind", "kindA"),))] == 1
        assert series[("repr_cache_hits_total", (("kind", "kindA"),))] == 1

    def test_disk_tier_round_trip(self, stream, tmp_path):
        first = RepresentationCache(max_entries=4, cache_dir=tmp_path)
        value = first.get_or_compute("k", stream, {"a": 1}, lambda: np.arange(5))
        # A fresh cache (new process, cold memory) finds it on disk.
        second = RepresentationCache(max_entries=4, cache_dir=tmp_path)
        loaded = second.get_or_compute(
            "k", stream, {"a": 1}, lambda: pytest.fail("should load from disk")
        )
        np.testing.assert_array_equal(value, loaded)
        assert second.stats()["disk_hits"] == 1

    def test_corrupt_disk_entry_is_counted_and_deleted(self, stream, tmp_path):
        writer = RepresentationCache(max_entries=4, cache_dir=tmp_path)
        writer.get_or_compute("k", stream, {"a": 1}, lambda: np.arange(5))
        path = writer._disk_path(content_key("k", stream, {"a": 1}))
        path.write_bytes(b"\x80garbage-not-a-pickle")

        obs = Instrumentation()
        reader = RepresentationCache(
            max_entries=4, cache_dir=tmp_path, instrumentation=obs
        )
        value = reader.get_or_compute("k", stream, {"a": 1}, lambda: np.arange(5))
        np.testing.assert_array_equal(value, np.arange(5))
        # The failure is visible, the corrupt file is gone, and the
        # recompute rewrote a readable entry in its place.
        assert reader.stats()["disk_errors"] == 1
        assert reader.stats()["misses"] == 1
        counters = {
            c["name"]: c["value"]
            for c in obs.snapshot()["metrics"]["counters"]
        }
        assert counters["repr_cache_disk_errors_total"] == 1
        fresh = RepresentationCache(max_entries=4, cache_dir=tmp_path)
        fresh.get_or_compute(
            "k", stream, {"a": 1}, lambda: pytest.fail("should load from disk")
        )
        assert fresh.stats()["disk_errors"] == 0

    def test_truncated_disk_entry_is_counted_and_deleted(self, stream, tmp_path):
        writer = RepresentationCache(max_entries=4, cache_dir=tmp_path)
        writer.get_or_compute("k", stream, {"a": 1}, lambda: np.arange(5))
        path = writer._disk_path(content_key("k", stream, {"a": 1}))
        path.write_bytes(path.read_bytes()[:10])  # killed mid-write
        reader = RepresentationCache(max_entries=4, cache_dir=tmp_path)
        value = reader.get_or_compute("k", stream, {"a": 1}, lambda: np.arange(5))
        np.testing.assert_array_equal(value, np.arange(5))
        assert reader.stats()["disk_errors"] == 1
        assert not list(tmp_path.rglob("*.pkl")) == []  # rewritten entry

    def test_thread_safe_single_flight(self, stream):
        import threading

        cache = RepresentationCache(max_entries=16, thread_safe=True)
        started = threading.Barrier(4)
        computes = []

        def compute():
            computes.append(1)
            return np.arange(3)

        def worker():
            started.wait()
            cache.get_or_compute("k", stream, {"a": 1}, compute)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one flight computed; every other caller waited and hit.
        assert len(computes) == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 3

    def test_config_validation_and_from_config(self):
        with pytest.raises(ValueError):
            CacheConfig(max_entries=0)
        assert RepresentationCache.from_config(CacheConfig(enabled=False)) is None
        cache = RepresentationCache.from_config(CacheConfig(max_entries=3))
        assert cache is not None and cache.max_entries == 3
        assert "disk_errors" in cache.stats()


class TestPipelineIntegration:
    def test_repeat_predictions_hit_the_cache(self, stream):
        ds = make_shapes_dataset(
            num_per_class=2, resolution=Resolution(16, 16), seed=1
        )
        pipeline = SNNPipeline(num_steps=6, hidden=8, epochs=1)
        cache = RepresentationCache(max_entries=32)
        pipeline.attach_cache(cache)
        pipeline.fit(ds)
        misses_after_fit = cache.stats()["misses"]
        first = pipeline.predict(ds[0].stream)
        second = pipeline.predict(ds[0].stream)
        assert first == second
        # Fit already encoded every training stream, so both predicts
        # hit the cache and add no misses.
        assert cache.stats()["misses"] == misses_after_fit
        assert cache.stats()["hits"] >= 2

    def test_cached_and_uncached_predictions_agree(self, stream):
        ds = make_shapes_dataset(
            num_per_class=2, resolution=Resolution(16, 16), seed=1
        )
        plain = SNNPipeline(num_steps=6, hidden=8, epochs=1)
        cached = SNNPipeline(num_steps=6, hidden=8, epochs=1)
        cached.attach_cache(RepresentationCache(max_entries=32))
        plain.fit(ds)
        cached.fit(ds)
        for sample in ds:
            assert plain.predict(sample.stream) == cached.predict(sample.stream)

    def test_predict_batch_matches_predict(self):
        ds = make_shapes_dataset(
            num_per_class=2, resolution=Resolution(16, 16), seed=1
        )
        pipeline = SNNPipeline(num_steps=6, hidden=8, epochs=1)
        pipeline.fit(ds)
        streams = [s.stream for s in ds]
        assert pipeline.predict_batch(streams) == [
            pipeline.predict(s) for s in streams
        ]
